//! Regenerates paper Fig. 2: classification error (%) of the MLP as a
//! function of the per-bit flip probability `p ∈ [1e-5, 1e-1]`, faults in
//! all layers, with the golden-run reference line.
//!
//! Paper finding reproduced: *two regimes* — error hugs the golden run for
//! small `p`, then climbs steeply past a knee; the knee is located by a
//! two-segment fit in `(log10 p, error)`.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin fig2_mlp_sweep`.

use bdlfi::{log_spaced_probabilities, run_sweep, CampaignConfig, KernelChoice};
use bdlfi_bayes::ChainConfig;
use bdlfi_bench::harness::{artifacts_dir, golden_mlp, pct, Scale};
use bdlfi_faults::SiteSpec;

fn main() {
    let scale = Scale::from_env();
    let (model, _train, test) = golden_mlp();

    let cfg = CampaignConfig {
        chains: scale.chains,
        chain: ChainConfig {
            burn_in: scale.burn_in,
            samples: scale.samples,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 2,
        ..CampaignConfig::default()
    };
    let ps = log_spaced_probabilities(1e-5, 1e-1, scale.sweep_points);

    println!("# Fig. 2: MLP classification error vs flip probability (all layers)");
    println!(
        "# {} chains x {} samples per p; golden run plotted as reference",
        cfg.chains, cfg.chain.samples
    );
    println!();

    let sweep = run_sweep(&model, &test, &SiteSpec::AllParams, &ps, &cfg);

    println!("| p | error % (mean) | q05 % | q95 % | R-hat | ESS | certified |");
    println!("|---|---|---|---|---|---|---|");
    for pt in &sweep.points {
        let r = &pt.report;
        println!(
            "| {:.1e} | {} | {} | {} | {:.3} | {:.0} | {} |",
            pt.p,
            pct(r.mean_error),
            pct(r.summary.q05),
            pct(r.summary.q95),
            r.completeness.rhat,
            r.completeness.ess,
            if r.completeness.certified {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!();
    println!("golden run error: {} %", pct(sweep.golden_error));

    if let Some(knee) = sweep.knee() {
        println!(
            "two-regime fit: knee at p = {:.2e} (left slope {:.4}, right slope {:.4} error/decade)",
            knee.knee_p, knee.fit.left_slope, knee.fit.right_slope
        );
        println!(
            "paper reading: flat regime below the knee, steep regime above -> operate at the knee for the performance/reliability trade-off"
        );
    }

    let out = artifacts_dir().join("fig2_mlp_sweep.json");
    std::fs::write(&out, serde_json::to_string_pretty(&sweep.points).unwrap()).unwrap();
    eprintln!("[fig2] sweep saved to {}", out.display());
}
