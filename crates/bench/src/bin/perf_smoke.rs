//! Performance smoke test for the incremental-inference engine: measures
//! campaign throughput (fault configurations evaluated per second) for a
//! layerwise campaign on a deep MLP, cold vs. incremental, and writes the
//! numbers to `BENCH_campaign.json`.
//!
//! The scenario mirrors the paper's per-layer experiment (E3/Fig. 3): all
//! faults confined to the final dense layer of an 8-hidden-layer MLP. The
//! *cold* path applies each configuration and re-runs the whole network;
//! the *incremental* path (what `FaultyModel::eval_logits` now does)
//! resumes from the cached golden activation just before the dirty layer.
//! Both produce bit-identical logits — verified per configuration here —
//! so the speedup is pure redundancy elimination.
//!
//! Run with `cargo run --release -p bdlfi-bench --bin perf_smoke`.

use bdlfi::FaultyModel;
use bdlfi_data::gaussian_blobs;
use bdlfi_faults::{BernoulliBitFlip, FaultConfig, SiteSpec};
use bdlfi_nn::{mlp, predict_all};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BenchReport {
    scenario: String,
    network: String,
    eval_examples: usize,
    configs: usize,
    cold_samples_per_sec: f64,
    incremental_samples_per_sec: f64,
    speedup: f64,
    bitwise_identical: bool,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    let hidden = [64usize; 8];
    let data = Arc::new(gaussian_blobs(256, 3, 1.0, &mut rng));
    let model = mlp(2, &hidden, 3, &mut rng);
    let last_layer = format!("fc{}", hidden.len() + 1);

    let mut fm = FaultyModel::new(
        model.clone(),
        Arc::clone(&data),
        &SiteSpec::LayerParams {
            prefix: last_layer.clone(),
        },
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );

    // Fixed workload: the same configurations for both paths.
    let configs: Vec<FaultConfig> = (0..200).map(|_| fm.sample_config(&mut rng)).collect();

    // Warm both paths once (page in weights, fill the scratch arena).
    let mut cold_model = model.clone();
    let _ = predict_all(&mut cold_model, data.inputs(), 64);
    let _ = fm.eval_logits(&configs[0], &mut rng);

    let t0 = Instant::now();
    let cold_logits: Vec<_> = configs
        .iter()
        .map(|cfg| cfg.with_applied(&mut cold_model, |m| predict_all(m, data.inputs(), 64)))
        .collect();
    let cold_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let inc_logits: Vec<_> = configs
        .iter()
        .map(|cfg| fm.eval_logits(cfg, &mut rng))
        .collect();
    let inc_secs = t1.elapsed().as_secs_f64();

    let bitwise_identical = cold_logits.iter().zip(&inc_logits).all(|(a, b)| {
        a.data()
            .iter()
            .map(|v| v.to_bits())
            .eq(b.data().iter().map(|v| v.to_bits()))
    });

    let report = BenchReport {
        scenario: format!("layerwise campaign, faults in {last_layer} only"),
        network: format!("mlp 2 -> {hidden:?} -> 3"),
        eval_examples: data.len(),
        configs: configs.len(),
        cold_samples_per_sec: configs.len() as f64 / cold_secs,
        incremental_samples_per_sec: configs.len() as f64 / inc_secs,
        speedup: cold_secs / inc_secs,
        bitwise_identical,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_campaign.json", &json).expect("cannot write BENCH_campaign.json");
    println!("{json}");

    assert!(
        bitwise_identical,
        "incremental logits diverged from cold logits"
    );
    assert!(
        report.speedup >= 3.0,
        "expected >= 3x layerwise speedup, measured {:.2}x",
        report.speedup
    );
    println!(
        "incremental path is {:.1}x faster ({:.0} vs {:.0} configs/sec), logits bit-identical",
        report.speedup, report.incremental_samples_per_sec, report.cold_samples_per_sec
    );
}
