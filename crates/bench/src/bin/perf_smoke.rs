//! Performance smoke test for the fault-evaluation pipeline. Two
//! scenarios, both written to `BENCH_campaign.json`:
//!
//! 1. **Incremental inference** — campaign throughput (fault
//!    configurations evaluated per second) for a layerwise campaign on a
//!    deep MLP, cold vs. incremental. The scenario mirrors the paper's
//!    per-layer experiment (E3/Fig. 3): all faults confined to the final
//!    dense layer of an 8-hidden-layer MLP. The *cold* path applies each
//!    configuration and re-runs the whole network; the *incremental* path
//!    (what `FaultyModel::eval_logits` does) resumes from the cached
//!    golden activation just before the dirty layer. Both produce
//!    bit-identical logits — verified per configuration here — so the
//!    speedup is pure redundancy elimination.
//! 2. **Sparse-delta evaluation** — the same deep MLP with faults
//!    confined to a *middle* dense layer (fc5), comparing the incremental
//!    path (resume at the dirty layer, dense suffix) against the
//!    sparse-delta path (recompute the touched columns, forward only the
//!    rows that still deviate after ReLU gating). Both are bit-identical;
//!    the additional speedup is pure suffix sparsity. `perf_smoke
//!    --delta` runs just this scenario in quick mode and fails if the
//!    paths diverge or the delta path never fires.
//! 3. **Baseline-FI parallelism** — the traditional random-FI campaign
//!    run serially (`workers: 1`) and through the `EvalEngine` worker
//!    pool sized to the host's available parallelism. The per-injection
//!    RNG streams are derived from `seed_stream(seed, injection)`, so the
//!    two runs must agree bit-for-bit; the speedup is pure parallelism
//!    (and is only asserted when the host actually has ≥ 4 workers).
//! 4. **Quantized workload** — the same trained MLP run as a BDLFI
//!    campaign in f32 (`FaultyModel`) and int8 (`QuantFaultyModel`) on
//!    identical configs, comparing campaign throughput and asserting the
//!    int8 report is bit-identical at `workers: 1` and at full
//!    parallelism (`perf_smoke --quant` runs just this scenario). The
//!    report records which micro-kernel the selector resolved; when that
//!    is the AVX2 maddubs kernel, int8 throughput must be at least 1.0×
//!    f32 (recorded-only on hosts without AVX2 or under a forced
//!    `BDLFI_KERNEL`).
//! 5. **Sharded campaign** — the checkpointed reference campaign run as
//!    one process versus split into N shard *processes* (each re-spawns
//!    this binary with `--shard-campaign`), merged back with the strict
//!    journal-merge verifier. The merged journal must be byte-identical
//!    to the single-process journal — that assertion is mandatory; the
//!    speedup is recorded (it only exceeds 1 on hosts with free cores,
//!    since each side pays its own training + startup cost).
//!
//! Run with `cargo run --release -p bdlfi-bench --bin perf_smoke`.
//!
//! # Checkpointed campaign mode
//!
//! `perf_smoke --campaign` instead runs one deterministic BDLFI campaign,
//! for exercising the crash-safe checkpoint/resume path end to end (the CI
//! `checkpoint-resume` job drives it):
//!
//! * `--checkpoint PATH` — journal completed chains to `PATH`;
//! * `--resume` — resume from an existing journal at `PATH`;
//! * `--stop-after N` — cooperatively stop after `N` chains (exit code 3);
//! * `--report PATH` — write the final campaign report as JSON with
//!   normalized `run_meta` (timing and resume provenance zeroed), so an
//!   interrupted-then-resumed run is byte-identical to an uninterrupted
//!   one;
//! * `--workers N` — engine worker threads (default 0 = all cores).
//!
//! # Shard modes
//!
//! `perf_smoke --shard-campaign --count N --index I --checkpoint PATH`
//! runs shard `I` of the same deterministic campaign split `N` ways
//! (global chain ids, per-shard fingerprint); `--resume` and
//! `--stop-after K` behave as in `--campaign` (cooperative stop exits 3).
//! `perf_smoke --shard-merge --baseline SINGLE --out MERGED SHARD...`
//! rebuilds the shard plan from the single-process journal's header,
//! merges the shard journals with the strict verifier, and with
//! `--report PATH` finalizes the merged journal through the normal driver
//! path (full replay, zero recomputation) and writes the normalized
//! report. The CI `shard-smoke` job drives both modes and `cmp`s the
//! merged artifacts against the single-process ones.

use bdlfi::engine::{CheckpointSpec, EngineError, RunControl, RunMeta};
use bdlfi::{
    merge_shards, read_journal, run_campaign, run_campaign_controlled, run_campaign_shard,
    CampaignConfig, CampaignReport, FaultyModel, KernelChoice, QuantFaultyModel, ShardError,
    ShardPlan,
};
use bdlfi_baseline::{RandomFi, RandomFiConfig};
use bdlfi_bayes::ChainConfig;
use bdlfi_data::gaussian_blobs;
use bdlfi_faults::{BernoulliBitFlip, FaultConfig, SiteSpec};
use bdlfi_nn::{mlp, optim::Sgd, predict_all, TrainConfig, Trainer};
use bdlfi_quant::{quantize_model, CalibConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct IncrementalReport {
    scenario: String,
    network: String,
    eval_examples: usize,
    configs: usize,
    cold_samples_per_sec: f64,
    incremental_samples_per_sec: f64,
    speedup: f64,
    bitwise_identical: bool,
}

#[derive(Serialize)]
struct SparseDeltaReport {
    scenario: String,
    network: String,
    eval_examples: usize,
    configs: usize,
    incremental_samples_per_sec: f64,
    delta_samples_per_sec: f64,
    speedup_vs_incremental: f64,
    bitwise_identical: bool,
    delta_hits: u64,
    delta_fallbacks: u64,
}

#[derive(Serialize)]
struct BaselineFiReport {
    scenario: String,
    network: String,
    eval_examples: usize,
    injections: usize,
    workers: usize,
    serial_injections_per_sec: f64,
    parallel_injections_per_sec: f64,
    speedup: f64,
    identical_results: bool,
}

#[derive(Serialize)]
struct QuantReport {
    scenario: String,
    network: String,
    eval_examples: usize,
    campaign_samples: usize,
    f32_samples_per_sec: f64,
    int8_samples_per_sec: f64,
    int8_relative_throughput: f64,
    int8_worker_invariant: bool,
    /// The micro-kernel variant the selector resolves for the campaign's
    /// blocked int8 hidden-layer shape (honors `BDLFI_KERNEL`).
    kernel_variant: String,
    avx2_detected: bool,
}

#[derive(Serialize)]
struct ShardMergeBenchReport {
    scenario: String,
    network: String,
    chains: usize,
    shards: usize,
    single_process_secs: f64,
    sharded_secs: f64,
    speedup: f64,
    merged_byte_identical: bool,
}

#[derive(Serialize)]
struct BenchReport {
    incremental: IncrementalReport,
    sparse_delta: SparseDeltaReport,
    baseline_fi: BaselineFiReport,
    quant: QuantReport,
    shard_merge: ShardMergeBenchReport,
}

fn incremental_bench() -> IncrementalReport {
    let mut rng = StdRng::seed_from_u64(0);
    let hidden = [64usize; 8];
    let data = Arc::new(gaussian_blobs(256, 3, 1.0, &mut rng));
    let model = mlp(2, &hidden, 3, &mut rng);
    let last_layer = format!("fc{}", hidden.len() + 1);

    let mut fm = FaultyModel::new(
        model.clone(),
        Arc::clone(&data),
        &SiteSpec::LayerParams {
            prefix: last_layer.clone(),
        },
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );
    // This scenario measures the *incremental* path in isolation; the
    // sparse-delta path has its own scenario below.
    fm.set_delta_enabled(false);

    // Fixed workload: the same configurations for both paths.
    let configs: Vec<FaultConfig> = (0..200).map(|_| fm.sample_config(&mut rng)).collect();

    // Warm both paths once (page in weights, fill the scratch arena).
    let mut cold_model = model.clone();
    let _ = predict_all(&mut cold_model, data.inputs(), 64);
    let _ = fm.eval_logits(&configs[0], &mut rng);

    let t0 = Instant::now();
    let cold_logits: Vec<_> = configs
        .iter()
        .map(|cfg| cfg.with_applied(&mut cold_model, |m| predict_all(m, data.inputs(), 64)))
        .collect();
    let cold_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let inc_logits: Vec<_> = configs
        .iter()
        .map(|cfg| fm.eval_logits(cfg, &mut rng))
        .collect();
    let inc_secs = t1.elapsed().as_secs_f64();

    let bitwise_identical = cold_logits.iter().zip(&inc_logits).all(|(a, b)| {
        a.data()
            .iter()
            .map(|v| v.to_bits())
            .eq(b.data().iter().map(|v| v.to_bits()))
    });

    IncrementalReport {
        scenario: format!("layerwise campaign, faults in {last_layer} only"),
        network: format!("mlp 2 -> {hidden:?} -> 3"),
        eval_examples: data.len(),
        configs: configs.len(),
        cold_samples_per_sec: configs.len() as f64 / cold_secs,
        incremental_samples_per_sec: configs.len() as f64 / inc_secs,
        speedup: cold_secs / inc_secs,
        bitwise_identical,
    }
}

/// The sparse-delta scenario: the 1-flip layerwise sweep. Single random
/// weight-bit flips are distributed round-robin across every hidden dense
/// layer of a *trained* deep MLP. Training is what makes the workload
/// realistic: converged ReLU features are class-selective, so most
/// single-bit deltas die inside a layer or two of gating and the delta
/// path forwards only a handful of dirty rows, while the incremental
/// path re-runs the full suffix for every configuration.
fn delta_bench(configs: usize) -> SparseDeltaReport {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(3);
    let hidden = [64usize; 8];
    let classes = 4;
    let data = Arc::new(gaussian_blobs(256, classes, 0.5, &mut rng));
    let mut model = mlp(2, &hidden, classes, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.05).with_momentum(0.9),
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, data.inputs(), data.labels(), &mut rng);

    let mut delta_fm = FaultyModel::new(
        model,
        Arc::clone(&data),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1.5e-5)),
    );
    // The clone shares the delta counters, so hits are snapshotted around
    // the delta timing loop only; the incremental twin records nothing.
    let mut inc_fm = delta_fm.clone();
    inc_fm.set_delta_enabled(false);

    // One flip per configuration, swept round-robin over fc2..fc9 like a
    // layerwise campaign visits each layer in turn.
    let workload: Vec<FaultConfig> = (0..configs)
        .map(|i| {
            let fc = 2 + i % hidden.len();
            let out = if fc == hidden.len() + 1 { classes } else { 64 };
            let mut cfg = FaultConfig::clean();
            let mut mask = bdlfi_faults::FaultMask::empty();
            mask.push_bit(rng.random_range(0..64 * out), rng.random_range(0..32u8));
            cfg.set_mask(&format!("fc{fc}.weight"), mask);
            cfg
        })
        .collect();

    // Warm both paths.
    let _ = inc_fm.eval_logits(&workload[0], &mut rng);
    let _ = delta_fm.eval_logits(&workload[0], &mut rng);

    let t0 = Instant::now();
    let inc_logits: Vec<_> = workload
        .iter()
        .map(|cfg| inc_fm.eval_logits(cfg, &mut rng))
        .collect();
    let inc_secs = t0.elapsed().as_secs_f64();

    let (hits0, fb0) = delta_fm.delta_counters();
    let t1 = Instant::now();
    let delta_logits: Vec<_> = workload
        .iter()
        .map(|cfg| delta_fm.eval_logits(cfg, &mut rng))
        .collect();
    let delta_secs = t1.elapsed().as_secs_f64();
    let (hits1, fb1) = delta_fm.delta_counters();

    let bitwise_identical = inc_logits.iter().zip(&delta_logits).all(|(a, b)| {
        a.data()
            .iter()
            .map(|v| v.to_bits())
            .eq(b.data().iter().map(|v| v.to_bits()))
    });

    SparseDeltaReport {
        scenario: "1-flip layerwise sweep over fc2..fc9 of a trained MLP".into(),
        network: format!("trained mlp 2 -> {hidden:?} -> {classes}"),
        eval_examples: data.len(),
        configs: workload.len(),
        incremental_samples_per_sec: workload.len() as f64 / inc_secs,
        delta_samples_per_sec: workload.len() as f64 / delta_secs,
        speedup_vs_incremental: inc_secs / delta_secs,
        bitwise_identical,
        delta_hits: hits1 - hits0,
        delta_fallbacks: fb1 - fb0,
    }
}

fn report_delta(delta: &SparseDeltaReport) {
    assert!(
        delta.bitwise_identical,
        "sparse-delta logits diverged from the incremental path"
    );
    assert!(
        delta.delta_hits > 0,
        "sparse-delta path never fired on a dense-confined scenario"
    );
    println!(
        "sparse-delta path is {:.1}x faster than incremental ({:.0} vs {:.0} configs/sec), \
         {} hits / {} fallbacks, logits bit-identical",
        delta.speedup_vs_incremental,
        delta.delta_samples_per_sec,
        delta.incremental_samples_per_sec,
        delta.delta_hits,
        delta.delta_fallbacks
    );
}

fn baseline_fi_bench() -> BaselineFiReport {
    let mut rng = StdRng::seed_from_u64(1);
    let hidden = [48usize; 4];
    let data = Arc::new(gaussian_blobs(256, 3, 1.0, &mut rng));
    let model = mlp(2, &hidden, 3, &mut rng);

    let fi = RandomFi::new(model, Arc::clone(&data), &SiteSpec::AllParams);
    let injections = 200;
    let cfg = |workers: usize| RandomFiConfig {
        injections,
        seed: 7,
        level: 0.95,
        workers,
    };

    // Warm caches, then time serial vs engine-parallel. The parallel side
    // is pinned to the host's real parallelism (not `0`, which on a
    // single-core runner silently collapses to one worker while the row
    // still reads as a parallelism comparison).
    let host_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = fi.run(&RandomFiConfig {
        injections: 8,
        ..cfg(1)
    });
    let serial = fi.run(&cfg(1));
    let parallel = fi.run(&cfg(host_workers));

    // seed_stream-derived per-injection RNGs make worker count irrelevant
    // to the statistics: the runs must agree exactly.
    let identical_results = serial.errors == parallel.errors
        && serial.sdc.successes == parallel.sdc.successes
        && serial.mean_error == parallel.mean_error;

    BaselineFiReport {
        scenario: format!(
            "traditional random FI, all parameters, serial vs engine pool of {host_workers}"
        ),
        network: format!("mlp 2 -> {hidden:?} -> 3"),
        eval_examples: data.len(),
        injections,
        workers: parallel.run_meta.workers,
        serial_injections_per_sec: serial.run_meta.tasks_per_sec,
        parallel_injections_per_sec: parallel.run_meta.tasks_per_sec,
        speedup: serial.run_meta.elapsed_secs / parallel.run_meta.elapsed_secs,
        identical_results,
    }
}

/// Reports from different worker counts must agree on everything except
/// execution metadata; normalize that away before comparing bytes.
fn normalized_report_bytes(report: &CampaignReport) -> String {
    let mut normalized = report.clone();
    normalized.run_meta = RunMeta::default();
    normalized.config.workers = 0;
    serde_json::to_string(&normalized).expect("report serialises")
}

fn quant_bench() -> QuantReport {
    let mut rng = StdRng::seed_from_u64(2);
    let hidden = [128usize; 3];
    let data = gaussian_blobs(512, 3, 0.9, &mut rng);
    let (train, test) = data.split(0.5, &mut rng);
    let test = Arc::new(test);
    let mut model = mlp(2, &hidden, 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    let qm = quantize_model(&model, train.inputs(), &CalibConfig::default());

    let fault_model = Arc::new(BernoulliBitFlip::new(1e-3));
    let fm = FaultyModel::new(
        model,
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::clone(&fault_model) as _,
    );
    let qfm = QuantFaultyModel::new(qm, Arc::clone(&test), &SiteSpec::AllParams, fault_model);

    let cfg = |workers: usize| CampaignConfig {
        chains: 8,
        chain: ChainConfig {
            burn_in: 0,
            samples: 50,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 13,
        criteria: Default::default(),
        workers,
    };
    let samples = 8 * 50;

    // Warm both workloads, then time full-parallelism campaigns.
    let _ = run_campaign(&fm, &cfg(1));
    let f32_report = run_campaign(&fm, &cfg(0));
    let _ = run_campaign(&qfm, &cfg(1));
    let int8_report = run_campaign(&qfm, &cfg(0));

    // Seed discipline makes the worker count irrelevant to the result:
    // the int8 campaign must be bit-identical serial vs pooled.
    let int8_serial = run_campaign(&qfm, &cfg(1));
    let int8_worker_invariant =
        normalized_report_bytes(&int8_serial) == normalized_report_bytes(&int8_report);

    let f32_rate = samples as f64 / f32_report.run_meta.elapsed_secs;
    let int8_rate = samples as f64 / int8_report.run_meta.elapsed_secs;
    // The (batch, 128, 128) hidden-layer GEMM dominates the int8 campaign;
    // record which micro-kernel the selector resolves for it.
    let selection = bdlfi_tensor::kernels::select_i8(64, hidden[0], hidden[0]);
    QuantReport {
        scenario: "BDLFI campaign, f32 vs int8 deployment of the same MLP".into(),
        network: format!("mlp 2 -> {hidden:?} -> 3"),
        eval_examples: test.len(),
        campaign_samples: samples,
        f32_samples_per_sec: f32_rate,
        int8_samples_per_sec: int8_rate,
        int8_relative_throughput: int8_rate / f32_rate,
        int8_worker_invariant,
        kernel_variant: selection.variant.as_str().to_string(),
        avx2_detected: bdlfi_tensor::kernels::avx2_available(),
    }
}

struct CampaignArgs {
    checkpoint: Option<PathBuf>,
    resume: bool,
    stop_after: Option<usize>,
    report: Option<PathBuf>,
    workers: usize,
    count: Option<usize>,
    index: Option<usize>,
}

fn parse_campaign_args(mut args: std::env::Args) -> CampaignArgs {
    let mut out = CampaignArgs {
        checkpoint: None,
        resume: false,
        stop_after: None,
        report: None,
        workers: 0,
        count: None,
        index: None,
    };
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--checkpoint" => out.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
            "--resume" => out.resume = true,
            "--stop-after" => {
                out.stop_after = Some(value("--stop-after").parse().expect("--stop-after: usize"));
            }
            "--report" => out.report = Some(PathBuf::from(value("--report"))),
            "--workers" => out.workers = value("--workers").parse().expect("--workers: usize"),
            "--count" => out.count = Some(value("--count").parse().expect("--count: usize")),
            "--index" => out.index = Some(value("--index").parse().expect("--index: usize")),
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

/// One shard of the reference campaign, split `--count` ways: the shard's
/// journal is its whole output; merge the completed set with
/// `--shard-merge`.
fn shard_campaign(args: &CampaignArgs) -> Result<(), ShardError> {
    let (fm, cfg) = checkpointed_workload(args.workers);
    let count = args.count.expect("--shard-campaign requires --count");
    let index = args.index.expect("--shard-campaign requires --index");
    let path = args
        .checkpoint
        .clone()
        .expect("--shard-campaign requires --checkpoint");
    let ctl = match args.stop_after {
        Some(n) => RunControl::stop_after(n),
        None => RunControl::new(),
    };
    let spec = CheckpointSpec::new(path, String::new());
    let spec = if args.resume { spec.resuming() } else { spec };
    let meta = run_campaign_shard(&fm, &cfg, count, index, &ctl, &spec)?;
    println!(
        "shard {index}/{count} complete: {} chains journaled",
        meta.tasks
    );
    Ok(())
}

struct ShardMergeArgs {
    baseline: PathBuf,
    out: PathBuf,
    count: Option<usize>,
    report: Option<PathBuf>,
    workers: usize,
    shards: Vec<PathBuf>,
}

fn parse_shard_merge_args(mut args: std::env::Args) -> ShardMergeArgs {
    let mut baseline = None;
    let mut out = ShardMergeArgs {
        baseline: PathBuf::new(),
        out: PathBuf::new(),
        count: None,
        report: None,
        workers: 0,
        shards: Vec::new(),
    };
    let mut merged = None;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--out" => merged = Some(PathBuf::from(value("--out"))),
            "--count" => out.count = Some(value("--count").parse().expect("--count: usize")),
            "--report" => out.report = Some(PathBuf::from(value("--report"))),
            "--workers" => out.workers = value("--workers").parse().expect("--workers: usize"),
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            shard => out.shards.push(PathBuf::from(shard)),
        }
    }
    out.baseline = baseline.expect("--shard-merge requires --baseline SINGLE_PROCESS_JOURNAL");
    out.out = merged.expect("--shard-merge requires --out MERGED_JOURNAL");
    assert!(!out.shards.is_empty(), "--shard-merge needs shard journals");
    out
}

/// Merges completed shard journals of the reference campaign; the plan
/// (base fingerprint, seed, task count) is read back from the
/// single-process baseline journal's header. With `--report`, finalizes
/// the merged journal through the normal driver path — a full replay that
/// recomputes nothing — and writes the normalized report.
fn shard_merge(args: &ShardMergeArgs) -> Result<(), ShardError> {
    let whole = read_journal(&args.baseline).map_err(ShardError::Checkpoint)?;
    let count = args.count.unwrap_or(args.shards.len());
    let plan = ShardPlan::new(
        whole.header.fingerprint.clone(),
        whole.header.seed,
        whole.header.tasks,
        count,
    )?;
    let summary = merge_shards(&plan, &args.shards, &args.out)?;
    println!(
        "merged {} shards, {} chains, {} bytes -> {}",
        summary.shards,
        summary.tasks,
        summary.bytes,
        args.out.display()
    );
    if let Some(path) = &args.report {
        let (fm, cfg) = checkpointed_workload(args.workers);
        let spec = CheckpointSpec::new(args.out.clone(), String::new()).finalizing();
        let mut report = run_campaign_controlled(&fm, &cfg, &RunControl::new(), Some(&spec))?;
        assert_eq!(
            report.run_meta.resumed_from,
            Some(cfg.chains),
            "finalize must replay every chain from the merged journal"
        );
        report.run_meta = RunMeta::default();
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(path, &json).expect("cannot write report");
        println!(
            "finalized report: mean_error {:.6}, {} chains",
            report.mean_error, report.config.chains
        );
    }
    Ok(())
}

/// The sharded-campaign scenario of the default bench run: the reference
/// campaign as one process versus `SHARDS` child processes of this same
/// binary, merged back and checked byte-for-byte against the
/// single-process journal.
fn shard_merge_bench() -> ShardMergeBenchReport {
    const SHARDS: usize = 4;
    let exe = std::env::current_exe().expect("current_exe resolves");
    let dir = std::env::temp_dir().join(format!("bdlfi_shard_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let single = dir.join("single.jsonl");

    // Both sides pay training + process startup, so the comparison is
    // end-to-end: child processes only, no in-process shortcut.
    let t0 = Instant::now();
    let status = std::process::Command::new(&exe)
        .args(["--campaign", "--workers", "1", "--checkpoint"])
        .arg(&single)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("single-process campaign spawns");
    assert!(status.success(), "single-process campaign failed");
    let single_secs = t0.elapsed().as_secs_f64();

    let shard_paths: Vec<PathBuf> = (0..SHARDS)
        .map(|i| dir.join(format!("shard{i}.jsonl")))
        .collect();
    let t1 = Instant::now();
    let children: Vec<_> = shard_paths
        .iter()
        .enumerate()
        .map(|(i, path)| {
            std::process::Command::new(&exe)
                .args([
                    "--shard-campaign",
                    "--workers",
                    "1",
                    "--count",
                    &SHARDS.to_string(),
                    "--index",
                    &i.to_string(),
                    "--checkpoint",
                ])
                .arg(path)
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("shard process spawns")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("shard process completes");
        assert!(status.success(), "shard process failed");
    }
    let sharded_secs = t1.elapsed().as_secs_f64();

    let whole = read_journal(&single).expect("single-process journal reads");
    let plan = ShardPlan::new(
        whole.header.fingerprint.clone(),
        whole.header.seed,
        whole.header.tasks,
        SHARDS,
    )
    .expect("shard plan is valid");
    let merged = dir.join("merged.jsonl");
    merge_shards(&plan, &shard_paths, &merged).expect("shard merge succeeds");
    let merged_byte_identical = std::fs::read(&merged).expect("merged journal reads")
        == std::fs::read(&single).expect("single journal reads");
    let chains = whole.header.tasks;
    std::fs::remove_dir_all(&dir).ok();

    ShardMergeBenchReport {
        scenario: format!(
            "checkpointed campaign, 1 process vs {SHARDS} shard processes + strict merge"
        ),
        network: "trained mlp 2 -> [16, 16] -> 3".into(),
        chains,
        shards: SHARDS,
        single_process_secs: single_secs,
        sharded_secs,
        speedup: single_secs / sharded_secs,
        merged_byte_identical,
    }
}

/// The deterministic campaign the checkpoint and shard modes run: a
/// trained MLP with Bernoulli faults over all parameters. Everything is
/// seeded, so reports from any interrupt/resume/shard schedule must agree
/// bit for bit.
fn checkpointed_workload(workers: usize) -> (FaultyModel, CampaignConfig) {
    let mut rng = StdRng::seed_from_u64(900);
    let data = gaussian_blobs(200, 3, 0.6, &mut rng);
    let (train, test) = data.split(0.7, &mut rng);
    let mut model = mlp(2, &[16, 16], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 12,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    let fm = FaultyModel::new(
        model,
        Arc::new(test),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );
    let cfg = CampaignConfig {
        chains: 8,
        chain: ChainConfig {
            burn_in: 10,
            samples: 60,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 9,
        criteria: Default::default(),
        workers,
    };
    (fm, cfg)
}

fn checkpointed_campaign(args: &CampaignArgs) -> Result<(), EngineError> {
    let (fm, cfg) = checkpointed_workload(args.workers);

    let ctl = match args.stop_after {
        Some(n) => RunControl::stop_after(n),
        None => RunControl::new(),
    };
    let ckpt = args.checkpoint.as_ref().map(|path| {
        let spec = CheckpointSpec::new(path.clone(), String::new());
        if args.resume {
            spec.resuming()
        } else {
            spec
        }
    });

    let mut report = run_campaign_controlled(&fm, &cfg, &ctl, ckpt.as_ref())?;
    // Normalize execution metadata so reports from different interrupt
    // schedules (and worker counts) compare byte-for-byte.
    report.run_meta = RunMeta::default();
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    if let Some(path) = &args.report {
        std::fs::write(path, &json).expect("cannot write report");
    }
    println!(
        "campaign complete: mean_error {:.6}, {} chains",
        report.mean_error, report.config.chains
    );
    Ok(())
}

fn report_quant(quant: &QuantReport) {
    assert!(
        quant.int8_worker_invariant,
        "int8 campaign diverged between workers=1 and the full pool"
    );
    // The headline gate: with the AVX2 maddubs kernel selected, the int8
    // deployment must not be slower than f32. On hosts without AVX2 (or
    // with a variant forced via BDLFI_KERNEL) the ratio is recorded only.
    if quant.avx2_detected && quant.kernel_variant == "avx2" {
        assert!(
            quant.int8_relative_throughput >= 1.0,
            "int8 campaign below f32 throughput ({:.2}x) with the avx2 kernel selected",
            quant.int8_relative_throughput
        );
    }
    println!(
        "int8 campaign runs at {:.2}x f32 throughput ({:.0} vs {:.0} samples/sec) \
         on the `{}` kernel, worker-count invariant",
        quant.int8_relative_throughput,
        quant.int8_samples_per_sec,
        quant.f32_samples_per_sec,
        quant.kernel_variant
    );
}

fn main() {
    let mut args = std::env::args();
    let _bin = args.next();
    if let Some(first) = args.next() {
        match first.as_str() {
            "--campaign" => match checkpointed_campaign(&parse_campaign_args(args)) {
                Ok(()) => return,
                Err(EngineError::Interrupted { completed, tasks }) => {
                    eprintln!("interrupted after {completed}/{tasks} chains (journal flushed)");
                    std::process::exit(3);
                }
                Err(e) => {
                    eprintln!("campaign failed: {e}");
                    std::process::exit(1);
                }
            },
            "--shard-campaign" => match shard_campaign(&parse_campaign_args(args)) {
                Ok(()) => return,
                Err(ShardError::Engine(EngineError::Interrupted { completed, tasks })) => {
                    eprintln!("interrupted after {completed}/{tasks} chains (journal flushed)");
                    std::process::exit(3);
                }
                Err(e) => {
                    eprintln!("shard campaign failed: {e}");
                    std::process::exit(1);
                }
            },
            "--shard-merge" => match shard_merge(&parse_shard_merge_args(args)) {
                Ok(()) => return,
                Err(e) => {
                    eprintln!("shard merge failed: {e}");
                    std::process::exit(1);
                }
            },
            "--quant" => {
                let quant = quant_bench();
                let json = serde_json::to_string_pretty(&quant).expect("report serialises");
                println!("{json}");
                report_quant(&quant);
                return;
            }
            "--delta" => {
                // Quick mode for CI: a reduced workload, but the exactness
                // and liveness gates are identical to the full bench.
                let delta = delta_bench(60);
                let json = serde_json::to_string_pretty(&delta).expect("report serialises");
                println!("{json}");
                report_delta(&delta);
                return;
            }
            other => panic!(
                "unknown mode {other}; try --campaign, --shard-campaign, \
                 --shard-merge, --quant or --delta"
            ),
        }
    }

    let report = BenchReport {
        incremental: incremental_bench(),
        sparse_delta: delta_bench(300),
        baseline_fi: baseline_fi_bench(),
        quant: quant_bench(),
        shard_merge: shard_merge_bench(),
    };

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_campaign.json", &json).expect("cannot write BENCH_campaign.json");
    println!("{json}");

    let inc = &report.incremental;
    assert!(
        inc.bitwise_identical,
        "incremental logits diverged from cold logits"
    );
    assert!(
        inc.speedup >= 3.0,
        "expected >= 3x layerwise speedup, measured {:.2}x",
        inc.speedup
    );
    println!(
        "incremental path is {:.1}x faster ({:.0} vs {:.0} configs/sec), logits bit-identical",
        inc.speedup, inc.incremental_samples_per_sec, inc.cold_samples_per_sec
    );

    let delta = &report.sparse_delta;
    assert!(
        delta.speedup_vs_incremental >= 4.0,
        "expected >= 4x sparse-delta speedup over incremental, measured {:.2}x",
        delta.speedup_vs_incremental
    );
    report_delta(delta);

    let fi = &report.baseline_fi;
    assert!(
        fi.identical_results,
        "parallel baseline FI diverged from serial"
    );
    // The parallel-speedup floor only makes sense with real cores behind
    // the pool; on small runners just require parity with serial.
    if fi.workers >= 4 {
        assert!(
            fi.speedup >= 1.0,
            "expected the engine pool on {} workers to at least match serial, measured {:.2}x",
            fi.workers,
            fi.speedup
        );
    }
    println!(
        "baseline FI on {} workers is {:.1}x faster ({:.0} vs {:.0} injections/sec), results identical",
        fi.workers, fi.speedup, fi.parallel_injections_per_sec, fi.serial_injections_per_sec
    );

    report_quant(&report.quant);

    let sm = &report.shard_merge;
    assert!(
        sm.merged_byte_identical,
        "merged shard journals diverged from the single-process journal"
    );
    println!(
        "{} shard processes vs 1: {:.2}x ({:.1}s vs {:.1}s), merged journal byte-identical",
        sm.shards, sm.speedup, sm.sharded_secs, sm.single_process_secs
    );
}
