//! Criterion benchmarks for the fault-injection substrate: mask sampling
//! across flip probabilities (the geometric-skipping path), XOR
//! application, and whole-model configuration sampling.

use bdlfi_faults::{resolve_sites, BernoulliBitFlip, FaultConfig, FaultModel, SiteSpec};
use bdlfi_nn::mlp;
use bdlfi_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_mask_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mask_sampling_100k_elements");
    for &p in &[1e-6f64, 1e-4, 1e-2] {
        let model = BernoulliBitFlip::new(p);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p={p:.0e}")),
            &p,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(0);
                b.iter(|| black_box(model.sample_mask(100_000, &mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_mask_apply(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let model = BernoulliBitFlip::new(1e-3);
    let mask = model.sample_mask(100_000, &mut rng);
    let mut tensor = Tensor::rand_normal([100_000], 0.0, 1.0, &mut rng);
    c.bench_function("mask_apply_100k", |b| {
        b.iter(|| {
            mask.apply(black_box(&mut tensor));
        });
    });
}

fn bench_config_sampling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let model = mlp(2, &[32], 3, &mut rng);
    let sites = resolve_sites(&model, &SiteSpec::AllParams);
    let fault_model = BernoulliBitFlip::new(1e-3);
    c.bench_function("fault_config_sample_mlp", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(FaultConfig::sample(&sites.params, &fault_model, &mut rng)));
    });
}

fn bench_apply_undo_roundtrip(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut model = mlp(2, &[32], 3, &mut rng);
    let sites = resolve_sites(&model, &SiteSpec::AllParams);
    let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(1e-2), &mut rng);
    c.bench_function("fault_config_apply_undo_mlp", |b| {
        b.iter(|| {
            cfg.apply(black_box(&mut model));
            cfg.apply(black_box(&mut model));
        });
    });
}

criterion_group!(
    benches,
    bench_mask_sampling,
    bench_mask_apply,
    bench_config_sampling,
    bench_apply_undo_roundtrip
);
criterion_main!(benches);
