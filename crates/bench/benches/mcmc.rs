//! Criterion benchmarks for the MCMC substrate: step cost of the fault-
//! configuration proposals under the prior target, and the cost of the
//! convergence diagnostics that implement completeness certification.

use bdlfi::proposals::{BitToggleProposal, PriorProposal};
use bdlfi_bayes::{ess, mh_step, split_rhat, Trace};
use bdlfi_faults::{resolve_sites, BernoulliBitFlip, BitRange, FaultConfig, FaultModel, SiteSpec};
use bdlfi_nn::mlp;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

fn bench_mh_steps(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let model = mlp(2, &[32], 3, &mut rng);
    let sites = Arc::new(resolve_sites(&model, &SiteSpec::AllParams).params);
    let fault_model: Arc<dyn FaultModel> = Arc::new(BernoulliBitFlip::new(1e-3));

    let sites2 = Arc::clone(&sites);
    let fm2 = Arc::clone(&fault_model);
    let mut log_target = move |c: &FaultConfig| c.log_prob(&sites2, fm2.as_ref()).unwrap();

    let prior = PriorProposal::new(Arc::clone(&sites), Arc::clone(&fault_model));
    let toggle = BitToggleProposal::new(Arc::clone(&sites), BitRange::all());

    let mut group = c.benchmark_group("mh_step_mlp_prior_target");
    group.bench_function("prior_proposal", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = FaultConfig::clean();
        let mut lp = log_target(&state);
        b.iter(|| {
            black_box(mh_step(
                &mut state,
                &mut lp,
                &prior,
                &mut log_target,
                &mut rng,
            ));
        });
    });
    group.bench_function("bit_toggle_proposal", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = FaultConfig::clean();
        let mut lp = log_target(&state);
        b.iter(|| {
            black_box(mh_step(
                &mut state,
                &mut lp,
                &toggle,
                &mut log_target,
                &mut rng,
            ));
        });
    });
    group.finish();
}

fn bench_diagnostics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let chains: Vec<Trace> = (0..4)
        .map(|_| {
            (0..2000)
                .map(|_| bdlfi_tensor::init::standard_normal(&mut rng) as f64)
                .collect()
        })
        .collect();
    c.bench_function("split_rhat_4x2000", |b| {
        b.iter(|| black_box(split_rhat(&chains)));
    });
    c.bench_function("ess_4x2000", |b| {
        b.iter(|| black_box(ess(&chains)));
    });
}

criterion_group!(benches, bench_mh_steps, bench_diagnostics);
criterion_main!(benches);
