//! Criterion micro-benchmarks for the tensor substrate: the kernels that
//! dominate campaign cost (matmul, conv2d, softmax). These quantify the
//! paper's point that BDLFI campaigns are pure inference and therefore
//! accelerate with the platform's inference throughput.

use bdlfi_tensor::{conv2d, Conv2dSpec, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Tensor::rand_normal([n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([n, n], 0.0, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_tn(&b)));
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_nt(&b)));
        });
    }
    group.finish();
}

/// Blocked kernel vs. the retired naive loops at 256³ — the headline
/// comparison for the cache-blocked, register-tiled rewrite.
fn bench_matmul_blocked_vs_naive(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 256usize;
    let a = Tensor::rand_normal([n, n], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal([n, n], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("matmul_256");
    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    group.bench_function("blocked", |bench| {
        bench.iter(|| black_box(a.matmul(&b)));
    });
    group.bench_function("naive", |bench| {
        bench.iter(|| black_box(a.matmul_naive(&b)));
    });
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("conv2d");
    for &(ch, size) in &[(8usize, 32usize), (16, 16), (32, 8)] {
        let x = Tensor::rand_normal([1, ch, size, size], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal([ch, ch, 3, 3], 0.0, 0.1, &mut rng);
        let spec = Conv2dSpec::new(3).with_padding(1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ch}c_{size}px")),
            &ch,
            |bench, _| {
                bench.iter(|| black_box(conv2d(&x, &w, None, spec)));
            },
        );
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let logits = Tensor::rand_normal([256, 10], 0.0, 3.0, &mut rng);
    c.bench_function("softmax_rows_256x10", |b| {
        b.iter(|| black_box(logits.softmax_rows()));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_blocked_vs_naive,
    bench_conv2d,
    bench_softmax
);
criterion_main!(benches);
