//! Criterion benchmarks for end-to-end BDLFI: the cost of one faulty
//! evaluation (the campaign inner loop) for both evaluated networks, and a
//! whole small campaign — the numbers behind "specialised hardware
//! accelerates inference and hence the fault injection campaigns".

use bdlfi::{run_campaign, CampaignConfig, FaultyModel, KernelChoice};
use bdlfi_bayes::ChainConfig;
use bdlfi_data::{gaussian_blobs, synth_cifar, SynthCifarConfig};
use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_nn::{mlp, predict_all, resnet18, ResNetConfig};
use criterion::{criterion_group, criterion_main, Criterion, SamplingMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

fn mlp_faulty_model() -> FaultyModel {
    let mut rng = StdRng::seed_from_u64(0);
    let data = Arc::new(gaussian_blobs(200, 3, 1.0, &mut rng));
    let model = mlp(2, &[32], 3, &mut rng);
    FaultyModel::new(
        model,
        data,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-3)),
    )
}

fn bench_faulty_eval_mlp(c: &mut Criterion) {
    let mut fm = mlp_faulty_model();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("faulty_eval_mlp_200pts", |b| {
        b.iter(|| {
            let cfg = fm.sample_config(&mut rng);
            black_box(fm.eval_error(&cfg, &mut rng))
        });
    });
}

fn bench_faulty_eval_resnet(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = SynthCifarConfig {
        classes: 10,
        image_size: 32,
        noise: 1.0,
        phase_jitter: 1.0,
        label_noise: 0.0,
    };
    let data = Arc::new(synth_cifar(16, cfg, &mut rng));
    let net = resnet18(
        ResNetConfig {
            in_channels: 3,
            base_width: 4,
            classes: 10,
        },
        &mut rng,
    );
    let mut fm = FaultyModel::new(
        net,
        data,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(1e-4)),
    );
    let mut group = c.benchmark_group("faulty_eval_resnet");
    group.sample_size(10).sampling_mode(SamplingMode::Flat);
    group.bench_function("w4_16imgs", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let cfg = fm.sample_config(&mut rng);
            black_box(fm.eval_error(&cfg, &mut rng))
        });
    });
    group.finish();
}

fn bench_small_campaign(c: &mut Criterion) {
    let fm = mlp_faulty_model();
    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples: 25,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        seed: 9,
        ..CampaignConfig::default()
    };
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10).sampling_mode(SamplingMode::Flat);
    group.bench_function("mlp_2x25_prior", |b| {
        b.iter(|| black_box(run_campaign(&fm, &cfg)));
    });
    group.finish();
}

/// Incremental suffix re-inference vs. a cold full forward pass for a
/// layerwise campaign on a deep MLP: faults confined to the final dense
/// layer resume from the last cached boundary, so the cost should scale
/// with the dirty suffix rather than the network depth.
fn bench_incremental_vs_cold(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let data = Arc::new(gaussian_blobs(256, 3, 1.0, &mut rng));
    let model = mlp(2, &[64, 64, 64, 64, 64, 64], 3, &mut rng);
    let last = format!("fc{}", 7); // hidden.len() + 1
    let mut fm = FaultyModel::new(
        model.clone(),
        Arc::clone(&data),
        &SiteSpec::LayerParams { prefix: last },
        Arc::new(BernoulliBitFlip::new(1e-3)),
    );

    let mut group = c.benchmark_group("layerwise_deep_mlp");
    group.bench_function("incremental", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let cfg = fm.sample_config(&mut rng);
            black_box(fm.eval_error(&cfg, &mut rng))
        });
    });
    group.bench_function("cold", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cold_model = model.clone();
        b.iter(|| {
            let cfg = fm.sample_config(&mut rng);
            let logits = cfg.with_applied(&mut cold_model, |m| predict_all(m, data.inputs(), 64));
            black_box(logits)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_faulty_eval_mlp,
    bench_faulty_eval_resnet,
    bench_small_campaign,
    bench_incremental_vs_cold
);
criterion_main!(benches);
