//! Procedural CIFAR-10 substitute ("synth-CIFAR") for the ResNet-18
//! experiments.
//!
//! The paper trains ResNet-18 on CIFAR-10. That dataset is not available in
//! this environment, so we substitute a *procedural* 10-class RGB image
//! distribution (see DESIGN.md §4): each class is a distinct oriented
//! sinusoidal texture with a class-specific colour phase, randomised per
//! image by phase jitter and additive Gaussian pixel noise. The task
//! exercises the identical code paths (conv stacks, batch-norm statistics,
//! softmax margins) and its hardness — hence the golden-run error band of
//! the paper's Fig. 4 — is tunable through `noise`.

use crate::dataset::Dataset;
use bdlfi_tensor::init::standard_normal;
use bdlfi_tensor::Tensor;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Configuration for [`synth_cifar`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthCifarConfig {
    /// Number of classes (CIFAR-10 uses 10).
    pub classes: usize,
    /// Square image edge length in pixels (CIFAR uses 32).
    pub image_size: usize,
    /// Standard deviation of additive pixel noise; 0 makes the task nearly
    /// deterministic, larger values push the achievable error up.
    pub noise: f32,
    /// Random per-image phase jitter amplitude in radians.
    pub phase_jitter: f32,
    /// Fraction of labels replaced by a uniformly random *different*
    /// class. This pins the achievable (golden) classification error to
    /// roughly `label_noise`, emulating the irreducible hardness of
    /// CIFAR-10 for the paper's ResNet-18 (whose golden error is ≈30 %,
    /// Fig. 4) without needing the photographic dataset.
    pub label_noise: f32,
}

impl Default for SynthCifarConfig {
    /// CIFAR-like defaults: 10 classes, 32×32 RGB, moderate noise, no
    /// label noise.
    fn default() -> Self {
        SynthCifarConfig {
            classes: 10,
            image_size: 32,
            noise: 0.6,
            phase_jitter: 1.0,
            label_noise: 0.0,
        }
    }
}

/// Per-class texture parameters, deterministic in the class index.
fn class_signature(class: usize, classes: usize) -> (f32, f32, [f32; 3]) {
    // Spread spatial frequencies over [1, 4] cycles and orientations over a
    // half turn; colour phases rotate around the hue circle.
    let t = class as f32 / classes as f32;
    let cycles = 1.0 + 3.0 * t;
    let orientation = std::f32::consts::PI * t;
    let colour = [
        2.0 * std::f32::consts::PI * t,
        2.0 * std::f32::consts::PI * t + 2.0,
        2.0 * std::f32::consts::PI * t + 4.0,
    ];
    (cycles, orientation, colour)
}

/// Generates `n` labelled synth-CIFAR images of shape
/// `(n, 3, image_size, image_size)` with values roughly in `[-1, 1]`.
///
/// Classes are assigned round-robin so splits stay balanced.
///
/// # Panics
///
/// Panics if `n == 0` or any config field is zero/negative where it must
/// not be.
pub fn synth_cifar<R: Rng + ?Sized>(n: usize, cfg: SynthCifarConfig, rng: &mut R) -> Dataset {
    assert!(n > 0, "synth_cifar requires n > 0");
    assert!(cfg.classes > 0, "classes must be positive");
    assert!(cfg.image_size > 0, "image_size must be positive");
    assert!(cfg.noise >= 0.0, "noise must be non-negative");
    assert!(cfg.phase_jitter >= 0.0, "phase_jitter must be non-negative");
    assert!(
        (0.0..=1.0).contains(&cfg.label_noise),
        "label_noise must be in [0, 1]"
    );

    let s = cfg.image_size;
    let plane = s * s;
    let mut data = Vec::with_capacity(n * 3 * plane);
    let mut labels = Vec::with_capacity(n);

    for i in 0..n {
        let class = i % cfg.classes;
        let (cycles, orientation, colour) = class_signature(class, cfg.classes);
        let jitter = cfg.phase_jitter * (rng.random::<f32>() - 0.5) * 2.0;
        let (dy, dx) = (orientation.sin(), orientation.cos());
        let freq = 2.0 * std::f32::consts::PI * cycles / s as f32;

        for &chroma in &colour {
            let phase = chroma + jitter;
            for y in 0..s {
                for x in 0..s {
                    let carrier = (freq * (dx * x as f32 + dy * y as f32) + phase).sin();
                    let value = 0.7 * carrier + cfg.noise * standard_normal(rng);
                    data.push(value.clamp(-2.0, 2.0));
                }
            }
        }
        // Label noise: replace by a uniformly random different class.
        let label =
            if cfg.label_noise > 0.0 && cfg.classes > 1 && rng.random::<f32>() < cfg.label_noise {
                let offset = rng.random_range(1..cfg.classes);
                (class + offset) % cfg.classes
            } else {
                class
            };
        labels.push(label);
    }
    Dataset::new(Tensor::from_vec(data, [n, 3, s, s]), labels, cfg.classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_balance() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SynthCifarConfig {
            classes: 10,
            image_size: 16,
            noise: 0.3,
            phase_jitter: 0.5,
            label_noise: 0.0,
        };
        let d = synth_cifar(50, cfg, &mut rng);
        assert_eq!(d.inputs().dims(), &[50, 3, 16, 16]);
        assert_eq!(d.class_counts(), vec![5; 10]);
        assert!(d.inputs().max() <= 2.0 && d.inputs().min() >= -2.0);
    }

    #[test]
    fn class_signatures_are_distinct() {
        let sigs: Vec<_> = (0..10).map(|c| class_signature(c, 10)).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert!(
                    (sigs[i].0 - sigs[j].0).abs() > 1e-3 || (sigs[i].1 - sigs[j].1).abs() > 1e-3,
                    "classes {i} and {j} share a signature"
                );
            }
        }
    }

    #[test]
    fn noiseless_images_of_same_class_correlate() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SynthCifarConfig {
            classes: 2,
            image_size: 8,
            noise: 0.0,
            phase_jitter: 0.0,
            label_noise: 0.0,
        };
        let d = synth_cifar(4, cfg, &mut rng);
        let len = 3 * 8 * 8;
        let img = |i: usize| &d.inputs().data()[i * len..(i + 1) * len];
        // Same class (0 and 2) identical without jitter/noise; different
        // class (0 and 1) differ.
        assert_eq!(img(0), img(2));
        assert_ne!(img(0), img(1));
    }

    #[test]
    fn noise_increases_within_class_variance() {
        let cfg_clean = SynthCifarConfig {
            classes: 2,
            image_size: 8,
            noise: 0.0,
            phase_jitter: 0.0,
            label_noise: 0.0,
        };
        let cfg_noisy = SynthCifarConfig {
            noise: 1.0,
            ..cfg_clean
        };
        let clean = synth_cifar(10, cfg_clean, &mut StdRng::seed_from_u64(2));
        let noisy = synth_cifar(10, cfg_noisy, &mut StdRng::seed_from_u64(2));
        let len = 3 * 8 * 8;
        let dist = |d: &Dataset| {
            let a = &d.inputs().data()[0..len];
            let b = &d.inputs().data()[2 * len..3 * len];
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>()
        };
        assert!(dist(&noisy) > dist(&clean) + 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = SynthCifarConfig::default();
        let a = synth_cifar(6, cfg, &mut StdRng::seed_from_u64(3));
        let b = synth_cifar(6, cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
