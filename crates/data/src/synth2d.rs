//! 2-D synthetic classification tasks for the paper's MLP experiments.
//!
//! The paper's Fig. 1 ③ plots fault-induced error probability over a 2-D
//! input space against the original classification boundary; these
//! generators produce exactly such spaces. Class overlap is tunable so the
//! golden-run error can be placed in the paper's ~5 % band (Fig. 2).

use crate::dataset::Dataset;
use bdlfi_tensor::init::standard_normal;
use bdlfi_tensor::Tensor;
use rand::{Rng, RngExt};

/// Isotropic Gaussian blobs with class centres evenly spaced on a circle.
///
/// `spread` is the per-class standard deviation; larger values overlap the
/// classes and raise the achievable (golden) error.
///
/// # Panics
///
/// Panics if `n == 0`, `classes == 0` or `spread <= 0`.
pub fn gaussian_blobs<R: Rng + ?Sized>(
    n: usize,
    classes: usize,
    spread: f32,
    rng: &mut R,
) -> Dataset {
    assert!(
        n > 0 && classes > 0,
        "gaussian_blobs requires n > 0 and classes > 0"
    );
    assert!(spread > 0.0, "spread must be positive");
    let radius = 3.0f32;
    let mut data = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        let angle = 2.0 * std::f32::consts::PI * class as f32 / classes as f32;
        data.push(radius * angle.cos() + spread * standard_normal(rng));
        data.push(radius * angle.sin() + spread * standard_normal(rng));
        labels.push(class);
    }
    Dataset::new(Tensor::from_vec(data, [n, 2]), labels, classes)
}

/// The classic "two moons" task: two interleaved half-circles with additive
/// Gaussian noise.
///
/// # Panics
///
/// Panics if `n == 0` or `noise < 0`.
pub fn two_moons<R: Rng + ?Sized>(n: usize, noise: f32, rng: &mut R) -> Dataset {
    assert!(n > 0, "two_moons requires n > 0");
    assert!(noise >= 0.0, "noise must be non-negative");
    let mut data = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let t = std::f32::consts::PI * rng.random::<f32>();
        let (x, y) = if class == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        data.push(x + noise * standard_normal(rng));
        data.push(y + noise * standard_normal(rng));
        labels.push(class);
    }
    Dataset::new(Tensor::from_vec(data, [n, 2]), labels, 2)
}

/// Interleaved Archimedean spirals, one arm per class — a task whose
/// decision boundary is long and curved, stressing the Fig. 1 ③
/// boundary-proximity analysis.
///
/// # Panics
///
/// Panics if `n == 0`, `classes == 0` or `noise < 0`.
pub fn spirals<R: Rng + ?Sized>(n: usize, classes: usize, noise: f32, rng: &mut R) -> Dataset {
    assert!(
        n > 0 && classes > 0,
        "spirals requires n > 0 and classes > 0"
    );
    assert!(noise >= 0.0, "noise must be non-negative");
    let mut data = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        let t: f32 = rng.random::<f32>();
        let r = 0.3 + 2.7 * t;
        let angle = 1.75 * t * 2.0 * std::f32::consts::PI
            + 2.0 * std::f32::consts::PI * class as f32 / classes as f32;
        data.push(r * angle.cos() + noise * standard_normal(rng));
        data.push(r * angle.sin() + noise * standard_normal(rng));
        labels.push(class);
    }
    Dataset::new(Tensor::from_vec(data, [n, 2]), labels, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blobs_have_balanced_classes_and_distinct_centres() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = gaussian_blobs(300, 3, 0.3, &mut rng);
        assert_eq!(d.class_counts(), vec![100, 100, 100]);

        // Per-class means should be near the circle of radius 3.
        for class in 0..3 {
            let idx: Vec<usize> = (0..300).filter(|&i| d.labels()[i] == class).collect();
            let sub = d.subset(&idx);
            let mean = sub.inputs().mean_axis0();
            let r = (mean.data()[0].powi(2) + mean.data()[1].powi(2)).sqrt();
            assert!((r - 3.0).abs() < 0.3, "class {class} radius {r}");
        }
    }

    #[test]
    fn blob_spread_controls_overlap() {
        let mut rng = StdRng::seed_from_u64(1);
        let tight = gaussian_blobs(500, 2, 0.1, &mut rng);
        let loose = gaussian_blobs(500, 2, 3.0, &mut rng);
        // Nearest-centroid error is ~0 for tight, substantial for loose.
        let err = |d: &Dataset| {
            let mut wrong = 0;
            for i in 0..d.len() {
                let x = d.inputs().row(i);
                let d0 = (x[0] - 3.0).powi(2) + x[1].powi(2);
                let d1 = (x[0] + 3.0).powi(2) + x[1].powi(2);
                let pred = usize::from(d1 < d0);
                if pred != d.labels()[i] {
                    wrong += 1;
                }
            }
            wrong as f64 / d.len() as f64
        };
        assert!(err(&tight) < 0.01);
        assert!(err(&loose) > 0.1);
    }

    #[test]
    fn moons_are_bounded() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = two_moons(200, 0.05, &mut rng);
        assert_eq!(d.classes(), 2);
        assert!(d.inputs().max() < 3.0);
        assert!(d.inputs().min() > -3.0);
    }

    #[test]
    fn spirals_fill_an_annulus() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = spirals(400, 2, 0.0, &mut rng);
        for i in 0..d.len() {
            let x = d.inputs().row(i);
            let r = (x[0] * x[0] + x[1] * x[1]).sqrt();
            assert!((0.29..=3.01).contains(&r), "radius {r}");
        }
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let a = gaussian_blobs(50, 3, 0.5, &mut StdRng::seed_from_u64(9));
        let b = gaussian_blobs(50, 3, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
