//! Image augmentation for NCHW batches: random horizontal flips and
//! zero-padded random shifts — the standard CIFAR training recipe, here
//! for the synth-CIFAR substitute.

use crate::dataset::Dataset;
use bdlfi_tensor::Tensor;
use rand::{Rng, RngExt};

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Probability of a horizontal mirror per image.
    pub flip_prob: f64,
    /// Maximum absolute shift in pixels per axis (zero padding fills).
    pub max_shift: usize,
}

impl Default for AugmentConfig {
    /// The usual CIFAR recipe: flip half the images, shift by up to 4 px.
    fn default() -> Self {
        AugmentConfig {
            flip_prob: 0.5,
            max_shift: 4,
        }
    }
}

/// Returns an augmented copy of an NCHW image batch.
///
/// # Panics
///
/// Panics if `images` is not rank 4 or `flip_prob` is not a probability.
pub fn augment_batch<R: Rng + ?Sized>(images: &Tensor, cfg: AugmentConfig, rng: &mut R) -> Tensor {
    assert_eq!(images.rank(), 4, "augment_batch expects an NCHW tensor");
    assert!(
        (0.0..=1.0).contains(&cfg.flip_prob),
        "flip_prob must be in [0, 1]"
    );
    let (n, c, h, w) = (images.dim(0), images.dim(1), images.dim(2), images.dim(3));
    let mut out = images.clone();
    let plane = h * w;
    let image_len = c * plane;

    for img in 0..n {
        let flip = rng.random::<f64>() < cfg.flip_prob;
        let (dy, dx) = if cfg.max_shift == 0 {
            (0isize, 0isize)
        } else {
            let s = cfg.max_shift as i64;
            (
                rng.random_range(-s..=s) as isize,
                rng.random_range(-s..=s) as isize,
            )
        };
        if !flip && dy == 0 && dx == 0 {
            continue;
        }
        let src = &images.data()[img * image_len..(img + 1) * image_len];
        let dst = &mut out.data_mut()[img * image_len..(img + 1) * image_len];
        for ch in 0..c {
            for y in 0..h as isize {
                for x in 0..w as isize {
                    let sy = y - dy;
                    let sx_pre = x - dx;
                    let sx = if flip {
                        w as isize - 1 - sx_pre
                    } else {
                        sx_pre
                    };
                    let v = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                        src[ch * plane + sy as usize * w + sx as usize]
                    } else {
                        0.0
                    };
                    dst[ch * plane + y as usize * w + x as usize] = v;
                }
            }
        }
    }
    out
}

/// Returns a dataset whose inputs are augmented (labels unchanged).
///
/// # Panics
///
/// Panics under the same conditions as [`augment_batch`].
pub fn augment_dataset<R: Rng + ?Sized>(
    data: &Dataset,
    cfg: AugmentConfig,
    rng: &mut R,
) -> Dataset {
    Dataset::new(
        augment_batch(data.inputs(), cfg, rng),
        data.labels().to_vec(),
        data.classes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ramp_image() -> Tensor {
        // 1 image, 1 channel, 4x4 with distinct values.
        Tensor::from_fn([1, 1, 4, 4], |i| (i[2] * 4 + i[3]) as f32)
    }

    #[test]
    fn identity_config_is_noop() {
        let x = ramp_image();
        let mut rng = StdRng::seed_from_u64(0);
        let y = augment_batch(
            &x,
            AugmentConfig {
                flip_prob: 0.0,
                max_shift: 0,
            },
            &mut rng,
        );
        assert_eq!(y, x);
    }

    #[test]
    fn certain_flip_mirrors_rows() {
        let x = ramp_image();
        let mut rng = StdRng::seed_from_u64(1);
        let y = augment_batch(
            &x,
            AugmentConfig {
                flip_prob: 1.0,
                max_shift: 0,
            },
            &mut rng,
        );
        // Row 0 was [0,1,2,3]; mirrored it is [3,2,1,0].
        assert_eq!(&y.data()[..4], &[3.0, 2.0, 1.0, 0.0]);
        // Double flip restores.
        let z = augment_batch(
            &y,
            AugmentConfig {
                flip_prob: 1.0,
                max_shift: 0,
            },
            &mut rng,
        );
        assert_eq!(z, x);
    }

    #[test]
    fn shifts_pad_with_zeros() {
        let x = Tensor::ones([1, 1, 4, 4]);
        let mut rng = StdRng::seed_from_u64(2);
        // Shift guaranteed (range -2..=2); any nonzero shift introduces 0s
        // at the border. Run several draws and check invariants each time.
        let mut saw_shifted = false;
        for _ in 0..20 {
            let y = augment_batch(
                &x,
                AugmentConfig {
                    flip_prob: 0.0,
                    max_shift: 2,
                },
                &mut rng,
            );
            let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
            let ones = y.data().iter().filter(|&&v| v == 1.0).count();
            assert_eq!(zeros + ones, 16, "values must stay {{0, 1}}");
            if zeros > 0 {
                saw_shifted = true;
            }
        }
        assert!(saw_shifted);
    }

    #[test]
    fn augment_preserves_labels_and_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = Dataset::new(
            Tensor::rand_normal([6, 3, 8, 8], 0.0, 1.0, &mut rng),
            vec![0, 1, 2, 0, 1, 2],
            3,
        );
        let aug = augment_dataset(&data, AugmentConfig::default(), &mut rng);
        assert_eq!(aug.labels(), data.labels());
        assert_eq!(aug.inputs().dims(), data.inputs().dims());
        assert_ne!(aug.inputs(), data.inputs());
    }
}
