//! In-memory classification datasets with splitting and normalisation.

use bdlfi_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled classification dataset: inputs batched on axis 0 plus integer
/// class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Input examples, batched on axis 0.
    inputs: Tensor,
    /// Class index per example.
    labels: Vec<usize>,
    /// Number of classes.
    classes: usize,
}

impl Dataset {
    /// Creates a dataset from inputs and labels.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.dim(0) != labels.len()` or any label is
    /// `>= classes`.
    pub fn new(inputs: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(
            inputs.dim(0),
            labels.len(),
            "input batch and label count must match"
        );
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        Dataset {
            inputs,
            labels,
            classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The input tensor, batched on axis 0.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// The class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Copies the examples selected by `indices` into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let n = self.len();
        let example_len = self.inputs.len() / n.max(1);
        let mut data = Vec::with_capacity(indices.len() * example_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < n, "subset index {i} out of bounds for {n} examples");
            data.extend_from_slice(&self.inputs.data()[i * example_len..(i + 1) * example_len]);
            labels.push(self.labels[i]);
        }
        let mut dims = self.inputs.dims().to_vec();
        dims[0] = indices.len();
        Dataset {
            inputs: Tensor::from_vec(data, dims),
            labels,
            classes: self.classes,
        }
    }

    /// Shuffles and splits into `(train, test)` with `train_fraction` of the
    /// examples in the training split.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not in `(0, 1)`.
    pub fn split<R: Rng + ?Sized>(&self, train_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
            "train_fraction must be in (0, 1)"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        (self.subset(&indices[..cut]), self.subset(&indices[cut..]))
    }

    /// Shuffles and partitions into `k` folds; returns, for each fold, the
    /// `(train, validation)` pair where the fold is held out — standard
    /// k-fold cross-validation, used to pick golden-run hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > self.len()`.
    pub fn k_folds<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "k-fold needs at least 2 folds");
        assert!(k <= self.len(), "more folds than examples");
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);

        let base = self.len() / k;
        let extra = self.len() % k;
        let mut folds: Vec<&[usize]> = Vec::with_capacity(k);
        let mut start = 0;
        for f in 0..k {
            let len = base + usize::from(f < extra);
            folds.push(&indices[start..start + len]);
            start += len;
        }

        (0..k)
            .map(|held_out| {
                let val = self.subset(folds[held_out]);
                let train_idx: Vec<usize> = folds
                    .iter()
                    .enumerate()
                    .filter(|(f, _)| *f != held_out)
                    .flat_map(|(_, idx)| idx.iter().copied())
                    .collect();
                (self.subset(&train_idx), val)
            })
            .collect()
    }

    /// Standardises each input feature to zero mean and unit variance
    /// (computed over this dataset), returning the normalised dataset and
    /// the `(mean, std)` tensors needed to apply the same transform to other
    /// data.
    pub fn standardize(&self) -> (Dataset, Tensor, Tensor) {
        let n = self.len();
        let example_len = self.inputs.len() / n.max(1);
        let flat = self.inputs.reshape([n, example_len]);
        let mean = flat.mean_axis0();
        let centred = Tensor::from_fn([n, example_len], |i| {
            flat.at(&[i[0], i[1]]) - mean.data()[i[1]]
        });
        let var = centred.map(|x| x * x).mean_axis0();
        let std = var.map(|v| v.sqrt().max(1e-6));
        let normed = Tensor::from_fn([n, example_len], |i| {
            centred.at(&[i[0], i[1]]) / std.data()[i[1]]
        })
        .reshape(self.inputs.dims().to_vec());
        (
            Dataset {
                inputs: normed,
                labels: self.labels.clone(),
                classes: self.classes,
            },
            mean,
            std,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::new(
            Tensor::from_fn([10, 3], |i| (i[0] * 3 + i[1]) as f32),
            (0..10).map(|i| i % 2).collect(),
            2,
        )
    }

    #[test]
    fn construction_validates() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_rejected() {
        Dataset::new(Tensor::zeros([2, 2]), vec![0, 5], 2);
    }

    #[test]
    fn subset_copies_rows() {
        let d = toy();
        let s = d.subset(&[1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.inputs().row(0), d.inputs().row(1));
        assert_eq!(s.labels(), &[1, 1]);
    }

    #[test]
    fn split_partitions_all_examples() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let (tr, te) = d.split(0.7, &mut rng);
        assert_eq!(tr.len() + te.len(), d.len());
        assert_eq!(tr.len(), 7);
    }

    #[test]
    fn k_folds_partition_without_overlap() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(4);
        let folds = d.k_folds(3, &mut rng);
        assert_eq!(folds.len(), 3);
        // Validation sizes: 10 = 4 + 3 + 3.
        let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(*sizes.iter().max().unwrap(), 4);
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), d.len());
            // No example appears in both splits: compare row contents.
            for i in 0..val.len() {
                let vr = val.inputs().row(i);
                for j in 0..train.len() {
                    assert_ne!(vr, train.inputs().row(j));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "more folds than examples")]
    fn too_many_folds_rejected() {
        let d = toy();
        d.k_folds(11, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn standardize_gives_zero_mean_unit_var() {
        let d = toy();
        let (s, _, _) = d.standardize();
        let flat = s.inputs().reshape([10, 3]);
        let mean = flat.mean_axis0();
        for &m in mean.data() {
            assert!(m.abs() < 1e-5);
        }
        let var = flat.map(|x| x * x).mean_axis0();
        for &v in var.data() {
            assert!((v - 1.0).abs() < 1e-4, "var {v}");
        }
    }

    #[test]
    fn standardize_returns_transform_params() {
        let d = toy();
        let (_, mean, std) = d.standardize();
        assert_eq!(mean.dims(), &[3]);
        assert_eq!(std.dims(), &[3]);
        assert!(std.data().iter().all(|&s| s > 0.0));
    }
}
