//! # bdlfi-data
//!
//! Dataset substrate for the BDLFI reproduction ("Towards a Bayesian
//! Approach for Assessing Fault Tolerance of Deep Neural Networks",
//! DSN 2019).
//!
//! Provides the workloads the two evaluated networks train on:
//!
//! * [`gaussian_blobs`] / [`two_moons`] / [`spirals`] — 2-D synthetic classification tasks (Gaussian blobs,
//!   moons, spirals) for the paper's MLP and its decision-boundary analysis
//!   (Fig. 1 ③, Fig. 2);
//! * [`synth_cifar`] — a procedural CIFAR-10 substitute for the ResNet-18
//!   experiments (Fig. 3, Fig. 4); see DESIGN.md §4 for the substitution
//!   rationale;
//! * [`Dataset`] — splitting, subsetting and standardisation.
//!
//! # Examples
//!
//! ```
//! use bdlfi_data::{gaussian_blobs, Dataset};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data = gaussian_blobs(100, 3, 0.5, &mut rng);
//! let (train, test) = data.split(0.8, &mut rng);
//! assert_eq!(train.len() + test.len(), 100);
//! ```

#![warn(missing_docs)]

mod augment;
mod dataset;
mod synth2d;
mod synthcifar;

pub use augment::{augment_batch, augment_dataset, AugmentConfig};
pub use dataset::Dataset;
pub use synth2d::{gaussian_blobs, spirals, two_moons};
pub use synthcifar::{synth_cifar, SynthCifarConfig};
