// Fixture: the escape hatch used correctly — code + reason. The BD001
// finding on the next line is waived, so the file must be clean.

fn demo_noise() -> f32 {
    // bdlfi-lint: allow(BD001) -- interactive demo harness, never feeds a campaign
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}
