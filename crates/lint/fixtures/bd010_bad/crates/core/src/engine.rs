//! BD010 bad fixture: a root fn that unwraps directly, a root fn that
//! slice-indexes, and an entry point whose panic lives two calls away
//! in another crate (see ../../nn/src/prep.rs).

pub fn claim_slot(slots: &mut Vec<u32>, id: u32) -> u32 {
    let slot = slots.pop().unwrap();
    slot + id
}

pub fn peek_first(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn run_batch(n: u32) -> u32 {
    preprocess_batch(n)
}
