//! Reached from the engine fixture's `run_batch` via a cross-crate call
//! chain; the panic below must be reported with that chain as notes.

pub fn preprocess_batch(n: u32) -> u32 {
    scale_one(n)
}

fn scale_one(n: u32) -> u32 {
    if n == 0 {
        panic!("empty batch");
    }
    n * 2
}
