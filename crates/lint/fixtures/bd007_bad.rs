// Fixture: two ways the delta path can silently go approximate — a
// delta routine whose signature cannot refuse, and a caller with no
// exact fallback in reach. Must trip BD007 (twice) and nothing else.

/// A delta routine that always claims success: saturation, conv fan-out,
/// and requant cases have no way to refuse, so it ships approximate
/// logits for them.
pub fn forward_delta_blocks(model: &mut Sequential, cache: &PrefixCache) -> Tensor {
    propagate(model, cache)
}

/// A caller that trusts the delta path unconditionally: when the routine
/// refuses, there is no predict_from/forward_from route to exact logits.
pub fn eval_sparse(model: &mut Sequential, cache: &PrefixCache, cfg: &FaultConfig) -> Tensor {
    match forward_delta_f32(model, cache, cfg, 0.75) {
        Some(out) => out,
        None => cache.golden_logits().clone(),
    }
}
