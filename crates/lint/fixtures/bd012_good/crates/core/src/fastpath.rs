//! BD012 good fixture: the distant crate enters the kernel through the
//! module's own guarded dispatch wrapper — no feature policy duplicated,
//! and the benched selector stays in charge of which variant runs.

pub fn fast_scale(x: &mut [f32]) {
    gemm_dispatch(x);
}
