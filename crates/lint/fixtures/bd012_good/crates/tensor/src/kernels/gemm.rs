//! The kernel module: a `#[target_feature]` kernel, its scalar
//! `*_reference` oracle, and the benched selector's guarded dispatch —
//! the one sanctioned front door. This file is identical in the good
//! and bad trees; the difference is how the other crate enters it.

use std::arch::x86_64::*;

#[target_feature(enable = "avx2")]
pub fn gemm_avx2(x: &mut [f32]) {
    // SAFETY: caller guarantees AVX2; lanes load from ordinary slices.
    unsafe {
        let v = _mm256_loadu_ps(x.as_ptr());
        _mm256_storeu_ps(x.as_mut_ptr(), _mm256_add_ps(v, v));
    }
}

pub fn gemm_reference(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v += *v;
    }
}

pub fn gemm_dispatch(x: &mut [f32]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence established by the check above; the
        // kernel takes ordinary slices otherwise.
        return unsafe { gemm_avx2(x) };
    }
    gemm_reference(x);
}
