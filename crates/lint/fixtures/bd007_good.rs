// Fixture: the sanctioned shape — the delta routine returns Option so it
// can refuse, and its caller routes every refusal through the exact
// incremental path. Must lint clean.

/// Refuses (None) on saturation, conv fan-out, and requant cases.
pub fn forward_delta_blocks(model: &mut Sequential, cache: &PrefixCache) -> Option<Tensor> {
    propagate(model, cache)
}

/// Falls back to the exact incremental path whenever the delta refuses.
pub fn eval_sparse(model: &mut Sequential, cache: &PrefixCache, cfg: &FaultConfig) -> Tensor {
    match forward_delta_f32(model, cache, cfg, 0.75) {
        Some(out) => out,
        None => cache.predict_from(model, 0),
    }
}
