//! BD012 bad fixture: a second dispatch site in a distant crate. It is
//! feature-checked *and* SAFETY-justified — BD008 is fully satisfied —
//! yet it still bypasses the kernel module's benched selector front
//! door, duplicating the feature-detection policy where per-shape
//! benching cannot see it.

pub fn fast_scale(x: &mut [f32]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 presence established by the check above.
        unsafe { gemm_avx2(x) };
        return;
    }
    scale_fallback(x);
}

fn scale_fallback(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= 2.0;
    }
}
