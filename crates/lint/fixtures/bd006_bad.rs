// Fixture: a controlled driver that accepts a CheckpointSpec but never
// binds a journal fingerprint tag — its journals inherit the callee's
// identity and become cross-driver resume-compatible. Must trip BD006 and
// nothing else.

pub fn run_study_controlled(
    cfg: &StudyConfig,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<Study, EngineError> {
    inner_controlled(cfg, ctl, ckpt)
}
