// Fixture: nondeterministic entropy outside crates/bench. Linted under a
// virtual non-bench path; must trip BD001 and nothing else.

fn sample_noise() -> f32 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}
