//! BD011 bad fixture: `journal_form` reaches wall-clock state through a
//! helper defined in another file (util.rs) — the journal is no longer
//! a pure function of the campaign.

impl CampaignReport {
    pub fn journal_form(&self) -> CampaignReport {
        let mut j = self.clone();
        j.elapsed_micros = current_elapsed();
        j
    }
}
