//! The ambient-state helper the bad fixtures route through. `Instant`
//! is fine for RunMeta timing (BD001 allows it) — the violation is
//! letting it reach journal or fingerprint bytes.

pub fn current_elapsed() -> u64 {
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}
