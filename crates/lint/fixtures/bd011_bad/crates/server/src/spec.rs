//! The fingerprint sink itself is pure — FNV-1a over the spec bytes and
//! an explicit salt. The violations are upstream: what callers feed it.

pub fn job_fingerprint(spec: &JobSpec, salt: u64) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for b in spec.canonical_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}
