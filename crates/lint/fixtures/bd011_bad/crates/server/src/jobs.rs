//! BD011 bad fixture, argument side: tainted values passed *into* a
//! fingerprint fn — once via a wall-clock-tainted helper call, once via
//! a direct `Instant::now()` in the argument list.

pub fn submit_job(spec: &JobSpec) -> String {
    job_fingerprint(spec, current_elapsed())
}

pub fn submit_job_stamped(spec: &JobSpec) -> String {
    job_fingerprint(spec, micros_of(Instant::now()))
}
