// Fixture: the two legal shapes in serialization-adjacent code — ordered
// iteration over a BTreeMap, and *keyed* (non-iterating) HashMap lookups.
// Must be clean.

use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

#[derive(Serialize)]
struct Report {
    lines: Vec<String>,
}

fn render(hits: BTreeMap<String, u64>, golden: &HashMap<String, u64>) -> Report {
    let mut lines = Vec::new();
    for (site, count) in hits.iter() {
        let base = golden.get(site).copied().unwrap_or(0);
        lines.push(format!("{site}: {count} (golden {base})"));
    }
    Report { lines }
}
