//! BD008 fixture: the sanctioned dispatch shape. Feature-checked call
//! with an adjacent SAFETY justification, a tf-to-tf call needing no
//! runtime check, and a scalar `*_reference` oracle next to the
//! intrinsics.

use std::arch::x86_64::*;

#[target_feature(enable = "avx2")]
fn kernel_core_avx2(x: &mut [f32]) {
    // SAFETY: lanes loaded from an asserted-in-bounds slice.
    unsafe {
        let v = _mm256_loadu_ps(x.as_ptr());
        _mm256_storeu_ps(x.as_mut_ptr(), _mm256_add_ps(v, v));
    }
}

#[target_feature(enable = "avx2")]
fn kernel_outer_avx2(x: &mut [f32]) {
    // The enclosing fn is itself #[target_feature]: the feature holds
    // statically, no runtime re-check needed.
    kernel_core_avx2(x);
}

fn kernel_reference(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v += *v;
    }
}

pub fn dispatch(x: &mut [f32]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: calling a `#[target_feature(enable = "avx2")]` function
        // requires the CPU to support AVX2, which the check above
        // guarantees; the kernel takes ordinary slices otherwise.
        return unsafe { kernel_outer_avx2(x) };
    }
    kernel_reference(x);
}
