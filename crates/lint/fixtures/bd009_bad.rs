// Two violations: a shard runner that reuses the campaign's base
// fingerprint verbatim (every shard's journal becomes interchangeable),
// and a shard_fingerprint helper that forgets the shard count.

pub fn run_demo_shard(
    plan: &ShardPlan,
    index: usize,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> Result<RunMeta, ShardError> {
    let info = plan.info(index)?;
    let spec = CheckpointSpec {
        fingerprint: ckpt.fingerprint.clone(),
        ..ckpt.clone()
    };
    let engine = EvalEngine::new(7);
    let meta = engine.run_shard_checkpointed(
        info,
        plan.range(index)?.len(),
        || (),
        |(), ctx| Ok(ctx.task_id),
        &mut NullSink,
        ctl,
        &spec,
    )?;
    Ok(meta)
}

pub fn shard_fingerprint(base: &str, index: usize) -> String {
    fingerprint("shard", &(base.to_string(), index as u64))
}
