// Fixture: an `unsafe` block with no SAFETY justification anywhere near
// it. Must trip BD004 and nothing else.

fn first_lane(v: &[f32; 8]) -> f32 {
    unsafe { *v.as_ptr() }
}
