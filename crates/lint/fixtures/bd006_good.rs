// Fixture: the sanctioned shapes — one driver binding its tag directly,
// one through a local `*_fingerprint` helper, tags distinct. Must be
// clean.

pub fn run_sweep_controlled(
    cfg: &SweepConfig,
    ckpt: Option<&CheckpointSpec>,
) -> Result<Sweep, EngineError> {
    let ckpt = bind(ckpt, fingerprint("sweep", cfg));
    drive(cfg, ckpt)
}

pub fn run_grid_controlled(
    cfg: &GridConfig,
    ckpt: Option<&CheckpointSpec>,
) -> Result<Grid, EngineError> {
    let ckpt = bind(ckpt, grid_fingerprint(cfg));
    drive_grid(cfg, ckpt)
}

fn grid_fingerprint(cfg: &GridConfig) -> String {
    fingerprint("grid", cfg)
}
