// Fixture: a multi-line SAFETY justification whose contiguous comment
// block ends directly above the `unsafe` keyword — the idiomatic shape the
// rule must accept. Must be clean.

fn first_lane(v: &[f32; 8]) -> f32 {
    // SAFETY: `v` is a reference to a [f32; 8], so `as_ptr()` yields a
    // valid, aligned, live pointer to its first element; reading one f32
    // through it is in-bounds by construction. The array is borrowed for
    // the whole call, so no aliasing write can race the read.
    unsafe { *v.as_ptr() }
}
