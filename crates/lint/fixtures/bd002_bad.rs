// Fixture: additive seed derivation feeding an RNG constructor. `seed + i`
// makes streams i and i+1 of adjacent base seeds collide; must trip BD002
// and nothing else.

use rand::rngs::StdRng;
use rand::SeedableRng;

fn per_chain_rng(seed: u64, chain: u64) -> StdRng {
    StdRng::seed_from_u64(seed + chain)
}
