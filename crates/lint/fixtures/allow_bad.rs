// Fixture: a reasonless allow directive. It is inert (the BD001 finding
// survives) and itself reported as BD000. Must trip exactly {BD000, BD001}.

fn demo_noise() -> f32 {
    // bdlfi-lint: allow(BD001)
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}
