//! BD010 good fixture: typed errors end-to-end, a documented waiver on
//! the one sanctioned panicking convenience wrapper, and test-only
//! unwraps (exempt).

pub fn claim_slot(slots: &mut Vec<u32>, id: u32) -> Result<u32, EngineError> {
    match slots.pop() {
        Some(slot) => Ok(slot + id),
        None => Err(EngineError::Exhausted),
    }
}

pub fn peek_first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn run_batch(n: u32) -> Result<u32, EngineError> {
    preprocess_batch(n)
}

pub fn run_batch_or_die(n: u32) -> u32 {
    match run_batch(n) {
        Ok(v) => v,
        // bdlfi-lint: allow(BD010) -- documented panicking convenience wrapper; campaign paths use run_batch
        Err(_) => panic!("run_batch failed"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(super::run_batch(3).unwrap(), 6);
    }
}
