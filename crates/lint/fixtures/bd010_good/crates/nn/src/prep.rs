//! The helper crate in its typed-error form: the engine entry point can
//! reach every fn here without finding a panic site.

pub fn preprocess_batch(n: u32) -> Result<u32, EngineError> {
    scale_one(n)
}

fn scale_one(n: u32) -> Result<u32, EngineError> {
    if n == 0 {
        return Err(EngineError::EmptyBatch);
    }
    Ok(n * 2)
}
