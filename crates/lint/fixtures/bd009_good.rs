// A disciplined shard runner: the journal fingerprint is derived through
// a shard_fingerprint helper applied to the shard index, and the helper
// embeds both the index and the count in the derivation.

impl ShardPlan {
    pub fn shard_fingerprint(&self, index: usize) -> String {
        let base = self.fingerprint.as_str();
        let count = self.count as u64;
        fingerprint("shard", &(base.to_string(), count, index as u64))
    }
}

pub fn run_demo_shard(
    plan: &ShardPlan,
    index: usize,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> Result<RunMeta, ShardError> {
    let info = plan.info(index)?;
    let spec = CheckpointSpec {
        fingerprint: plan.shard_fingerprint(index),
        ..ckpt.clone()
    };
    let engine = EvalEngine::new(7);
    let meta = engine.run_shard_checkpointed(
        info,
        plan.range(index)?.len(),
        || (),
        |(), ctx| Ok(ctx.task_id),
        &mut NullSink,
        ctl,
        &spec,
    )?;
    Ok(meta)
}

// Not a journal writer: delegating a shard job to a runner needs no tag
// of its own — the runner derives it.
pub fn dispatch_shard_job(plan: &ShardPlan, index: usize, ckpt: &CheckpointSpec) -> Outcome {
    match run_demo_shard(plan, index, &RunControl::default(), ckpt) {
        Ok(meta) => Outcome::Done(meta),
        Err(e) => Outcome::Failed(e.to_string()),
    }
}
