// Fixture: explicit seeding — the only entropy discipline the workspace
// allows outside crates/bench. Must be clean.

use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_noise(seed: u64) -> f32 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen_range(0.0..1.0)
}
