//! BD011 good fixture: `journal_form` scrubs every ambient field to a
//! constant — journal bytes are a pure function of the campaign.

impl CampaignReport {
    pub fn journal_form(&self) -> CampaignReport {
        let mut j = self.clone();
        j.elapsed_micros = 0;
        j.workers = 1;
        j
    }
}
