//! Wall-clock helpers may exist — RunMeta timing is allowed to observe
//! the clock. Taint alone is not a violation; only taint that reaches
//! journal or fingerprint bytes is.

pub fn current_elapsed() -> u64 {
    let t = Instant::now();
    t.elapsed().as_micros() as u64
}
