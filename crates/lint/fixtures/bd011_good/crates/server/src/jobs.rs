//! BD011 good fixture, argument side: fingerprint inputs come from the
//! spec and an explicit constant salt — nothing ambient.

pub fn submit_job(spec: &JobSpec) -> String {
    job_fingerprint(spec, 0)
}
