// Fixture: the sanctioned seed discipline — SplitMix64 lane derivation via
// `seed_stream`. Lane-index arithmetic (`2 * restart + 1`) inside the lane
// argument is legal: the addition feeds the lane, not the seed. Must be
// clean.

use bdlfi_bayes::seed_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn per_restart_rng(seed: u64, restart: u64) -> StdRng {
    StdRng::seed_from_u64(seed_stream(seed, 2 * restart + 1))
}
