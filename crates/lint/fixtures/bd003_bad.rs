// Fixture: hash-order iteration in a serialization-adjacent file (it
// derives Serialize). The report body's key order then varies run to run.
// Must trip BD003 and nothing else.

use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct Report {
    lines: Vec<String>,
}

fn render(hits: HashMap<String, u64>) -> Report {
    let mut lines = Vec::new();
    for (site, count) in hits.iter() {
        lines.push(format!("{site}: {count}"));
    }
    Report { lines }
}
