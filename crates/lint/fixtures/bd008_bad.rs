//! BD008 fixture: three dispatch-discipline violations, nothing else.
//! A `*_reference` oracle is deliberately absent while `_mm256_add_ps`
//! is used, one `#[target_feature]` kernel is called with no feature
//! check at all, and another is called with a check but no `SAFETY:`
//! justification between the check and the call.

use std::arch::x86_64::*;

#[target_feature(enable = "avx2")]
fn kernel_a_avx2(x: &mut [f32]) {
    // SAFETY: lanes loaded from an asserted-in-bounds slice.
    unsafe {
        let v = _mm256_loadu_ps(x.as_ptr());
        _mm256_storeu_ps(x.as_mut_ptr(), _mm256_add_ps(v, v));
    }
}

#[target_feature(enable = "avx2")]
fn kernel_b_avx2(x: &mut [f32]) {
    for v in x.iter_mut() {
        *v += *v;
    }
}

fn unguarded_dispatch(x: &mut [f32]) {
    // SAFETY: (bogus) the build machine happens to have AVX2.
    unsafe { kernel_a_avx2(x) }
}

// SAFETY: dispatch below re-checks the feature at runtime.
unsafe fn undocumented_dispatch(x: &mut [f32]) {
    if std::arch::is_x86_feature_detected!("avx2") {
        kernel_b_avx2(x);
    }
}
