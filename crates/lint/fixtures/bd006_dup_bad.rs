// Fixture: two different controlled drivers binding the SAME journal
// fingerprint tag, so a journal written by one resumes cleanly under the
// other. Must trip BD006 (cross-file pass) and nothing else.

pub fn run_sweep_controlled(
    cfg: &SweepConfig,
    ckpt: Option<&CheckpointSpec>,
) -> Result<Sweep, EngineError> {
    let ckpt = bind(ckpt, fingerprint("study", cfg));
    drive(cfg, ckpt)
}

pub fn run_grid_controlled(
    cfg: &GridConfig,
    ckpt: Option<&CheckpointSpec>,
) -> Result<Grid, EngineError> {
    let ckpt = bind(ckpt, fingerprint("study", cfg));
    drive_grid(cfg, ckpt)
}
