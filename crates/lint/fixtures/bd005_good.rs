// Fixture: the same logic expressed with typed errors — and a test module
// proving the test-region exemption (tests *should* unwrap). Linted under
// the virtual path crates/core/src/engine.rs; must be clean.

fn claim_slot(
    slots: &[std::sync::Mutex<Option<usize>>],
    id: usize,
) -> Result<usize, EngineError> {
    let mut slot = slots[id]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    slot.take().ok_or(EngineError::Interrupted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_once() {
        let slots = [std::sync::Mutex::new(Some(7usize))];
        assert_eq!(claim_slot(&slots, 0).unwrap(), 7);
    }
}
