// Fixture: `unwrap`/`panic!` in a typed-error path. Linted under the
// virtual path crates/core/src/engine.rs, where PR 3's resumability
// contract bans process aborts. Must trip BD005 and nothing else.

fn claim_slot(slots: &[std::sync::Mutex<Option<usize>>], id: usize) -> usize {
    let item = slots[id].lock().unwrap().take();
    match item {
        Some(v) => v,
        None => panic!("slot {id} already claimed"),
    }
}
