//! The AST-lite layer: item structure recovered from the token stream.
//!
//! The interprocedural rules (BD010–BD012) need to know *which function*
//! a token belongs to, *what that function calls*, and a handful of
//! per-function facts (does it panic? read ambient entropy? carry
//! `#[target_feature]`?). A full Rust parse is out of scope for a
//! dependency-free linter, so this layer recovers exactly the structure
//! the analyses consume and nothing more:
//!
//! * function items with their body token ranges, found at any nesting
//!   depth (free fns, `impl` methods, trait default methods, nested fns);
//! * the `impl`/`trait` association of each method — `impl EvalSink for
//!   Collector` yields `qual = "Collector"`, `trait_name = "EvalSink"` —
//!   so qualified calls (`Type::method(…)`) and trait-based scoping
//!   (every `EvalSink` impl) can resolve;
//! * call sites, classified as plain calls, qualified path calls,
//!   method calls, or macro invocations;
//! * panic sites (`panic!`/`unreachable!`/`todo!`, `.unwrap()`,
//!   `.expect(…)`, postfix slice indexing);
//! * ambient-state sources (`thread_rng`, `from_entropy`, `OsRng`,
//!   `SystemTime::now`, `Instant::now`, `available_parallelism`,
//!   `thread::current`) with their taint kind.
//!
//! Deliberate approximations (see DESIGN.md §18 for the soundness
//! discussion):
//!
//! * **Closures are attributed to their lexically enclosing fn.** A
//!   closure's calls and panics count as the enclosing function's — right
//!   for the dominant pattern (closures handed to `EvalEngine::run` or
//!   the daemon's `WorkerPool` execute on behalf of the submitting
//!   driver), over-approximate when a closure is built but never called.
//! * **`macro_rules!` bodies are opaque.** Tokens inside a macro
//!   *definition* belong to no function and produce no sites; tokens in
//!   the argument list of a macro *invocation* are scanned normally
//!   (they are ordinary expressions in every macro this workspace uses).
//! * **Generic calls are resolved by name, not by instantiation.**
//!   `f::<T>(x)` links to every workspace fn named `f`.

use crate::lexer::{Token, TokenKind};
use crate::rules::matching_delim;

/// How a call site invokes its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — a free-function call (or a call through a local
    /// binding; unresolvable names simply produce no edges).
    Plain,
    /// `Qual::name(…)` — the last path qualifier is kept.
    Qualified,
    /// `recv.name(…)` — resolved against every workspace method of that
    /// name (the trait-object approximation).
    Method,
    /// `name!(…)` — macro invocation; never resolved to a function.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (the identifier before the parens / bang).
    pub name: String,
    /// Last path qualifier for [`CallKind::Qualified`] (`Foo::bar` → `Foo`).
    pub qual: Option<String>,
    /// Call classification.
    pub kind: CallKind,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based source position of the callee name.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Token range `(open, close)` of the argument list, if delimited by
    /// parentheses.
    pub args: Option<(usize, usize)>,
    /// Whether an `is_x86_feature_detected!` check occurs earlier in the
    /// same function body.
    pub guarded: bool,
    /// Whether a `SAFETY:` comment sits between that check and the call.
    pub safety_between: bool,
}

/// What kind of panic a [`PanicSite`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!`.
    Macro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// Postfix `expr[…]` indexing (can panic on out-of-bounds).
    SliceIndex,
}

impl PanicKind {
    /// Human-readable label for findings.
    #[must_use]
    pub fn label(self, name: &str) -> String {
        match self {
            PanicKind::Macro => format!("{name}!"),
            PanicKind::Unwrap => ".unwrap()".to_string(),
            PanicKind::Expect => ".expect(…)".to_string(),
            PanicKind::SliceIndex => format!("{name}[…] indexing"),
        }
    }
}

/// One potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Classification.
    pub kind: PanicKind,
    /// The offending identifier (macro name, `unwrap`, the indexed
    /// receiver) for messages.
    pub what: String,
    /// Token index of the site.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// The determinism-taint class of an ambient-state source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `thread_rng`, `from_entropy`, `OsRng`.
    Entropy,
    /// `SystemTime::now`, `Instant::now`.
    WallClock,
    /// `thread::current` / `ThreadId`.
    ThreadId,
    /// `available_parallelism` (worker counts are scrubbed from journals).
    WorkerCount,
}

impl SourceKind {
    /// Short label for messages.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::Entropy => "entropy",
            SourceKind::WallClock => "wall-clock",
            SourceKind::ThreadId => "thread-id",
            SourceKind::WorkerCount => "worker-count",
        }
    }
}

/// One ambient-state source occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct SourceSite {
    /// Taint class.
    pub kind: SourceKind,
    /// The source expression (`SystemTime::now`, `thread_rng`, …).
    pub what: String,
    /// Token index.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One function item recovered from a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type (`impl Foo { fn m }` → `Foo`) or `trait`
    /// name for default methods.
    pub qual: Option<String>,
    /// Trait being implemented, when the enclosing block is
    /// `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Token index of the name identifier.
    pub name_tok: usize,
    /// 1-based position of the name.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Token range of the body braces `{ … }`; `None` for body-less
    /// declarations (trait method signatures).
    pub body: Option<(usize, usize)>,
    /// Whether the fn sits inside a test region.
    pub is_test: bool,
    /// Whether a `#[target_feature]` attribute guards it.
    pub target_feature: bool,
    /// Whether the first parameter is (some form of) `self`.
    pub is_method: bool,
    /// Call sites in the body, innermost-fn attributed.
    pub calls: Vec<CallSite>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Ambient-source sites in the body.
    pub sources: Vec<SourceSite>,
}

/// Everything the interprocedural analyses need from one file.
#[derive(Debug, Clone, Default)]
pub struct FileAst {
    /// All function items, in source order.
    pub fns: Vec<FnDef>,
}

/// An `impl`/`trait` block context discovered in pass one.
struct BlockCtx {
    body: (usize, usize),
    qual: Option<String>,
    trait_name: Option<String>,
}

/// Builds the [`FileAst`] for one tokenized file. `code` is the
/// comment-free view, `test_regions` the half-open token ranges of test
/// code (both as produced by [`crate::rules`]).
#[must_use]
pub fn build(tokens: &[Token], code: &[usize], test_regions: &[(usize, usize)]) -> FileAst {
    let blocks = collect_blocks(tokens, code);
    let mut fns = collect_fns(tokens, code, test_regions, &blocks);
    attribute_sites(tokens, code, &mut fns);
    FileAst { fns }
}

/// Pass one: `impl`/`trait` block contexts (any nesting depth).
fn collect_blocks(tokens: &[Token], code: &[usize]) -> Vec<BlockCtx> {
    let mut out = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.is_ident("impl") {
            if let Some(ctx) = parse_impl_header(tokens, code, k) {
                out.push(ctx);
            }
        } else if t.is_ident("trait") {
            // `trait Name … { … }` — default method bodies get qual and
            // trait_name = Name.
            let Some(&name_i) = code.get(k + 1) else {
                continue;
            };
            if tokens[name_i].kind != TokenKind::Ident {
                continue;
            }
            if let Some(open) = body_open_from(tokens, code, k + 2) {
                let close = matching_delim(tokens, open).min(tokens.len());
                out.push(BlockCtx {
                    body: (open, close),
                    qual: Some(tokens[name_i].text.clone()),
                    trait_name: Some(tokens[name_i].text.clone()),
                });
            }
        }
    }
    out
}

/// Parses an `impl` header at code index `k`: `impl<…> Type { … }` or
/// `impl<…> Trait for Type { … }`. Returns the block context.
fn parse_impl_header(tokens: &[Token], code: &[usize], k: usize) -> Option<BlockCtx> {
    let mut j = k + 1;
    skip_generics(tokens, code, &mut j);
    // First path: segments up to `for` / `{` / `where`.
    let first = last_path_segment(tokens, code, &mut j)?;
    let (qual, trait_name) = if code.get(j).is_some_and(|&i| tokens[i].is_ident("for")) {
        j += 1;
        // Skip `&`, lifetimes, `mut`, `dyn` before the type path.
        while code.get(j).is_some_and(|&i| {
            tokens[i].is_punct('&')
                || tokens[i].kind == TokenKind::Lifetime
                || tokens[i].is_ident("mut")
                || tokens[i].is_ident("dyn")
        }) {
            j += 1;
        }
        let ty = last_path_segment(tokens, code, &mut j)?;
        (Some(ty), Some(first))
    } else {
        (Some(first), None)
    };
    let open = body_open_from(tokens, code, j)?;
    let close = matching_delim(tokens, open).min(tokens.len());
    Some(BlockCtx {
        body: (open, close),
        qual,
        trait_name,
    })
}

/// Advances `j` over a balanced `<…>` generic list if one starts there.
fn skip_generics(tokens: &[Token], code: &[usize], j: &mut usize) {
    if !code.get(*j).is_some_and(|&i| tokens[i].is_punct('<')) {
        return;
    }
    let mut depth = 0i32;
    while let Some(&i) = code.get(*j) {
        if tokens[i].is_punct('<') {
            depth += 1;
        } else if tokens[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                *j += 1;
                return;
            }
        } else if tokens[i].is_punct('{') || tokens[i].is_punct(';') {
            return; // malformed; bail
        }
        *j += 1;
    }
}

/// Reads a type path at `j` (`a::b::Type<G>`), advancing `j` past it, and
/// returns the last ident segment.
fn last_path_segment(tokens: &[Token], code: &[usize], j: &mut usize) -> Option<String> {
    let mut last = None;
    while let Some(&i) = code.get(*j) {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            if matches!(t.text.as_str(), "for" | "where") {
                break;
            }
            last = Some(t.text.clone());
            *j += 1;
            skip_generics(tokens, code, j);
            // Continue only through `::`.
            if code.get(*j).is_some_and(|&a| tokens[a].is_punct(':'))
                && code.get(*j + 1).is_some_and(|&a| tokens[a].is_punct(':'))
            {
                *j += 2;
                continue;
            }
            break;
        }
        if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        // `&`, lifetimes, `(`-tuples etc. — not a nominal type; stop.
        break;
    }
    last
}

/// Scans forward from code index `j` to the opening `{` of an item body,
/// stopping at `;`. Returns the *token* index of the `{`.
fn body_open_from(tokens: &[Token], code: &[usize], j: usize) -> Option<usize> {
    for &i in code.get(j..)?.iter() {
        if tokens[i].is_punct('{') {
            return Some(i);
        }
        if tokens[i].is_punct(';') {
            return None;
        }
    }
    None
}

/// Pass two: function items with attributes and impl association.
fn collect_fns(
    tokens: &[Token],
    code: &[usize],
    test_regions: &[(usize, usize)],
    blocks: &[BlockCtx],
) -> Vec<FnDef> {
    let in_test = |i: usize| test_regions.iter().any(|&(a, b)| (a..b).contains(&i));
    let mut fns = Vec::new();
    let mut pending_tf = false;
    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let t = &tokens[i];
        // Attribute: accumulate target_feature, then skip it.
        if t.is_punct('#') && code.get(k + 1).is_some_and(|&n| tokens[n].is_punct('[')) {
            let close = matching_delim(tokens, code[k + 1]);
            pending_tf |= tokens[code[k + 1]..close.min(tokens.len())]
                .iter()
                .any(|a| a.is_ident("target_feature"));
            k = code.partition_point(|&c| c <= close);
            continue;
        }
        if t.is_ident("fn") {
            if let Some(&name_i) = code.get(k + 1) {
                let name_tok = &tokens[name_i];
                // `fn(` is a fn-pointer type, not an item.
                if name_tok.kind == TokenKind::Ident {
                    let body = body_open_from(tokens, code, k + 2)
                        .map(|open| (open, matching_delim(tokens, open).min(tokens.len())));
                    // Innermost impl/trait block containing the `fn`.
                    let ctx = blocks
                        .iter()
                        .filter(|b| (b.body.0..b.body.1).contains(&i))
                        .min_by_key(|b| b.body.1 - b.body.0);
                    fns.push(FnDef {
                        name: name_tok.text.clone(),
                        qual: ctx.and_then(|c| c.qual.clone()),
                        trait_name: ctx.and_then(|c| c.trait_name.clone()),
                        name_tok: name_i,
                        line: name_tok.line,
                        col: name_tok.col,
                        body,
                        is_test: in_test(i),
                        target_feature: pending_tf,
                        is_method: has_self_param(tokens, code, k),
                        calls: Vec::new(),
                        panics: Vec::new(),
                        sources: Vec::new(),
                    });
                }
            }
            pending_tf = false;
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            pending_tf = false; // attributes attach to the next item only
        }
        k += 1;
    }
    fns
}

/// Whether the fn whose `fn` keyword is at code index `k` takes `self`.
fn has_self_param(tokens: &[Token], code: &[usize], k: usize) -> bool {
    let mut j = k + 2;
    skip_generics(tokens, code, &mut j);
    if !code.get(j).is_some_and(|&i| tokens[i].is_punct('(')) {
        return false;
    }
    // `self` must appear within the first few tokens of the parameter
    // list (`&'a mut self` is the longest sanctioned form).
    (j + 1..j + 5).any(|p| code.get(p).is_some_and(|&i| tokens[i].is_ident("self")))
}

/// Rust keywords that can directly precede `[` without forming an index
/// expression (plus declaration forms that rule out a call).
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "fn"
            | "pub"
            | "if"
            | "else"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "for"
            | "while"
            | "loop"
            | "in"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "use"
            | "mod"
            | "where"
            | "ref"
            | "move"
            | "as"
            | "dyn"
            | "const"
            | "static"
            | "unsafe"
            | "await"
    )
}

/// Pass three: one linear scan classifying call / panic / source sites,
/// each attributed to the innermost enclosing fn body.
fn attribute_sites(tokens: &[Token], code: &[usize], fns: &mut [FnDef]) {
    // (body range, fn index), for innermost-containment lookup.
    let bodies: Vec<((usize, usize), usize)> = fns
        .iter()
        .enumerate()
        .filter_map(|(x, f)| f.body.map(|b| (b, x)))
        .collect();
    let innermost = |i: usize| -> Option<usize> {
        bodies
            .iter()
            .filter(|(b, _)| (b.0..=b.1).contains(&i))
            .min_by_key(|(b, _)| b.1 - b.0)
            .map(|&(_, x)| x)
    };
    // Guard positions (token indices of `is_x86_feature_detected`).
    let guard_toks: Vec<usize> = code
        .iter()
        .copied()
        .filter(|&i| tokens[i].is_ident("is_x86_feature_detected"))
        .collect();

    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        let Some(fx) = innermost(i) else { continue };
        let body = fns[fx].body.unwrap_or((0, 0));
        let prev = k.checked_sub(1).map(|p| &tokens[code[p]]);
        let prev2 = k.checked_sub(2).map(|p| &tokens[code[p]]);
        let prev3 = k.checked_sub(3).map(|p| &tokens[code[p]]);
        let next = code.get(k + 1).map(|&n| &tokens[n]);

        // Postfix indexing: `recv[…]` where recv ends in an ident, `)`,
        // `]`, or `?` — but not `ident![…]` (macro) or attribute `#[…]`.
        // Range *slicing* (`&buf[..n]`, `raw[a..b]`) is deliberately not
        // a panic site: it is the length-managed buffer idiom (reads,
        // frame parsing) whose bounds checks sit adjacent, and flagging
        // it drowns the scalar-index signal the rule is after.
        if t.is_punct('[') {
            if let Some(p) = prev {
                let postfix = (p.kind == TokenKind::Ident && !is_expr_keyword(&p.text))
                    || p.is_punct(')')
                    || p.is_punct(']')
                    || p.is_punct('?');
                let macro_bang = prev.is_some_and(|p| p.is_punct('!'));
                let close = matching_delim(tokens, i).min(tokens.len());
                let range_slice = tokens[i..close]
                    .windows(2)
                    .any(|w| w[0].is_punct('.') && w[1].is_punct('.'));
                if postfix && !macro_bang && !range_slice {
                    let recv = prev2
                        .filter(|_| p.kind == TokenKind::Ident)
                        .map_or_else(|| p.text.clone(), |_| p.text.clone());
                    fns[fx].panics.push(PanicSite {
                        kind: PanicKind::SliceIndex,
                        what: recv,
                        tok: i,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            continue;
        }

        if t.kind != TokenKind::Ident {
            continue;
        }

        let after_dot = prev.is_some_and(|p| p.is_punct('.'));
        let after_path =
            prev.is_some_and(|p| p.is_punct(':')) && prev2.is_some_and(|p| p.is_punct(':'));
        let qual = if after_path {
            prev3
                .filter(|q| q.kind == TokenKind::Ident)
                .map(|q| q.text.clone())
        } else {
            None
        };
        // The call's `(` sits right after the name — or past a
        // turbofish (`run::<W>(…)`), whose type argument is skipped.
        let paren_code_idx = if next.is_some_and(|n| n.is_punct('(')) {
            Some(k + 1)
        } else if next.is_some_and(|n| n.is_punct(':'))
            && code.get(k + 2).is_some_and(|&n| tokens[n].is_punct(':'))
            && code.get(k + 3).is_some_and(|&n| tokens[n].is_punct('<'))
        {
            let mut j = k + 3;
            skip_generics(tokens, code, &mut j);
            (j > k + 3 && code.get(j).is_some_and(|&n| tokens[n].is_punct('('))).then_some(j)
        } else {
            None
        };
        let calls_parens = paren_code_idx.is_some();
        let is_macro = next.is_some_and(|n| n.is_punct('!'))
            && code
                .get(k + 2)
                .is_some_and(|&n| "([{".chars().any(|c| tokens[n].is_punct(c)));
        let is_def = prev.is_some_and(|p| p.is_ident("fn"));

        // Panic sites.
        if after_dot && calls_parens && (t.text == "unwrap" || t.text == "expect") {
            fns[fx].panics.push(PanicSite {
                kind: if t.text == "unwrap" {
                    PanicKind::Unwrap
                } else {
                    PanicKind::Expect
                },
                what: t.text.clone(),
                tok: i,
                line: t.line,
                col: t.col,
            });
        }
        if is_macro && matches!(t.text.as_str(), "panic" | "unreachable" | "todo") {
            fns[fx].panics.push(PanicSite {
                kind: PanicKind::Macro,
                what: t.text.clone(),
                tok: i,
                line: t.line,
                col: t.col,
            });
        }

        // Ambient sources.
        let source = match t.text.as_str() {
            "thread_rng" | "from_entropy" => Some((SourceKind::Entropy, t.text.clone())),
            "OsRng" => Some((SourceKind::Entropy, "OsRng".to_string())),
            "available_parallelism" => {
                Some((SourceKind::WorkerCount, "available_parallelism".to_string()))
            }
            "now" if after_path && matches!(qual.as_deref(), Some("SystemTime" | "Instant")) => {
                Some((
                    SourceKind::WallClock,
                    format!("{}::now", qual.as_deref().unwrap_or("")),
                ))
            }
            "current" if after_path && qual.as_deref() == Some("thread") => {
                Some((SourceKind::ThreadId, "thread::current".to_string()))
            }
            _ => None,
        };
        if let Some((kind, what)) = source {
            fns[fx].sources.push(SourceSite {
                kind,
                what,
                tok: i,
                line: t.line,
                col: t.col,
            });
        }

        // Call sites.
        if is_def {
            continue;
        }
        let (kind, record) = if is_macro {
            (CallKind::Macro, true)
        } else if calls_parens && after_dot {
            (CallKind::Method, true)
        } else if calls_parens && after_path {
            (CallKind::Qualified, true)
        } else if calls_parens {
            (CallKind::Plain, true)
        } else {
            (CallKind::Plain, false)
        };
        if !record {
            continue;
        }
        let args = paren_code_idx
            .and_then(|p| code.get(p).copied())
            .map(|n| (n, matching_delim(tokens, n).min(tokens.len())));
        let guard = guard_toks
            .iter()
            .copied()
            .filter(|&g| g > body.0 && g < i)
            .max();
        // A SAFETY comment is consumed by the call it precedes: the
        // search window starts after the previous recorded call, so a
        // comment justifying an earlier call does not bless this one.
        let safety_between = guard.is_some_and(|g| {
            let start = fns[fx].calls.last().map_or(g, |c| g.max(c.tok));
            tokens[start..i]
                .iter()
                .any(|c| c.is_comment() && c.text.contains("SAFETY:"))
        });
        fns[fx].calls.push(CallSite {
            name: t.text.clone(),
            qual,
            kind,
            tok: i,
            line: t.line,
            col: t.col,
            args,
            guarded: guard.is_some(),
            safety_between,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{code_view, test_regions};

    fn ast_of(path: &str, src: &str) -> FileAst {
        let tokens = lex(src);
        let code = code_view(&tokens);
        let regions = test_regions(path, &tokens);
        build(&tokens, &code, &regions)
    }

    fn fn_named<'a>(ast: &'a FileAst, name: &str) -> &'a FnDef {
        ast.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn impl_and_trait_association() {
        let src = r"
            impl EvalSink for Collector {
                fn accept(&mut self, x: u32) -> Result<(), E> { self.buf.push(x); Ok(()) }
            }
            impl Collector {
                fn new() -> Self { Collector { buf: Vec::new() } }
            }
            trait Shape {
                fn area(&self) -> f64 { 0.0 }
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        let accept = fn_named(&ast, "accept");
        assert_eq!(accept.qual.as_deref(), Some("Collector"));
        assert_eq!(accept.trait_name.as_deref(), Some("EvalSink"));
        assert!(accept.is_method);
        let new = fn_named(&ast, "new");
        assert_eq!(new.qual.as_deref(), Some("Collector"));
        assert_eq!(new.trait_name, None);
        assert!(!new.is_method);
        let area = fn_named(&ast, "area");
        assert_eq!(area.trait_name.as_deref(), Some("Shape"));
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let src = r"
            impl<'a, T: Clone> Wrapper<'a, T> {
                fn get(&self) -> &T { &self.0 }
            }
            impl<T> Drop for Guard<T> {
                fn drop(&mut self) { release(self.n); }
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        assert_eq!(fn_named(&ast, "get").qual.as_deref(), Some("Wrapper"));
        let drop = fn_named(&ast, "drop");
        assert_eq!(drop.qual.as_deref(), Some("Guard"));
        assert_eq!(drop.trait_name.as_deref(), Some("Drop"));
    }

    #[test]
    fn call_kinds_are_classified() {
        let src = r"
            fn driver(seed: u64) {
                helper(seed);
                Engine::with_workers(seed, 4);
                sink.accept(1);
                writeln!(out, []);
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        let f = fn_named(&ast, "driver");
        let kinds: Vec<(&str, CallKind)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.kind)).collect();
        assert!(kinds.contains(&("helper", CallKind::Plain)));
        assert!(kinds.contains(&("with_workers", CallKind::Qualified)));
        assert!(kinds.contains(&("accept", CallKind::Method)));
        assert!(kinds.contains(&("writeln", CallKind::Macro)));
        let ww = f.calls.iter().find(|c| c.name == "with_workers").unwrap();
        assert_eq!(ww.qual.as_deref(), Some("Engine"));
    }

    #[test]
    fn panic_sites_cover_all_four_kinds() {
        let src = r#"
            fn f(v: &[u32], m: Option<u32>) -> u32 {
                let a = m.unwrap();
                let b = m.expect("reason");
                if a > b { panic!("boom"); }
                v[0] + a
            }
        "#;
        let ast = ast_of("crates/a/src/lib.rs", src);
        let f = fn_named(&ast, "f");
        let kinds: Vec<PanicKind> = f.panics.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PanicKind::Unwrap));
        assert!(kinds.contains(&PanicKind::Expect));
        assert!(kinds.contains(&PanicKind::Macro));
        assert!(kinds.contains(&PanicKind::SliceIndex));
    }

    #[test]
    fn non_index_brackets_are_not_panic_sites() {
        let src = r"
            fn f(x: &[u8]) -> [u8; 2] {
                let v = vec![1, 2];
                let a: [u8; 2] = [x.len() as u8, 0];
                a
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        // `&[u8]` (type), `vec![…]` (macro), `[x.len()…]` (array literal)
        // and the return type produce no slice-index sites; `x.len()`
        // inside the literal is a method call, not indexing.
        assert!(fn_named(&ast, "f").panics.is_empty());
    }

    #[test]
    fn range_slicing_is_not_a_panic_site() {
        let src = r"
            fn f(buf: &[u8], n: usize) -> u8 {
                let head = &buf[..n];
                let tail = &buf[n..];
                let mid = &buf[1..n - 1];
                let inc = &buf[..=n];
                head[0] + tail.len() as u8 + mid.len() as u8 + inc.len() as u8
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        // The four range slices are the length-managed buffer idiom and
        // are exempt; only the scalar `head[0]` is a panic site.
        let panics = &fn_named(&ast, "f").panics;
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].kind, PanicKind::SliceIndex);
        assert_eq!(panics[0].what, "head");
    }

    #[test]
    fn sources_are_classified_by_kind() {
        let src = r"
            fn f() {
                let t = SystemTime::now();
                let i = Instant::now();
                let r = thread_rng();
                let w = std::thread::available_parallelism();
                let id = std::thread::current();
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        let f = fn_named(&ast, "f");
        let kinds: Vec<SourceKind> = f.sources.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SourceKind::WallClock,
                SourceKind::WallClock,
                SourceKind::Entropy,
                SourceKind::WorkerCount,
                SourceKind::ThreadId,
            ]
        );
    }

    #[test]
    fn closure_sites_attribute_to_enclosing_fn() {
        let src = r"
            fn outer(pool: &Pool) {
                pool.submit(move || {
                    inner_work();
                    opt.unwrap();
                });
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        let f = fn_named(&ast, "outer");
        assert!(f.calls.iter().any(|c| c.name == "inner_work"));
        assert!(f.panics.iter().any(|p| p.kind == PanicKind::Unwrap));
    }

    #[test]
    fn nested_fn_sites_attribute_to_the_nested_fn() {
        let src = r"
            fn outer() {
                fn nested() { deep_call(); }
                nested();
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        let outer = fn_named(&ast, "outer");
        let nested = fn_named(&ast, "nested");
        assert!(outer.calls.iter().any(|c| c.name == "nested"));
        assert!(!outer.calls.iter().any(|c| c.name == "deep_call"));
        assert!(nested.calls.iter().any(|c| c.name == "deep_call"));
    }

    #[test]
    fn target_feature_attribute_is_detected() {
        let src = r#"
            #[target_feature(enable = "avx2")]
            unsafe fn kernel(a: &[f32]) {}
            fn plain() {}
        "#;
        let ast = ast_of("crates/a/src/lib.rs", src);
        assert!(fn_named(&ast, "kernel").target_feature);
        assert!(!fn_named(&ast, "plain").target_feature);
    }

    #[test]
    fn guard_and_safety_flags_on_calls() {
        let src = r#"
            fn dispatch() {
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: guarded by the check above.
                    unsafe { kernel_avx2() };
                }
                kernel_scalar();
            }
        "#;
        let ast = ast_of("crates/a/src/lib.rs", src);
        let f = fn_named(&ast, "dispatch");
        let k = f.calls.iter().find(|c| c.name == "kernel_avx2").unwrap();
        assert!(k.guarded && k.safety_between);
        let s = f.calls.iter().find(|c| c.name == "kernel_scalar").unwrap();
        // The guard precedes it lexically but there is no SAFETY between.
        assert!(s.guarded && !s.safety_between);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = r"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        assert!(!fn_named(&ast, "prod").is_test);
        assert!(fn_named(&ast, "helper").is_test);
        assert!(fn_named(&ast, "case").is_test);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = r"
            fn takes(f: fn(usize) -> u32) -> u32 { f(1) }
        ";
        let ast = ast_of("crates/a/src/lib.rs", src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "takes");
    }
}
