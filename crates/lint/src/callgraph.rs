//! The approximate workspace call graph.
//!
//! Nodes are function items (ids index [`SymbolTable::fns`]); edges are
//! call sites resolved **by name**, never by type. The resolution policy
//! trades precision for zero dependencies, and always in the direction
//! each rule needs (see DESIGN.md §18):
//!
//! * **Method calls** (`recv.name(…)`) link to *every* workspace method
//!   of that name — the trait-object approximation. A `sink.accept(…)`
//!   through `&mut dyn EvalSink` reaches every `accept` impl, which is
//!   exactly the over-approximation BD010 wants (any impl might be the
//!   dynamic callee). The cost is fan-out between unrelated same-name
//!   methods; rule-side scoping (skip test fns, skip lint/bench crates)
//!   keeps that tolerable.
//! * **Qualified calls** (`Q::name(…)`): if `Q` is a workspace impl type
//!   or trait, link to its `name` items; `Self::name` resolves through
//!   the caller's own impl. Otherwise `Q` is a module path or external
//!   type: link to workspace *free* fns named `name` (module paths
//!   qualify free fns — `checkpoint::fingerprint(…)`), which is empty
//!   for std types like `Vec::new`.
//! * **Plain calls** (`name(…)`) link to free fns named `name`, plus the
//!   caller's own impl's `name` (unqualified associated-fn calls are
//!   rare but legal in impls). A name that resolves to nothing — a
//!   closure parameter, a generic `F: Fn` argument, a std fn — produces
//!   **no edge**: generic instantiation is not tracked.
//! * **Macro invocations** produce no edges. `macro_rules!` bodies were
//!   already opaque to the AST layer; the tokens of an invocation's
//!   arguments are ordinary expressions and their calls *are* collected.
//!
//! Unresolved calls are deliberate false-negative surface; the
//! per-file rules (BD001–BD009) still see every token, so a panic or
//! entropy source hiding behind an unresolvable call is caught at its
//! definition site whenever its file is in a policed scope.

use crate::ast::{CallKind, CallSite};
use crate::symbols::SymbolTable;
use crate::ParsedFile;
use std::collections::BTreeMap;

/// One resolved call edge out of a caller.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node id.
    pub callee: usize,
    /// Index into the caller's `calls` vector (for span/chain rendering).
    pub site: usize,
}

/// Forward and reverse adjacency over [`SymbolTable`] node ids.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `fwd[n]` = edges out of node `n`.
    pub fwd: Vec<Vec<Edge>>,
    /// `rev[n]` = (caller, site-in-caller) pairs calling into node `n`.
    pub rev: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Resolves every call site of every fn against the symbol table.
    #[must_use]
    pub fn build(files: &[ParsedFile], symbols: &SymbolTable) -> Self {
        let n = symbols.fns.len();
        let mut g = CallGraph {
            fwd: vec![Vec::new(); n],
            rev: vec![Vec::new(); n],
        };
        for caller in 0..n {
            let def = symbols.def(files, caller);
            for (site, call) in def.calls.iter().enumerate() {
                for &callee in resolve(symbols, def.qual.as_deref(), call) {
                    if callee == caller && call.kind == CallKind::Plain && call.qual.is_none() {
                        // Direct self-recursion adds nothing to any
                        // reachability question; keep the graph tidy.
                        continue;
                    }
                    g.fwd[caller].push(Edge { callee, site });
                    g.rev[callee].push(Edge {
                        callee: caller,
                        site,
                    });
                }
            }
        }
        g
    }
}

/// Node ids a call site may bind to, per the module-level policy.
/// `caller_qual` is the caller's own impl type (for `Self::` and
/// unqualified associated calls).
fn resolve<'a>(
    symbols: &'a SymbolTable,
    caller_qual: Option<&str>,
    call: &CallSite,
) -> &'a [usize] {
    match call.kind {
        CallKind::Macro => &[],
        CallKind::Method => symbols.methods_named(&call.name),
        CallKind::Qualified => {
            let q = call.qual.as_deref().unwrap_or("");
            let q = if q == "Self" {
                caller_qual.unwrap_or(q)
            } else {
                q
            };
            if symbols.knows_qual(q) {
                symbols.qualified(q, &call.name)
            } else {
                symbols.free_named(&call.name)
            }
        }
        CallKind::Plain => {
            let free = symbols.free_named(&call.name);
            if free.is_empty() {
                if let Some(q) = caller_qual {
                    return symbols.qualified(q, &call.name);
                }
            }
            free
        }
    }
}

/// One step of a breadth-first discovery: how node `n` was first reached.
#[derive(Debug, Clone, Copy)]
pub enum Provenance {
    /// `n` is in the start set.
    Root,
    /// Reached from `pred` through `pred`'s call site `site`.
    Step {
        /// Predecessor node (a root-side neighbour).
        pred: usize,
        /// Index into `pred`'s `calls`.
        site: usize,
    },
}

/// Forward BFS from `roots` over `graph.fwd`, visiting only nodes for
/// which `enter(node)` is true (roots are admitted unconditionally).
/// Returns each reached node's provenance; following `Step::pred` walks
/// back to a root, giving a shortest witness chain.
#[must_use]
pub fn reach_forward(
    graph: &CallGraph,
    roots: &[usize],
    enter: impl Fn(usize) -> bool,
) -> BTreeMap<usize, Provenance> {
    bfs(&graph.fwd, roots, &enter)
}

/// Reverse BFS: every node that can *reach* one of `roots` through
/// `enter`-admitted intermediate nodes. Provenance steps point toward
/// the roots: `Step { pred, site }` on node `n` means `n` calls `pred`
/// at `n`'s call site `site`.
#[must_use]
pub fn reach_backward(
    graph: &CallGraph,
    roots: &[usize],
    enter: impl Fn(usize) -> bool,
) -> BTreeMap<usize, Provenance> {
    bfs(&graph.rev, roots, &enter)
}

fn bfs(
    adj: &[Vec<Edge>],
    roots: &[usize],
    enter: &impl Fn(usize) -> bool,
) -> BTreeMap<usize, Provenance> {
    let mut seen: BTreeMap<usize, Provenance> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &r in roots {
        if seen.insert(r, Provenance::Root).is_none() {
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        for e in &adj[n] {
            let next = e.callee;
            if seen.contains_key(&next) || !enter(next) {
                continue;
            }
            // In the reverse graph the site index belongs to `next`
            // (the caller); forward, it belongs to `n`. `chain_notes`
            // picks the owner per direction.
            seen.insert(
                next,
                Provenance::Step {
                    pred: n,
                    site: e.site,
                },
            );
            queue.push_back(next);
        }
    }
    seen
}

/// Renders the witness chain from `node` back to a root as
/// human-readable notes, one hop per line. `reach` must come from
/// [`reach_forward`] or [`reach_backward`] over the same graph.
#[must_use]
pub fn chain_notes(
    files: &[ParsedFile],
    symbols: &SymbolTable,
    reach: &BTreeMap<usize, Provenance>,
    node: usize,
    forward: bool,
) -> Vec<String> {
    let mut notes = Vec::new();
    let mut cur = node;
    let mut hops = 0usize;
    while let Some(Provenance::Step { pred, site }) = reach.get(&cur) {
        // Forward search: pred called cur (site in pred). Backward
        // search: cur calls pred (site in cur).
        let (caller, callee) = if forward { (*pred, cur) } else { (cur, *pred) };
        let site_owner = if forward { *pred } else { cur };
        let cd = symbols.def(files, caller);
        let ed = symbols.def(files, callee);
        let call = &symbols.def(files, site_owner).calls[*site];
        let file = &files[symbols.fns[site_owner].file];
        notes.push(format!(
            "`{}` calls `{}` at {}:{}:{}",
            cd.name, ed.name, file.path, call.line, call.col
        ));
        cur = *pred;
        hops += 1;
        if hops > 64 {
            notes.push("… (chain truncated)".to_string());
            break;
        }
    }
    if forward {
        notes.reverse();
    }
    notes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_file;

    fn ws(files: &[(&str, &str)]) -> (Vec<ParsedFile>, SymbolTable, CallGraph) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| parse_file((*p).to_string(), s))
            .collect();
        let symbols = SymbolTable::build(&parsed);
        let graph = CallGraph::build(&parsed, &symbols);
        (parsed, symbols, graph)
    }

    fn node(symbols: &SymbolTable, files: &[ParsedFile], name: &str) -> usize {
        *symbols
            .named(name)
            .first()
            .unwrap_or_else(|| panic!("no fn {name} in {:?}", files.len()))
    }

    fn callees(
        symbols: &SymbolTable,
        files: &[ParsedFile],
        graph: &CallGraph,
        name: &str,
    ) -> Vec<String> {
        let n = node(symbols, files, name);
        let mut out: Vec<String> = graph.fwd[n]
            .iter()
            .map(|e| symbols.def(files, e.callee).name.clone())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn free_fn_calls_link_across_files() {
        let (files, symbols, graph) = ws(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper(); }"),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() { leaf(); } pub fn leaf() {}",
            ),
        ]);
        assert_eq!(callees(&symbols, &files, &graph, "entry"), vec!["helper"]);
        assert_eq!(callees(&symbols, &files, &graph, "helper"), vec!["leaf"]);
    }

    #[test]
    fn trait_object_method_calls_reach_every_impl() {
        // The documented over-approximation: `sink.accept(…)` through a
        // dyn trait links to every workspace `accept` method.
        let (files, symbols, graph) = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn drive(sink: &mut dyn Sink) { sink.accept(1); }",
            ),
            (
                "crates/b/src/lib.rs",
                "impl Sink for Journal { fn accept(&mut self, x: u32) {} }
                 impl Sink for Memory { fn accept(&mut self, x: u32) {} }
                 impl Unrelated { fn accept(&mut self, y: f32) {} }",
            ),
        ]);
        let drive = node(&symbols, &files, "drive");
        // All three `accept` methods — including the unrelated inherent
        // one — are linked; name-based resolution cannot tell them apart.
        assert_eq!(graph.fwd[drive].len(), 3);
    }

    #[test]
    fn generic_fn_instantiation_resolves_by_name() {
        // `run::<MlpWorkload>(…)` and plain `run(…)` both link to every
        // free `run`; the turbofish's type argument is ignored (no
        // monomorphization tracking).
        let (files, symbols, graph) = ws(&[(
            "crates/a/src/lib.rs",
            "fn go() { run::<Mlp>(1); } fn run<W: Workload>(x: u32) {}",
        )]);
        assert_eq!(callees(&symbols, &files, &graph, "go"), vec!["run"]);
    }

    #[test]
    fn closure_passed_to_pool_attributes_to_submitter_not_pool() {
        // `pool.submit(move || work())`: the `work()` call edge belongs
        // to the *submitting* fn (closures attribute to their enclosing
        // fn), and `submit`'s generic `task()` invocation resolves to
        // nothing — the pool never gains edges to submitted bodies.
        let (files, symbols, graph) = ws(&[
            (
                "crates/serve/src/pool.rs",
                "impl Pool { fn submit<F: FnOnce()>(&self, task: F) { task(); } }",
            ),
            (
                "crates/core/src/lib.rs",
                "fn enqueue(pool: &Pool) { pool.submit(move || work()); } fn work() {}",
            ),
        ]);
        let enqueue = node(&symbols, &files, "enqueue");
        let got: Vec<String> = graph.fwd[enqueue]
            .iter()
            .map(|e| symbols.def(&files, e.callee).name.clone())
            .collect();
        assert!(got.contains(&"submit".to_string()));
        assert!(got.contains(&"work".to_string()));
        // The pool's generic `task()` call resolves to no edge at all.
        let submit = node(&symbols, &files, "submit");
        assert!(graph.fwd[submit].is_empty());
    }

    #[test]
    fn macro_invocations_produce_no_edges_but_their_args_do() {
        let (files, symbols, graph) = ws(&[(
            "crates/a/src/lib.rs",
            r#"fn log_it() { writeln!(out, "{}", compute()).ok(); } fn compute() -> u32 { 0 }"#,
        )]);
        // `writeln` itself resolves nowhere; `compute()` inside the
        // macro's argument list is a real edge.
        assert_eq!(callees(&symbols, &files, &graph, "log_it"), vec!["compute"]);
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        // Calls inside a macro_rules! definition belong to no fn and
        // create no edges — the expansion is never seen.
        let (files, symbols, graph) = ws(&[(
            "crates/a/src/lib.rs",
            "macro_rules! fire { () => { dangerous() }; } fn safe() {} fn dangerous() {}",
        )]);
        let safe = node(&symbols, &files, "safe");
        assert!(graph.fwd[safe].is_empty());
        let dangerous = node(&symbols, &files, "dangerous");
        assert!(graph.rev[dangerous].is_empty());
    }

    #[test]
    fn qualified_calls_respect_workspace_quals_and_fall_back_to_free_fns() {
        let (files, symbols, graph) = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn go() { Engine::start(); checkpoint::fingerprint(1); Vec::new(); }",
            ),
            (
                "crates/b/src/lib.rs",
                "impl Engine { fn start() {} } pub fn fingerprint(x: u32) {} ",
            ),
        ]);
        let got = callees(&symbols, &files, &graph, "go");
        // Engine::start via the impl, fingerprint via module-path
        // fallback, Vec::new → nothing (external type, no free `new`).
        assert_eq!(got, vec!["fingerprint", "start"]);
    }

    #[test]
    fn self_qualified_calls_resolve_through_the_callers_impl() {
        let (files, symbols, graph) = ws(&[(
            "crates/a/src/lib.rs",
            "impl Planner { fn plan(&self) { Self::validate(); } fn validate() {} }
                 impl Other { fn validate() {} }",
        )]);
        let plan = node(&symbols, &files, "plan");
        let got: Vec<&str> = graph.fwd[plan]
            .iter()
            .map(|e| symbols.def(&files, e.callee).qual.as_deref().unwrap_or(""))
            .collect();
        assert_eq!(got, vec!["Planner"], "Self:: must not leak to Other");
    }

    #[test]
    fn reach_forward_finds_shortest_witness_chains() {
        let (files, symbols, graph) = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); } fn mid() { deep(); } fn deep() {} fn stranded() { deep(); }",
        )]);
        let root = node(&symbols, &files, "root");
        let deep = node(&symbols, &files, "deep");
        let stranded = node(&symbols, &files, "stranded");
        let reach = reach_forward(&graph, &[root], |_| true);
        assert!(reach.contains_key(&deep));
        assert!(!reach.contains_key(&stranded));
        let notes = chain_notes(&files, &symbols, &reach, deep, true);
        assert_eq!(notes.len(), 2);
        assert!(notes[0].contains("`root` calls `mid`"));
        assert!(notes[1].contains("`mid` calls `deep`"));
    }

    #[test]
    fn reach_backward_finds_callers() {
        let (files, symbols, graph) = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { tainted(); } fn tainted() { source(); } fn source() {} fn clean() {}",
        )]);
        let source = node(&symbols, &files, "source");
        let top = node(&symbols, &files, "top");
        let clean = node(&symbols, &files, "clean");
        let reach = reach_backward(&graph, &[source], |_| true);
        assert!(reach.contains_key(&top));
        assert!(!reach.contains_key(&clean));
        let notes = chain_notes(&files, &symbols, &reach, top, false);
        assert_eq!(notes.len(), 2);
        assert!(notes[0].contains("`top` calls `tainted`"));
        assert!(notes[1].contains("`tainted` calls `source`"));
    }

    #[test]
    fn enter_filter_blocks_traversal_through_excluded_nodes() {
        let (files, symbols, graph) = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() { blocked(); } fn blocked() { target(); } fn target() {}",
        )]);
        let root = node(&symbols, &files, "root");
        let blocked = node(&symbols, &files, "blocked");
        let target = node(&symbols, &files, "target");
        let reach = reach_forward(&graph, &[root], |n| n != blocked);
        assert!(!reach.contains_key(&blocked));
        assert!(!reach.contains_key(&target));
    }

    #[test]
    fn direct_recursion_is_elided() {
        let (files, symbols, graph) = ws(&[(
            "crates/a/src/lib.rs",
            "fn rec(n: u32) { if n > 0 { rec(n - 1); } }",
        )]);
        let rec = node(&symbols, &files, "rec");
        assert!(graph.fwd[rec].is_empty());
    }
}
