//! `bdlfi-lint explain BDxxx` — the rule book, rendered from the same
//! fixtures the self-tests run against.
//!
//! Every entry pairs the rationale and scope prose with a minimal
//! good/bad example **sourced from `crates/lint/fixtures/` at compile
//! time** (`include_str!`), so the documentation can never drift from
//! what the analyzer actually accepts and rejects: the fixture shown as
//! "bad" is asserted to trip exactly this rule in
//! `tests/lint_fixtures.rs`, and the "good" one to lint clean.

/// One rule's documentation.
pub struct Explanation {
    /// `BDxxx`.
    pub code: &'static str,
    /// Short rule name.
    pub name: &'static str,
    /// Why the rule exists and what it polices (scope included).
    pub rationale: &'static str,
    /// (fixture path, contents) of a clean example.
    pub good: (&'static str, &'static str),
    /// (fixture path, contents) of a tripping example.
    pub bad: (&'static str, &'static str),
}

/// Looks up a rule's explanation by code (case-insensitive).
#[must_use]
pub fn lookup(code: &str) -> Option<&'static Explanation> {
    let upper = code.to_uppercase();
    ALL.iter().find(|e| e.code == upper)
}

/// Renders one explanation as terminal text.
#[must_use]
pub fn render(e: &Explanation) -> String {
    format!(
        "{} — {}\n\n{}\n\nWaive a confirmed-intentional site with\n  \
         // bdlfi-lint: allow({}) -- reason\non the finding's line or the line above \
         (the reason is mandatory).\n\n=== good: fixtures/{} ===\n{}\n\
         === bad: fixtures/{} ===\n{}",
        e.code, e.name, e.rationale, e.code, e.good.0, e.good.1, e.bad.0, e.bad.1
    )
}

/// The note printed for the retired BD005 code.
pub const BD005_RETIRED: &str = "BD005 (typed-errors-in-engine-paths) was retired: its \
per-file panic scan is subsumed by BD010, which checks the same scope as call-graph \
entry points and additionally reports panics *reachable* from them anywhere in the \
workspace. See `bdlfi-lint explain BD010`.";

/// All rule explanations, in code order.
pub static ALL: [Explanation; 12] = [
    Explanation {
        code: "BD000",
        name: "malformed-suppression-directive",
        rationale: "Not a rule but the waiver protocol's audit trail: a `bdlfi-lint: \
allow(BDxxx)` directive without a `-- reason` suppresses nothing and is itself \
reported, so silent waivers cannot accumulate in the tree.",
        good: ("allow_good.rs", include_str!("../fixtures/allow_good.rs")),
        bad: ("allow_bad.rs", include_str!("../fixtures/allow_bad.rs")),
    },
    Explanation {
        code: "BD001",
        name: "no-entropy-sources",
        rationale: "Campaigns must be a pure function of their configured seed: \
`thread_rng()`, `from_entropy()`, `OsRng` and `SystemTime::now()` smuggle ambient \
state into that function. Scope: every crate except `crates/bench` (timing harnesses \
legitimately read the clock).",
        good: ("bd001_good.rs", include_str!("../fixtures/bd001_good.rs")),
        bad: ("bd001_bad.rs", include_str!("../fixtures/bd001_bad.rs")),
    },
    Explanation {
        code: "BD002",
        name: "no-additive-seed-derivation",
        rationale: "`seed + i` collides across lanes (`seed+1` of task 0 is `seed` of \
task 1): per-task RNGs must derive through `seed_stream`'s SplitMix64 lanes. Scope: \
any additive arithmetic feeding an RNG constructor, workspace-wide.",
        good: ("bd002_good.rs", include_str!("../fixtures/bd002_good.rs")),
        bad: ("bd002_bad.rs", include_str!("../fixtures/bd002_bad.rs")),
    },
    Explanation {
        code: "BD003",
        name: "no-hash-order-serialization",
        rationale: "HashMap/HashSet iteration order is randomized per process: iterating \
one within 30 lines of a serialization call writes nondeterministic bytes. Journals \
and reports must iterate BTree collections or sorted vectors. Scope: production code, \
workspace-wide.",
        good: ("bd003_good.rs", include_str!("../fixtures/bd003_good.rs")),
        bad: ("bd003_bad.rs", include_str!("../fixtures/bd003_bad.rs")),
    },
    Explanation {
        code: "BD004",
        name: "unsafe-needs-safety-comment",
        rationale: "Every `unsafe` block or fn carries an adjacent `// SAFETY:` comment \
stating the invariant that makes it sound. Scope: all source, tests included — unsound \
test code corrupts the evidence the paper's statistics rest on.",
        good: ("bd004_good.rs", include_str!("../fixtures/bd004_good.rs")),
        bad: ("bd004_bad.rs", include_str!("../fixtures/bd004_bad.rs")),
    },
    Explanation {
        code: "BD006",
        name: "distinct-journal-fingerprint-tags",
        rationale: "Every `*_controlled` campaign driver binds its own fingerprint tag; \
two drivers sharing one tag would resume each other's journals and silently merge \
incompatible task streams. Scope: fingerprint tag bindings, workspace-wide \
(cross-file duplicates included).",
        good: ("bd006_good.rs", include_str!("../fixtures/bd006_good.rs")),
        bad: ("bd006_bad.rs", include_str!("../fixtures/bd006_bad.rs")),
    },
    Explanation {
        code: "BD007",
        name: "delta-exact-fallback",
        rationale: "`forward_delta*` routines may refuse (conv fan-out, transient sites, \
quant scale faults); every production caller must keep the exact incremental fallback \
on the refusal path so results stay bit-identical by construction. Scope: production \
callers of the delta path.",
        good: ("bd007_good.rs", include_str!("../fixtures/bd007_good.rs")),
        bad: ("bd007_bad.rs", include_str!("../fixtures/bd007_bad.rs")),
    },
    Explanation {
        code: "BD008",
        name: "simd-kernel-dispatch-discipline",
        rationale: "A `#[target_feature]` fn may only be called under an \
`is_x86_feature_detected!` check with a `// SAFETY:` comment between check and call \
(same-file token analysis; BD012 extends this across files), and every intrinsics \
module names a scalar `*_reference` oracle its equivalence tests pin against. Scope: \
production code, workspace-wide.",
        good: ("bd008_good.rs", include_str!("../fixtures/bd008_good.rs")),
        bad: ("bd008_bad.rs", include_str!("../fixtures/bd008_bad.rs")),
    },
    Explanation {
        code: "BD009",
        name: "shard-fingerprint-discipline",
        rationale: "A shard runner that journals under the unsharded fingerprint — or \
derives one without the shard index *and* count — lets a shard resume from the wrong \
journal. Scope: production shard runners and fingerprint helpers, workspace-wide.",
        good: ("bd009_good.rs", include_str!("../fixtures/bd009_good.rs")),
        bad: ("bd009_bad.rs", include_str!("../fixtures/bd009_bad.rs")),
    },
    Explanation {
        code: "BD010",
        name: "panic-reachability-from-engine-paths",
        rationale: "Interprocedural successor to BD005: no call path from an \
engine/checkpoint/shard/serve entry point (or any `EvalSink` impl) may reach \
`panic!`/`unreachable!`/`todo!`, `.unwrap()` or `.expect(…)` in non-test code, \
anywhere in the workspace — a panic on those paths kills the campaign instead of \
leaving a resumable journal. Direct slice indexing is reported in the entry-point \
files themselves. Findings carry the witness call chain as notes and anchor at the \
panic site.",
        good: (
            "bd010_good/crates/core/src/engine.rs",
            include_str!("../fixtures/bd010_good/crates/core/src/engine.rs"),
        ),
        bad: (
            "bd010_bad/crates/nn/src/prep.rs",
            include_str!("../fixtures/bd010_bad/crates/nn/src/prep.rs"),
        ),
    },
    Explanation {
        code: "BD011",
        name: "determinism-taint-into-journal-bytes",
        rationale: "Function-level taint: entropy, wall-clock, thread-id and \
worker-count sources must not be reachable from `journal_form`/`fingerprint_form`, \
any `*fingerprint*` fn, or the checkpoint writers — and no call into those sinks may \
carry a tainted argument. Journal bytes must be identical across machines, workers \
and reruns, or resume verification and shard merges break.",
        good: (
            "bd011_good/crates/core/src/report.rs",
            include_str!("../fixtures/bd011_good/crates/core/src/report.rs"),
        ),
        bad: (
            "bd011_bad/crates/core/src/report.rs",
            include_str!("../fixtures/bd011_bad/crates/core/src/report.rs"),
        ),
    },
    Explanation {
        code: "BD012",
        name: "target-feature-cross-file-dispatch",
        rationale: "Whole-workspace extension of BD008: a `#[target_feature]` kernel \
may be entered from another file only through its own module's guarded dispatch \
wrapper (the benched selector front door). A distant call site with its own guard \
and SAFETY comment still violates — it duplicates the feature policy where per-shape \
benching cannot see it. Kernel-to-kernel calls and tests are exempt.",
        good: (
            "bd012_good/crates/core/src/fastpath.rs",
            include_str!("../fixtures/bd012_good/crates/core/src/fastpath.rs"),
        ),
        bad: (
            "bd012_bad/crates/core/src/fastpath.rs",
            include_str!("../fixtures/bd012_bad/crates/core/src/fastpath.rs"),
        ),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_code_resolves_case_insensitively() {
        for code in [
            "BD000", "BD001", "BD002", "BD003", "BD004", "BD006", "BD007", "BD008", "BD009",
            "BD010", "BD011", "BD012",
        ] {
            assert!(lookup(code).is_some(), "{code} missing");
            assert!(lookup(&code.to_lowercase()).is_some(), "{code} lowercase");
        }
        assert!(lookup("BD005").is_none(), "BD005 is retired");
        assert!(lookup("BD999").is_none());
    }

    #[test]
    fn rendered_explanations_include_both_examples() {
        let e = lookup("BD010").expect("BD010 documented");
        let text = render(e);
        assert!(text.contains("=== good: fixtures/bd010_good/"));
        assert!(text.contains("=== bad: fixtures/bd010_bad/"));
        assert!(text.contains("allow(BD010) -- reason"));
    }

    #[test]
    fn fixtures_backing_the_examples_are_nonempty() {
        for e in &ALL {
            assert!(!e.good.1.trim().is_empty(), "{} good fixture empty", e.code);
            assert!(!e.bad.1.trim().is_empty(), "{} bad fixture empty", e.code);
        }
    }
}
