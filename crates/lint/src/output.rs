//! Finding renderers: human text, SARIF-style JSON, and GitHub Actions
//! workflow-command annotations.
//!
//! The JSON shape follows SARIF 2.1.0's skeleton (`runs[0].results[]`
//! with `ruleId` / `message.text` / `physicalLocation`) closely enough
//! for SARIF-aware viewers, while staying hand-rolled — the linter
//! builds before everything else in CI precisely because it depends on
//! nothing, `serde_json` included. The GitHub format emits one
//! `::error` workflow command per finding, which the Actions runner
//! turns into inline PR annotations with no marketplace action needed.

use crate::diag::Finding;
use std::fmt::Write as _;

/// Output format selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `path:line:col: code: message` (+ indented notes).
    Text,
    /// SARIF-style JSON document.
    Json,
    /// GitHub Actions `::error` workflow commands.
    Github,
}

impl Format {
    /// Parses a `--format` value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

/// Renders all findings in the chosen format. Text and GitHub formats
/// are line-oriented; JSON is one document.
#[must_use]
pub fn render(findings: &[Finding], format: Format) -> String {
    match format {
        Format::Text => {
            let mut s = String::new();
            for f in findings {
                let _ = writeln!(s, "{}", f.render());
            }
            s
        }
        Format::Json => render_json(findings),
        Format::Github => {
            let mut s = String::new();
            for f in findings {
                let mut msg = f.message.clone();
                for n in &f.notes {
                    msg.push_str("; note: ");
                    msg.push_str(n);
                }
                let _ = writeln!(
                    s,
                    "::error file={},line={},col={},title={}::{}",
                    gh_escape_property(&f.path),
                    f.line,
                    f.col,
                    f.code,
                    gh_escape_data(&msg)
                );
            }
            s
        }
    }
}

/// SARIF 2.1.0-style document: one run, one result per finding, notes
/// as `properties.notes`.
fn render_json(findings: &[Finding]) -> String {
    let mut s = String::new();
    s.push_str(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"bdlfi-lint\",\"informationUri\":\
         \"https://example.invalid/bdlfi\",\"rules\":[",
    );
    let mut codes: Vec<&str> = findings.iter().map(|f| f.code).collect();
    codes.sort_unstable();
    codes.dedup();
    for (i, c) in codes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"id\":{}}}", json_string(c));
    }
    s.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]",
            json_string(f.code),
            json_string(&f.message),
            json_string(&f.path),
            f.line,
            f.col
        );
        if !f.notes.is_empty() {
            s.push_str(",\"properties\":{\"notes\":[");
            for (j, n) in f.notes.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&json_string(n));
            }
            s.push_str("]}");
        }
        s.push('}');
    }
    s.push_str("]}]}\n");
    s
}

/// JSON string literal with full escaping.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes a workflow-command data section (`%`, CR, LF).
fn gh_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escapes a workflow-command property (data escapes plus `:` and `,`).
fn gh_escape_property(s: &str) -> String {
    gh_escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        let mut a = Finding::new(
            "BD010",
            "crates/core/src/engine.rs".to_string(),
            12,
            9,
            "`.unwrap()` in a typed-error path".to_string(),
        );
        a.notes = vec!["`run` calls `helper` at crates/core/src/engine.rs:10:5".to_string()];
        let b = Finding::new(
            "BD001",
            "crates/x/src/lib.rs".to_string(),
            3,
            1,
            "message with \"quotes\" and \\ backslash\nand newline".to_string(),
        );
        vec![a, b]
    }

    #[test]
    fn text_format_includes_notes() {
        let out = render(&sample(), Format::Text);
        assert!(out.contains("crates/core/src/engine.rs:12:9: BD010:"));
        assert!(out.contains("\n    note: `run` calls `helper`"));
    }

    #[test]
    fn json_is_sarif_shaped_and_escaped() {
        let out = render(&sample(), Format::Json);
        assert!(out.contains("\"version\":\"2.1.0\""));
        assert!(out.contains("\"ruleId\":\"BD010\""));
        assert!(out.contains("\"startLine\":12"));
        assert!(out.contains("\\\"quotes\\\" and \\\\ backslash\\nand newline"));
        assert!(out.contains("\"notes\":[\"`run` calls `helper`"));
        // Distinct rule ids are listed once each in the driver block.
        assert_eq!(out.matches("{\"id\":\"BD010\"}").count(), 1);
    }

    #[test]
    fn github_format_emits_escaped_workflow_commands() {
        let out = render(&sample(), Format::Github);
        assert!(
            out.starts_with("::error file=crates/core/src/engine.rs,line=12,col=9,title=BD010::")
        );
        // Newlines in messages must be %0A-escaped or the command breaks.
        assert!(out.contains("%0Aand newline"));
        // Notes ride along in the message body.
        assert!(out.contains("; note: `run` calls `helper`"));
    }

    #[test]
    fn empty_findings_render_empty_or_skeleton() {
        assert_eq!(render(&[], Format::Text), "");
        assert_eq!(render(&[], Format::Github), "");
        let json = render(&[], Format::Json);
        assert!(json.contains("\"results\":[]"));
    }
}
