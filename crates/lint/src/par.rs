//! Order-preserving parallel map over owned inputs, on scoped threads.
//!
//! The daemon's `WorkerPool` (crates/server/src/pool.rs) is the
//! workspace's sanctioned concurrency primitive, but depending on
//! `bdlfi-serve` from here would pull the entire workspace into the
//! linter's build — the one crate that must stay dependency-free so CI
//! can build and run it before anything else compiles. So this module
//! mirrors the pool's idiom at one-tenth the size: a shared atomic
//! cursor hands out work items, `std::thread::scope` joins everything
//! before returning, and results land at their input's index so output
//! order is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item of `inputs` on up to `workers` threads,
/// returning outputs in input order. `workers` is clamped to at least 1;
/// panics in `f` propagate (a lint worker panicking is a linter bug).
pub fn map<T, U, F>(inputs: Vec<T>, workers: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = workers.max(1).min(inputs.len().max(1));
    if workers == 1 {
        return inputs.into_iter().map(f).collect();
    }
    let n = inputs.len();
    let items: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take();
                if let Some(item) = item {
                    let out = f(item);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every slot filled: cursor visits every index")
        })
        .collect()
}

/// A sensible worker count for file parsing: the machine's parallelism,
/// capped so tiny workspaces don't spawn idle threads.
#[must_use]
pub fn default_workers(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    hw.min(items.max(1)).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<usize> = (0..257).collect();
        let out = map(inputs.clone(), 8, |x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_and_empty_inputs_work() {
        assert_eq!(map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(map(Vec::<u32>::new(), 8, |x| x), Vec::<u32>::new());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(map(vec![5], 64, |x| x), vec![5]);
    }
}
