//! `bdlfi-lint` — the BDLFI workspace's determinism-discipline static
//! analyzer.
//!
//! The paper's statistical-completeness claim holds only if every fault
//! campaign is bit-reproducible; PR 2's seed streams, PR 3's checkpoint
//! fingerprints and PR 4's quant journals all defend that property at
//! runtime. This crate enforces it at *source* level, before a campaign
//! ever runs:
//!
//! | code  | rule |
//! |-------|------|
//! | BD001 | no nondeterministic entropy sources outside `crates/bench` |
//! | BD002 | no additive `seed + i` derivation feeding RNG constructors |
//! | BD003 | no HashMap/HashSet iteration in serialization-adjacent paths |
//! | BD004 | every `unsafe` carries a `// SAFETY:` justification |
//! | BD006 | every `*_controlled` driver binds a distinct journal fingerprint tag |
//! | BD007 | `forward_delta*` routines can refuse; their callers keep an exact fallback |
//! | BD008 | `#[target_feature]` kernels reached only via guarded, SAFETY-justified dispatch; intrinsics modules name a `*_reference` oracle |
//! | BD009 | shard journal fingerprints embed shard index and count |
//! | BD010 | no call path from an engine/checkpoint/shard/serve entry point to a panic site (interprocedural; subsumed the old per-file BD005) |
//! | BD011 | no entropy/time/thread-id/worker-count flow into journal or fingerprint bytes (interprocedural taint) |
//! | BD012 | `#[target_feature]` kernels are reached cross-file only through their own module's guarded dispatch front door |
//!
//! BD001–BD009 are token-level per-file rules. BD010–BD012 are
//! **interprocedural**: an AST-lite layer ([`ast`]) recovers function
//! items and call sites from the token stream, a workspace symbol table
//! ([`symbols`]) indexes them, and a name-resolved approximate call
//! graph ([`callgraph`]) plus a function-level taint analysis
//! ([`taint`]) answer reachability questions across crate boundaries.
//! Findings from those rules carry the witness call chain as notes.
//!
//! Findings are span-accurate (`path:line:col: BDxxx: message`) and can
//! be waived inline with `// bdlfi-lint: allow(BDxxx) -- reason` — the
//! reason is mandatory. The analyzer is entirely self-contained: a
//! hand-rolled lexer ([`lexer`]) plus token-level rules ([`rules`]), no
//! `syn`, no external dependencies. Files are parsed in parallel on
//! scoped threads ([`par`]).
//!
//! Run it as `cargo run -p bdlfi-lint -- check .` (CI does, on every
//! push; `--format json` / `--format github` produce machine-readable
//! output, `bdlfi-lint explain BDxxx` documents any rule).

pub mod ast;
pub mod callgraph;
pub mod diag;
pub mod explain;
pub mod lexer;
pub mod output;
pub mod par;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod walk;

pub use diag::Finding;

use rules::{all_rules, all_ws_rules, code_view, test_regions, FileCtx};
use std::path::Path;

/// One file, fully parsed: token stream, comment-free code view, test
/// regions, AST-lite function items, and suppression directives. Built
/// once per file (in parallel) and shared by every rule.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// Full token stream, comments included.
    pub tokens: Vec<lexer::Token>,
    /// Indices into `tokens` of every non-comment token.
    pub code: Vec<usize>,
    /// Half-open `tokens` index ranges that are test code.
    pub test_regions: Vec<(usize, usize)>,
    /// Function items and their call/panic/source sites.
    pub ast: ast::FileAst,
    /// `bdlfi-lint: allow(…)` directives found in the file.
    pub directives: Vec<diag::AllowDirective>,
}

/// Lexes and parses one source text. This is the only place a file is
/// tokenized — every downstream consumer shares the result.
#[must_use]
pub fn parse_file(path: String, src: &str) -> ParsedFile {
    let tokens = lexer::lex(src);
    let code = code_view(&tokens);
    let test_regions = test_regions(&path, &tokens);
    let ast = ast::build(&tokens, &code, &test_regions);
    let directives = diag::parse_directives(&tokens);
    ParsedFile {
        path,
        tokens,
        code,
        test_regions,
        ast,
        directives,
    }
}

/// The whole-workspace view the interprocedural rules run against.
#[derive(Debug)]
pub struct Workspace {
    /// Every parsed file, in walk order.
    pub files: Vec<ParsedFile>,
    /// Flat indexed function list with name lookup.
    pub symbols: symbols::SymbolTable,
    /// Name-resolved approximate call graph over `symbols` node ids.
    pub graph: callgraph::CallGraph,
}

impl Workspace {
    /// Builds symbols and call graph over already-parsed files.
    #[must_use]
    pub fn build(files: Vec<ParsedFile>) -> Workspace {
        let symbols = symbols::SymbolTable::build(&files);
        let graph = callgraph::CallGraph::build(&files, &symbols);
        Workspace {
            files,
            symbols,
            graph,
        }
    }

    /// The function behind a symbol-table node id.
    #[must_use]
    pub fn def(&self, node: usize) -> &ast::FnDef {
        self.symbols.def(&self.files, node)
    }

    /// The file a node is defined in.
    #[must_use]
    pub fn file_of(&self, node: usize) -> &ParsedFile {
        &self.files[self.symbols.fns[node].file]
    }
}

/// Lints a set of in-memory sources as one workspace: per-file rule
/// passes, cross-file `finish` passes, the interprocedural workspace
/// rules, then suppression. Findings are sorted by
/// `(path, line, col, code)`.
#[must_use]
pub fn lint_files(inputs: Vec<(String, String)>) -> Vec<Finding> {
    let workers = par::default_workers(inputs.len());
    let files = par::map(inputs, workers, |(path, src)| parse_file(path, &src));
    let ws = Workspace::build(files);
    lint_parsed(&ws)
}

/// Lints a single source text under a virtual workspace-relative path
/// (rule scoping — bench exemption, engine/checkpoint paths — keys off
/// this path). Runs the full pipeline, workspace rules included, over a
/// one-file workspace.
#[must_use]
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    lint_files(vec![(path.to_string(), src.to_string())])
}

/// Lints every `.rs` file under `root`. See [`lint_files`].
///
/// # Errors
///
/// Propagates filesystem errors from the walk or file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut inputs = Vec::new();
    for file in walk::rust_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        inputs.push((walk::display_path(root, &file), src));
    }
    Ok(lint_files(inputs))
}

/// The rule pipeline over an already-built workspace.
#[must_use]
pub fn lint_parsed(ws: &Workspace) -> Vec<Finding> {
    let mut rules = all_rules();
    let mut findings = Vec::new();
    for pf in &ws.files {
        let ctx = FileCtx {
            path: &pf.path,
            tokens: &pf.tokens,
            code: &pf.code,
            test_regions: &pf.test_regions,
        };
        for rule in &mut rules {
            findings.extend(rule.check(&ctx));
        }
    }
    for rule in &mut rules {
        findings.extend(rule.finish());
    }
    for ws_rule in all_ws_rules() {
        findings.extend(ws_rule.check(ws));
    }
    // Apply each file's directives to its own findings.
    let mut out = Vec::new();
    let mut by_path: std::collections::BTreeMap<String, Vec<Finding>> =
        std::collections::BTreeMap::new();
    for f in findings {
        by_path.entry(f.path.clone()).or_default().push(f);
    }
    let empty = Vec::new();
    for (path, fs) in by_path {
        let dirs = ws
            .files
            .iter()
            .find(|pf| pf.path == path)
            .map_or(&empty, |pf| &pf.directives);
        out.extend(diag::apply_directives(&path, fs, dirs));
    }
    sort_findings(&mut out);
    out
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = r#"
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            use bdlfi_bayes::seed_stream;

            fn per_task_rng(seed: u64, task: u64) -> StdRng {
                StdRng::seed_from_u64(seed_stream(seed, task))
            }
        "#;
        assert_eq!(lint_source("crates/demo/src/lib.rs", src), Vec::new());
    }

    #[test]
    fn findings_are_sorted_and_rendered_with_spans() {
        let src = "fn f(seed: u64) {\n    let _ = StdRng::seed_from_u64(seed + 1);\n    let _ = thread_rng();\n}\n";
        let out = lint_source("crates/demo/src/lib.rs", src);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].code, "BD002");
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].code, "BD001");
        assert_eq!(out[1].line, 3);
        assert!(out[0].render().starts_with("crates/demo/src/lib.rs:2:"));
    }

    #[test]
    fn bench_crate_may_read_entropy() {
        let src = "fn t() { let _ = thread_rng(); }";
        assert!(lint_source("crates/bench/src/harness.rs", src).is_empty());
        assert_eq!(lint_source("crates/other/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn allow_directive_waives_with_reason_only() {
        let with_reason = "// bdlfi-lint: allow(BD001) -- demo harness, not a campaign\nfn t() { let _ = thread_rng(); }\n";
        assert!(lint_source("crates/demo/src/lib.rs", with_reason).is_empty());
        let without = "// bdlfi-lint: allow(BD001)\nfn t() { let _ = thread_rng(); }\n";
        let out = lint_source("crates/demo/src/lib.rs", without);
        assert!(out.iter().any(|f| f.code == "BD001"));
        assert!(out.iter().any(|f| f.code == diag::MALFORMED_DIRECTIVE));
    }

    #[test]
    fn lint_files_sees_cross_file_call_paths() {
        // An engine entry point reaching a panic defined in another
        // crate's file — exactly what the per-file rules cannot see.
        let out = lint_files(vec![
            (
                "crates/core/src/engine.rs".to_string(),
                "pub fn run(n: u32) { helper_from_afar(n); }".to_string(),
            ),
            (
                "crates/nn/src/util.rs".to_string(),
                "pub fn helper_from_afar(n: u32) { panic!(\"boom {n}\"); }".to_string(),
            ),
        ]);
        assert!(
            out.iter().any(|f| f.code == "BD010"),
            "expected a cross-crate BD010, got: {out:?}"
        );
    }
}
