//! `bdlfi-lint` — the BDLFI workspace's determinism-discipline static
//! analyzer.
//!
//! The paper's statistical-completeness claim holds only if every fault
//! campaign is bit-reproducible; PR 2's seed streams, PR 3's checkpoint
//! fingerprints and PR 4's quant journals all defend that property at
//! runtime. This crate enforces it at *source* level, before a campaign
//! ever runs:
//!
//! | code  | rule |
//! |-------|------|
//! | BD001 | no nondeterministic entropy sources outside `crates/bench` |
//! | BD002 | no additive `seed + i` derivation feeding RNG constructors |
//! | BD003 | no HashMap/HashSet iteration in serialization-adjacent paths |
//! | BD004 | every `unsafe` carries a `// SAFETY:` justification |
//! | BD005 | no `unwrap`/`expect`/`panic!` in engine/checkpoint/EvalSink paths |
//! | BD006 | every `*_controlled` driver binds a distinct journal fingerprint tag |
//! | BD007 | `forward_delta*` routines can refuse; their callers keep an exact fallback |
//! | BD008 | `#[target_feature]` kernels reached only via guarded, SAFETY-justified dispatch; intrinsics modules name a `*_reference` oracle |
//!
//! Findings are span-accurate (`path:line:col: BDxxx: message`) and can
//! be waived inline with `// bdlfi-lint: allow(BDxxx) -- reason` — the
//! reason is mandatory. The analyzer is entirely self-contained: a
//! hand-rolled lexer ([`lexer`]) plus token-level rules ([`rules`]), no
//! `syn`, no external dependencies.
//!
//! Run it as `cargo run -p bdlfi-lint -- check .` (CI does, on every
//! push).

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use diag::Finding;

use rules::{all_rules, code_view, test_regions, FileCtx, Rule};
use std::path::Path;

/// Lints a single source text under a virtual workspace-relative path
/// (rule scoping — bench exemption, engine/checkpoint paths — keys off
/// this path). Runs per-file rule passes *and* each rule's cross-file
/// `finish` pass, so single-file invariants of BD006 (duplicate tags
/// within the file) are reported too. Suppression directives are applied.
#[must_use]
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let mut rules = all_rules();
    let mut findings = lint_into(&mut rules, path, src);
    for rule in &mut rules {
        findings.extend(rule.finish());
    }
    let tokens = lexer::lex(src);
    let directives = diag::parse_directives(&tokens);
    let mut out = diag::apply_directives(path, findings, &directives);
    sort_findings(&mut out);
    out
}

/// Lints every `.rs` file under `root`: per-file passes, then the
/// cross-file `finish` passes, then suppression. Findings are sorted by
/// `(path, line, col, code)`.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or file reads.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut rules = all_rules();
    let mut findings = Vec::new();
    let mut directives_by_path = Vec::new();
    for file in walk::rust_files(root)? {
        let src = std::fs::read_to_string(&file)?;
        let path = walk::display_path(root, &file);
        findings.extend(lint_into(&mut rules, &path, &src));
        let tokens = lexer::lex(&src);
        let dirs = diag::parse_directives(&tokens);
        if !dirs.is_empty() {
            directives_by_path.push((path, dirs));
        }
    }
    for rule in &mut rules {
        findings.extend(rule.finish());
    }
    // Apply each file's directives to its own findings.
    let mut out = Vec::new();
    let mut by_path: std::collections::BTreeMap<String, Vec<Finding>> =
        std::collections::BTreeMap::new();
    for f in findings {
        by_path.entry(f.path.clone()).or_default().push(f);
    }
    for (path, fs) in by_path {
        let empty = Vec::new();
        let dirs = directives_by_path
            .iter()
            .find(|(p, _)| *p == path)
            .map_or(&empty, |(_, d)| d);
        out.extend(diag::apply_directives(&path, fs, dirs));
    }
    sort_findings(&mut out);
    Ok(out)
}

/// One per-file pass over all rules (no finish, no suppression).
fn lint_into(rules: &mut [Box<dyn Rule>], path: &str, src: &str) -> Vec<Finding> {
    let tokens = lexer::lex(src);
    let code = code_view(&tokens);
    let regions = test_regions(path, &tokens);
    let ctx = FileCtx {
        path,
        tokens: &tokens,
        code: &code,
        test_regions: &regions,
    };
    let mut findings = Vec::new();
    for rule in rules.iter_mut() {
        findings.extend(rule.check(&ctx));
    }
    findings
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = r#"
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            use bdlfi_bayes::seed_stream;

            fn per_task_rng(seed: u64, task: u64) -> StdRng {
                StdRng::seed_from_u64(seed_stream(seed, task))
            }
        "#;
        assert_eq!(lint_source("crates/demo/src/lib.rs", src), Vec::new());
    }

    #[test]
    fn findings_are_sorted_and_rendered_with_spans() {
        let src = "fn f(seed: u64) {\n    let _ = StdRng::seed_from_u64(seed + 1);\n    let _ = thread_rng();\n}\n";
        let out = lint_source("crates/demo/src/lib.rs", src);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].code, "BD002");
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].code, "BD001");
        assert_eq!(out[1].line, 3);
        assert!(out[0].render().starts_with("crates/demo/src/lib.rs:2:"));
    }

    #[test]
    fn bench_crate_may_read_entropy() {
        let src = "fn t() { let _ = thread_rng(); }";
        assert!(lint_source("crates/bench/src/harness.rs", src).is_empty());
        assert_eq!(lint_source("crates/other/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn allow_directive_waives_with_reason_only() {
        let with_reason = "// bdlfi-lint: allow(BD001) -- demo harness, not a campaign\nfn t() { let _ = thread_rng(); }\n";
        assert!(lint_source("crates/demo/src/lib.rs", with_reason).is_empty());
        let without = "// bdlfi-lint: allow(BD001)\nfn t() { let _ = thread_rng(); }\n";
        let out = lint_source("crates/demo/src/lib.rs", without);
        assert!(out.iter().any(|f| f.code == "BD001"));
        assert!(out.iter().any(|f| f.code == diag::MALFORMED_DIRECTIVE));
    }
}
