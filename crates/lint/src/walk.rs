//! Deterministic workspace walker: finds every `.rs` file under a root,
//! in sorted order, skipping directories that are not project source.
//!
//! Skipped: `target/` (build output), `vendor/` (offline API-compatible
//! subsets of external crates — not ours to lint), `.git/` and other
//! dot-directories, and the linter's own `fixtures/` tree (its *bad*
//! fixtures exist to violate the rules).

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", ".git"];

/// Collects every lintable `.rs` file under `root`, sorted by path.
///
/// # Errors
///
/// Propagates the first filesystem error encountered.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ft = entry.file_type()?;
        if ft.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.ends_with("crates/lint") {
                continue;
            }
            walk(&path, out)?;
        } else if ft.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` with forward slashes — the path
/// shape every rule's scoping patterns match against.
#[must_use]
pub fn display_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy().replace('\\', "/");
    s.trim_start_matches("./").to_string()
}
