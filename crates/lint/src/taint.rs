//! Function-level determinism taint.
//!
//! The lattice is deliberately tiny: per ambient-source kind
//! ([`SourceKind`]: entropy, wall-clock, thread-id, worker-count), a
//! function is either **tainted** — its body, or any function it can
//! reach through the call graph, touches that source — or clean. There
//! is no per-value dataflow: if `fn elapsed()` reads `Instant::now` and
//! also returns a constant, every caller of `elapsed` is wall-clock
//! tainted. That over-approximation is the point — a function on a
//! journal/fingerprint path should not be *able* to observe ambient
//! state, whether or not today's code lets the value flow into the
//! bytes.
//!
//! Computed as one reverse BFS per source kind, from every non-test
//! function containing a source site, over the reverse call graph. The
//! rule supplies an `enter` filter to keep taint from propagating
//! through sanctioned territory (bench harnesses, the linter's own
//! fixtures). Witness chains come out of the BFS provenance for free.

use crate::ast::{SourceKind, SourceSite};
use crate::callgraph::{chain_notes, reach_backward, CallGraph, Provenance};
use crate::symbols::SymbolTable;
use crate::ParsedFile;
use std::collections::BTreeMap;

/// All source kinds, in reporting order.
pub const KINDS: [SourceKind; 4] = [
    SourceKind::Entropy,
    SourceKind::WallClock,
    SourceKind::ThreadId,
    SourceKind::WorkerCount,
];

fn kind_index(kind: SourceKind) -> usize {
    KINDS.iter().position(|&k| k == kind).unwrap_or(0)
}

/// Per-kind taint sets with witness provenance.
#[derive(Debug, Default)]
pub struct TaintMap {
    maps: [BTreeMap<usize, Provenance>; 4],
}

impl TaintMap {
    /// Runs the analysis. `seed_ok(node)` admits a source-containing fn
    /// as a taint root (rules use it to exempt bench code); `enter(node)`
    /// admits a fn as a propagation step.
    #[must_use]
    pub fn analyze(
        files: &[ParsedFile],
        symbols: &SymbolTable,
        graph: &CallGraph,
        seed_ok: impl Fn(usize) -> bool,
        enter: impl Fn(usize) -> bool,
    ) -> TaintMap {
        let mut maps: [BTreeMap<usize, Provenance>; 4] = Default::default();
        for (x, &kind) in KINDS.iter().enumerate() {
            let roots: Vec<usize> = (0..symbols.fns.len())
                .filter(|&n| {
                    let d = symbols.def(files, n);
                    !d.is_test && seed_ok(n) && d.sources.iter().any(|s| s.kind == kind)
                })
                .collect();
            maps[x] = reach_backward(graph, &roots, &enter);
        }
        TaintMap { maps }
    }

    /// Whether `node` is tainted by `kind`.
    #[must_use]
    pub fn tainted(&self, node: usize, kind: SourceKind) -> bool {
        self.maps[kind_index(kind)].contains_key(&node)
    }

    /// The source kinds tainting `node`, in [`KINDS`] order.
    #[must_use]
    pub fn kinds_of(&self, node: usize) -> Vec<SourceKind> {
        KINDS
            .iter()
            .copied()
            .filter(|&k| self.tainted(node, k))
            .collect()
    }

    /// Witness notes for `node`'s `kind` taint: the call chain from
    /// `node` down to the source-containing fn, then the source itself.
    #[must_use]
    pub fn witness(
        &self,
        files: &[ParsedFile],
        symbols: &SymbolTable,
        node: usize,
        kind: SourceKind,
    ) -> Vec<String> {
        let map = &self.maps[kind_index(kind)];
        if !map.contains_key(&node) {
            return Vec::new();
        }
        let mut notes = chain_notes(files, symbols, map, node, false);
        // Walk to the root (the fn that actually contains the source).
        let mut cur = node;
        while let Some(Provenance::Step { pred, .. }) = map.get(&cur) {
            cur = *pred;
        }
        let d = symbols.def(files, cur);
        if let Some(site) = first_source(d.sources.as_slice(), kind) {
            let file = &files[symbols.fns[cur].file];
            notes.push(format!(
                "`{}` reads `{}` ({}) at {}:{}:{}",
                d.name,
                site.what,
                kind.label(),
                file.path,
                site.line,
                site.col
            ));
        }
        notes
    }
}

fn first_source(sources: &[SourceSite], kind: SourceKind) -> Option<&SourceSite> {
    sources.iter().find(|s| s.kind == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_file;

    fn setup(files: &[(&str, &str)]) -> (Vec<ParsedFile>, SymbolTable, CallGraph, TaintMap) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| parse_file((*p).to_string(), s))
            .collect();
        let symbols = SymbolTable::build(&parsed);
        let graph = CallGraph::build(&parsed, &symbols);
        let taint = TaintMap::analyze(&parsed, &symbols, &graph, |_| true, |_| true);
        (parsed, symbols, graph, taint)
    }

    fn node(symbols: &SymbolTable, name: &str) -> usize {
        *symbols.named(name).first().expect("fn exists")
    }

    #[test]
    fn taint_propagates_up_call_chains_with_witness() {
        let (files, symbols, _, taint) = setup(&[(
            "crates/a/src/lib.rs",
            "fn top() { mid(); } fn mid() { leaf(); }
             fn leaf() -> u64 { SystemTime::now(); 0 } fn clean() {}",
        )]);
        let top = node(&symbols, "top");
        assert!(taint.tainted(top, SourceKind::WallClock));
        assert!(!taint.tainted(top, SourceKind::Entropy));
        assert!(!taint.tainted(node(&symbols, "clean"), SourceKind::WallClock));
        let notes = taint.witness(&files, &symbols, top, SourceKind::WallClock);
        assert_eq!(notes.len(), 3, "{notes:?}");
        assert!(notes[0].contains("`top` calls `mid`"));
        assert!(notes[2].contains("`leaf` reads `SystemTime::now` (wall-clock)"));
    }

    #[test]
    fn kinds_are_tracked_independently() {
        let (_, symbols, _, taint) = setup(&[(
            "crates/a/src/lib.rs",
            "fn uses_rng() { thread_rng(); } fn uses_workers() { available_parallelism(); }
             fn both() { uses_rng(); uses_workers(); }",
        )]);
        let both = node(&symbols, "both");
        assert_eq!(
            taint.kinds_of(both),
            vec![SourceKind::Entropy, SourceKind::WorkerCount]
        );
        assert_eq!(
            taint.kinds_of(node(&symbols, "uses_rng")),
            vec![SourceKind::Entropy]
        );
    }

    #[test]
    fn test_fns_do_not_seed_taint() {
        let (_, symbols, _, taint) = setup(&[(
            "crates/a/src/lib.rs",
            "fn prod() { helper(); } fn helper() {}
             #[cfg(test)] mod tests { fn noisy() { thread_rng(); } }",
        )]);
        assert!(!taint.tainted(node(&symbols, "prod"), SourceKind::Entropy));
        // The test fn itself is not even a root.
        assert!(!taint.tainted(node(&symbols, "noisy"), SourceKind::Entropy));
    }

    #[test]
    fn seed_filter_exempts_sanctioned_sources() {
        let files = [(
            "crates/bench/src/lib.rs",
            "pub fn bench_noise() -> u64 { thread_rng(); 1 }",
        )];
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| parse_file((*p).to_string(), s))
            .collect();
        let symbols = SymbolTable::build(&parsed);
        let graph = CallGraph::build(&parsed, &symbols);
        let taint = TaintMap::analyze(
            &parsed,
            &symbols,
            &graph,
            |n| {
                !parsed[symbols.fns[n].file]
                    .path
                    .starts_with("crates/bench/")
            },
            |_| true,
        );
        assert!(!taint.tainted(node(&symbols, "bench_noise"), SourceKind::Entropy));
    }
}
