//! Diagnostics and the inline suppression protocol.
//!
//! A finding is `path:line:col: BDxxx: message`. Suppression is explicit
//! and audited: a finding is waived only by a comment of the form
//!
//! ```text
//! // bdlfi-lint: allow(BD010) -- engine invariant: slots claimed once
//! ```
//!
//! on the finding's line or the line directly above it. The `-- reason`
//! is mandatory — a directive without one suppresses nothing and is
//! itself reported as `BD000`, so silent waivers cannot accumulate.

use crate::lexer::Token;

/// Diagnostic code for a malformed suppression directive.
pub const MALFORMED_DIRECTIVE: &str = "BD000";

/// One rule violation (or directive problem) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code (`BD001` … `BD012`, or `BD000` for directive problems).
    pub code: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Supporting evidence, one line each — the interprocedural rules
    /// put the witness call chain here. Empty for per-file rules.
    pub notes: Vec<String>,
}

impl Finding {
    /// A finding with no notes.
    #[must_use]
    pub fn new(code: &'static str, path: String, line: u32, col: u32, message: String) -> Finding {
        Finding {
            code,
            path,
            line,
            col,
            message,
            notes: Vec::new(),
        }
    }

    /// Renders the finding in the `path:line:col: code: message` shape
    /// editors and CI log scanners understand. Notes follow, indented,
    /// one per line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.code, self.message
        );
        for n in &self.notes {
            s.push_str("\n    note: ");
            s.push_str(n);
        }
        s
    }
}

/// A parsed `bdlfi-lint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the directive's comment starts on.
    pub line: u32,
    /// The rule codes it waives (uppercased).
    pub codes: Vec<String>,
    /// Whether a non-empty `-- reason` was given. Directives without a
    /// reason are inert.
    pub has_reason: bool,
}

/// Extracts every `bdlfi-lint: allow(...)` directive from a file's
/// comment tokens.
#[must_use]
pub fn parse_directives(tokens: &[Token]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let Some(at) = t.text.find("bdlfi-lint:") else {
            continue;
        };
        let rest = &t.text[at + "bdlfi-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let after_open = &rest[open + "allow(".len()..];
        let Some(close) = after_open.find(')') else {
            continue;
        };
        let codes: Vec<String> = after_open[..close]
            .split(',')
            .map(|c| c.trim().to_uppercase())
            .filter(|c| !c.is_empty())
            .collect();
        let tail = &after_open[close + 1..];
        let has_reason = tail
            .find("--")
            .map(|d| !tail[d + 2..].trim_matches(['*', '/', ' ', '\t']).is_empty())
            .unwrap_or(false);
        out.push(AllowDirective {
            line: t.line,
            codes,
            has_reason,
        });
    }
    out
}

/// Applies directives to `findings` for one file: waived findings are
/// dropped, and each malformed directive (missing reason) yields a
/// [`MALFORMED_DIRECTIVE`] finding so it shows up in CI.
#[must_use]
pub fn apply_directives(
    path: &str,
    findings: Vec<Finding>,
    directives: &[AllowDirective],
) -> Vec<Finding> {
    let mut out: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            !directives.iter().any(|d| {
                d.has_reason
                    && d.codes.iter().any(|c| c == f.code)
                    && (d.line == f.line || d.line + 1 == f.line)
            })
        })
        .collect();
    for d in directives.iter().filter(|d| !d.has_reason) {
        out.push(Finding::new(
            MALFORMED_DIRECTIVE,
            path.to_string(),
            d.line,
            1,
            format!(
                "suppression directive for {} is missing its `-- reason`; \
                 reasonless waivers are ignored",
                d.codes.join(", ")
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn finding(code: &'static str, line: u32) -> Finding {
        Finding::new(code, "x.rs".to_string(), line, 1, "m".to_string())
    }

    #[test]
    fn directive_on_same_or_previous_line_suppresses() {
        let toks = lex("// bdlfi-lint: allow(BD001) -- test fixture\nlet x = 1;");
        let dirs = parse_directives(&toks);
        assert_eq!(dirs.len(), 1);
        assert!(dirs[0].has_reason);
        // Line 1 (same) and line 2 (next) are covered; line 3 is not.
        assert!(apply_directives("x.rs", vec![finding("BD001", 1)], &dirs).is_empty());
        assert!(apply_directives("x.rs", vec![finding("BD001", 2)], &dirs).is_empty());
        assert_eq!(
            apply_directives("x.rs", vec![finding("BD001", 3)], &dirs).len(),
            1
        );
    }

    #[test]
    fn directive_only_covers_its_codes() {
        let toks = lex("// bdlfi-lint: allow(BD001, BD003) -- spans two rules");
        let dirs = parse_directives(&toks);
        assert_eq!(dirs[0].codes, vec!["BD001", "BD003"]);
        assert!(apply_directives("x.rs", vec![finding("BD003", 1)], &dirs).is_empty());
        assert_eq!(
            apply_directives("x.rs", vec![finding("BD006", 1)], &dirs).len(),
            1
        );
    }

    #[test]
    fn reasonless_directive_is_inert_and_reported() {
        let toks = lex("// bdlfi-lint: allow(BD004)\nunsafe_thing();");
        let dirs = parse_directives(&toks);
        assert!(!dirs[0].has_reason);
        let out = apply_directives("x.rs", vec![finding("BD004", 2)], &dirs);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|f| f.code == "BD004"));
        assert!(out.iter().any(|f| f.code == MALFORMED_DIRECTIVE));
    }

    #[test]
    fn directives_inside_strings_are_not_parsed() {
        let toks = lex(r#"let s = "bdlfi-lint: allow(BD001) -- nope";"#);
        assert!(parse_directives(&toks).is_empty());
    }

    #[test]
    fn block_comment_directive_with_trailing_slashes() {
        let toks = lex("/* bdlfi-lint: allow(BD002) -- block form */ x();");
        let dirs = parse_directives(&toks);
        assert_eq!(dirs.len(), 1);
        assert!(dirs[0].has_reason, "reason must survive the trailing */");
    }
}
