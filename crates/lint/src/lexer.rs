//! A hand-rolled Rust token scanner — just enough lexical fidelity for
//! determinism linting, with no external parser dependency.
//!
//! The scanner's one job is to never mistake *text* for *code*: a
//! `thread_rng` inside a doc comment, a `"SystemTime::now"` inside a
//! string literal, or a `+` inside a char literal must not produce rule
//! findings. That requires getting the genuinely tricky parts of Rust's
//! lexical grammar right:
//!
//! * raw strings (`r"…"`, `r#"…"#`, any number of `#`s) and their byte
//!   variants, whose bodies may contain unescaped quotes;
//! * block comments, which **nest** in Rust (`/* /* */ */`);
//! * the lifetime-vs-char-literal ambiguity: `'a'` is a char, `'a` is a
//!   lifetime, `'\''` is a char, `b'x'` is a byte literal;
//! * float exponents (`1e-4`) so the `-`/`+` inside a numeric literal is
//!   never reported as an arithmetic operator.
//!
//! Comments are kept as tokens (the rules need them for `// SAFETY:`
//! annotations and `// bdlfi-lint: allow(…)` directives); whitespace is
//! dropped. Every token carries its 1-based line and column.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `thread_rng`, …), including
    /// raw identifiers (`r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no trailing quote).
    Lifetime,
    /// A char or byte literal: `'x'`, `'\n'`, `b'0'`.
    CharLit,
    /// A string literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// A numeric literal, including suffixes and exponents.
    NumLit,
    /// A `// …` comment (also `///` and `//!`).
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
    /// A single punctuation character (`(`, `+`, `:`, `!`, …).
    Punct,
}

/// One lexical token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The token's exact source text (string/char literals keep their
    /// quotes and prefixes).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for an identifier token with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }

    /// True for either comment kind.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Scanner {
    fn new(src: &str) -> Self {
        Scanner {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. The scanner is total: any byte sequence produces a
/// token stream (unterminated literals run to end of file rather than
/// erroring), because a linter must degrade gracefully on code mid-edit.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut s = Scanner::new(src);
    let mut out = Vec::new();
    while let Some(c) = s.peek(0) {
        let (line, col) = (s.line, s.col);
        let start = s.pos;

        if c.is_whitespace() {
            s.bump();
            continue;
        }

        // Comments.
        if c == '/' && s.peek(1) == Some('/') {
            while let Some(n) = s.peek(0) {
                if n == '\n' {
                    break;
                }
                s.bump();
            }
            out.push(token(&s, TokenKind::LineComment, start, line, col));
            continue;
        }
        if c == '/' && s.peek(1) == Some('*') {
            s.bump();
            s.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (s.peek(0), s.peek(1)) {
                    (Some('/'), Some('*')) => {
                        s.bump();
                        s.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        s.bump();
                        s.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        s.bump();
                    }
                    (None, _) => break,
                }
            }
            out.push(token(&s, TokenKind::BlockComment, start, line, col));
            continue;
        }

        // String-ish prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…', r#ident.
        if is_ident_start(c) {
            let mut k = 0;
            while s.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            let ident: String = (0..k).filter_map(|i| s.peek(i)).collect();
            let next = s.peek(k);
            match (ident.as_str(), next) {
                ("r" | "br" | "b", Some('"')) | ("r" | "br", Some('#')) => {
                    let raw = ident != "b";
                    if lex_prefixed_string(&mut s, &mut out, k, raw, line, col) {
                        continue;
                    }
                }
                ("b", Some('\'')) => {
                    for _ in 0..k {
                        s.bump();
                    }
                    lex_char(&mut s, &mut out, start, line, col);
                    continue;
                }
                _ => {}
            }
            // Raw identifier `r#ident` (keyword escape, not a raw string).
            if ident == "r" && next == Some('#') && s.peek(k + 1).is_some_and(is_ident_start) {
                s.bump(); // r
                s.bump(); // #
                while s.peek(0).is_some_and(is_ident_continue) {
                    s.bump();
                }
                out.push(token(&s, TokenKind::Ident, start, line, col));
                continue;
            }
            for _ in 0..k {
                s.bump();
            }
            out.push(token(&s, TokenKind::Ident, start, line, col));
            continue;
        }

        if c == '"' {
            s.bump();
            lex_plain_string_body(&mut s);
            out.push(token(&s, TokenKind::StrLit, start, line, col));
            continue;
        }

        if c == '\'' {
            // Lifetime or char literal. `'\…` is always a char escape;
            // `'ident'` is a char iff the quote closes right after one
            // ident-ish run, `'ident` without a closing quote is a
            // lifetime; any other single char (`'€'`) is a char literal.
            if s.peek(1) == Some('\\') {
                lex_char(&mut s, &mut out, start, line, col);
                continue;
            }
            if s.peek(1).is_some_and(is_ident_start) {
                let mut k = 2;
                while s.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                if s.peek(k) == Some('\'') && k == 2 {
                    lex_char(&mut s, &mut out, start, line, col);
                } else {
                    s.bump(); // '
                    while s.peek(0).is_some_and(is_ident_continue) {
                        s.bump();
                    }
                    out.push(token(&s, TokenKind::Lifetime, start, line, col));
                }
                continue;
            }
            lex_char(&mut s, &mut out, start, line, col);
            continue;
        }

        if c.is_ascii_digit() {
            lex_number(&mut s);
            out.push(token(&s, TokenKind::NumLit, start, line, col));
            continue;
        }

        s.bump();
        out.push(token(&s, TokenKind::Punct, start, line, col));
    }
    out
}

fn token(s: &Scanner, kind: TokenKind, start: usize, line: u32, col: u32) -> Token {
    let text: String = s.chars[start..s.pos].iter().collect();
    Token {
        kind,
        text,
        line,
        col,
    }
}

/// Consumes an `r…"`, `br…"` or `b"` string starting at the current
/// position (the prefix is `prefix_len` ident chars long). `raw` strings
/// process no escapes and terminate at `"` + matching `#`s; `b"…"` honours
/// `\"` like a plain string. Returns `true` if a string token was produced.
fn lex_prefixed_string(
    s: &mut Scanner,
    out: &mut Vec<Token>,
    prefix_len: usize,
    raw: bool,
    line: u32,
    col: u32,
) -> bool {
    let start = s.pos;
    let mut k = prefix_len;
    let mut hashes = 0usize;
    while s.peek(k) == Some('#') {
        hashes += 1;
        k += 1;
    }
    if s.peek(k) != Some('"') {
        return false;
    }
    for _ in 0..=k {
        s.bump(); // prefix, hashes, opening quote
    }
    if raw {
        // Raw body: ends at `"` followed by exactly `hashes` #s.
        'body: while let Some(ch) = s.peek(0) {
            if ch == '"' {
                let mut ok = true;
                for i in 0..hashes {
                    if s.peek(1 + i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        s.bump();
                    }
                    break 'body;
                }
            }
            s.bump();
        }
    } else {
        lex_plain_string_body(s);
    }
    out.push(token(s, TokenKind::StrLit, start, line, col));
    true
}

/// Consumes a plain string body after the opening `"`, honouring `\"`.
fn lex_plain_string_body(s: &mut Scanner) {
    while let Some(ch) = s.bump() {
        match ch {
            '\\' => {
                s.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a char/byte literal starting at the opening `'`.
fn lex_char(s: &mut Scanner, out: &mut Vec<Token>, start: usize, line: u32, col: u32) {
    s.bump(); // opening '
    if s.bump() == Some('\\') {
        // Escape: simple (`\n`, `\'`) or bracketed (`\u{1F600}`).
        if s.peek(0) == Some('u') && s.peek(1) == Some('{') {
            while let Some(ch) = s.bump() {
                if ch == '}' {
                    break;
                }
            }
        } else {
            s.bump();
        }
    }
    if s.peek(0) == Some('\'') {
        s.bump();
    }
    out.push(token(s, TokenKind::CharLit, start, line, col));
}

/// Consumes a numeric literal: ints, floats, hex/oct/bin, suffixes, and
/// exponents with signs (`1e-4` is one token, so its sign never looks
/// like arithmetic to the rules).
fn lex_number(s: &mut Scanner) {
    // Leading digits, hex/bin/oct bodies, suffixes — one alnum/underscore run.
    while s.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
        let cur = s.peek(0);
        s.bump();
        // Exponent sign: `e`/`E` followed by +/- and a digit.
        if matches!(cur, Some('e' | 'E'))
            && matches!(s.peek(0), Some('+' | '-'))
            && s.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            s.bump();
        }
    }
    // Fractional part — but never consume `..` (range) or `.method()`.
    if s.peek(0) == Some('.') && s.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        s.bump();
        while s.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
            let cur = s.peek(0);
            s.bump();
            if matches!(cur, Some('e' | 'E'))
                && matches!(s.peek(0), Some('+' | '-'))
                && s.peek(1).is_some_and(|c| c.is_ascii_digit())
            {
                s.bump();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_swallow_embedded_quotes_and_hashes() {
        let toks = kinds(r####"let s = r#"a "quoted" body"# ;"####);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".to_string()),
                (TokenKind::Ident, "s".to_string()),
                (TokenKind::Punct, "=".to_string()),
                (TokenKind::StrLit, r##"r#"a "quoted" body"#"##.to_string()),
                (TokenKind::Punct, ";".to_string()),
            ]
        );
        // Two hashes, body containing a one-hash terminator lookalike.
        let toks = kinds(r#####"r##"still "# going"## x"#####);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert_eq!(toks[0].1, r####"r##"still "# going"##"####);
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }

    #[test]
    fn byte_and_plain_strings_honour_escapes() {
        let toks = kinds(r#"b"a\"b" "c\\" 'd'"#);
        assert_eq!(toks[0], (TokenKind::StrLit, r#"b"a\"b""#.to_string()));
        assert_eq!(toks[1], (TokenKind::StrLit, r#""c\\""#.to_string()));
        assert_eq!(toks[2], (TokenKind::CharLit, "'d'".to_string()));
    }

    #[test]
    fn code_inside_strings_is_not_identifier_tokens() {
        let toks = lex(r#"let x = "thread_rng() + SystemTime::now()";"#);
        assert!(!toks.iter().any(|t| t.is_ident("thread_rng")));
        assert!(!toks.iter().any(|t| t.is_ident("SystemTime")));
        assert!(!toks.iter().any(|t| t.is_punct('+')));
    }

    #[test]
    fn block_comments_nest() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a".to_string()),
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still comment */".to_string()
                ),
                (TokenKind::Ident, "b".to_string()),
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let toks = kinds("x /* never closed");
        assert_eq!(toks[0], (TokenKind::Ident, "x".to_string()));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str + 'x' + '\\'' + 'static + b'0'");
        let got: Vec<_> = toks.iter().map(|(k, t)| (*k, t.as_str())).collect();
        assert!(got.contains(&(TokenKind::Lifetime, "'a")));
        assert!(got.contains(&(TokenKind::CharLit, "'x'")));
        assert!(got.contains(&(TokenKind::CharLit, "'\\''")));
        assert!(got.contains(&(TokenKind::Lifetime, "'static")));
        assert!(got.contains(&(TokenKind::CharLit, "b'0'")));
    }

    #[test]
    fn unicode_escape_char_literal() {
        let toks = kinds(r"'\u{1F600}' 'q'");
        assert_eq!(toks[0], (TokenKind::CharLit, r"'\u{1F600}'".to_string()));
        assert_eq!(toks[1], (TokenKind::CharLit, "'q'".to_string()));
    }

    #[test]
    fn exponent_signs_are_part_of_the_number() {
        let toks = kinds("1e-4 + 2.5E+10 - 3");
        assert_eq!(toks[0], (TokenKind::NumLit, "1e-4".to_string()));
        assert_eq!(toks[1], (TokenKind::Punct, "+".to_string()));
        assert_eq!(toks[2], (TokenKind::NumLit, "2.5E+10".to_string()));
        assert_eq!(toks[3], (TokenKind::Punct, "-".to_string()));
        assert_eq!(toks[4], (TokenKind::NumLit, "3".to_string()));
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let toks = kinds("for i in 0..n { a[i - 1]; } 1.5..2.5");
        assert!(toks.contains(&(TokenKind::NumLit, "0".to_string())));
        assert!(toks.contains(&(TokenKind::Ident, "n".to_string())));
        assert!(toks.contains(&(TokenKind::NumLit, "1.5".to_string())));
        assert!(toks.contains(&(TokenKind::NumLit, "2.5".to_string())));
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        let toks = kinds("r#type + r#fn");
        assert_eq!(toks[0], (TokenKind::Ident, "r#type".to_string()));
        assert_eq!(toks[2], (TokenKind::Ident, "r#fn".to_string()));
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd // tail\n\"s\"");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 6));
        assert_eq!((toks[3].line, toks[3].col), (3, 1));
    }

    #[test]
    fn doc_comments_are_comment_tokens() {
        let toks = kinds("/// uses thread_rng\n//! and SystemTime\nfn f() {}");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2], (TokenKind::Ident, "fn".to_string()));
    }
}
