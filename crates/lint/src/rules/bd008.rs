//! BD008 — SIMD kernel dispatch discipline.
//!
//! The kernel selector (PR 7) introduced real `#[target_feature]`
//! intrinsics kernels. Two source-level invariants keep them sound and
//! testable:
//!
//! * a `#[target_feature]` function may only be reached through a call
//!   that is dominated by an `is_x86_feature_detected!` check inside the
//!   same enclosing function, with a `// SAFETY:` comment between the
//!   check and the call — executing AVX2 code on a CPU without AVX2 is
//!   immediate UB, and the justification must sit where the dispatch
//!   happens, not drift elsewhere. Calls made *from* another
//!   `#[target_feature]` function are exempt (the caller's compilation
//!   context already establishes the feature statically).
//! * a file that uses x86 intrinsics (`_mm*` identifiers) must name a
//!   `*_reference` oracle somewhere — every intrinsics kernel module
//!   keeps a scalar reference implementation its equivalence tests pin
//!   the fast path against.
//!
//! The call check joins across files in `finish`: definitions and call
//! sites may live in different modules. Test regions are exempt from the
//! call check (equivalence tests drive kernels directly), but a test
//! `use` of the oracle still satisfies the reference requirement.

use super::{matching_delim, FileCtx, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

/// See module docs.
#[derive(Default)]
pub struct SimdDispatchDiscipline {
    /// Names of every `#[target_feature]` fn seen anywhere in the
    /// workspace.
    defs: BTreeSet<String>,
    /// Production call sites that would violate the dispatch contract
    /// *if* the callee turns out to be a `#[target_feature]` fn.
    suspects: Vec<Suspect>,
}

struct Suspect {
    name: String,
    path: String,
    line: u32,
    col: u32,
    guarded: bool,
}

/// One function item: its body token range and whether a
/// `#[target_feature]` attribute guards it.
struct FnInfo {
    body: (usize, usize),
    is_tf: bool,
}

impl Rule for SimdDispatchDiscipline {
    fn code(&self) -> &'static str {
        "BD008"
    }

    fn name(&self) -> &'static str {
        "simd-kernel-dispatch-discipline"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        let fns = collect_fns(ctx, &mut self.defs);
        let mut out = Vec::new();
        self.collect_suspects(ctx, &fns);
        if let Some(f) = reference_oracle_finding(ctx, self.code()) {
            out.push(f);
        }
        out
    }

    fn finish(&mut self) -> Vec<Finding> {
        let mut out = Vec::new();
        for s in &self.suspects {
            if !self.defs.contains(&s.name) {
                continue;
            }
            let message = if s.guarded {
                format!(
                    "call to `#[target_feature]` fn `{}` has no `// SAFETY:` \
                     comment between the `is_x86_feature_detected!` check and \
                     the call: the dispatch-site justification must not drift \
                     away from the unsafe call it covers",
                    s.name
                )
            } else {
                format!(
                    "`{}` is compiled with `#[target_feature]` but this call \
                     is not dominated by an `is_x86_feature_detected!` check \
                     in the same function: reaching it on a CPU without the \
                     feature is undefined behavior",
                    s.name
                )
            };
            out.push(Finding::new(
                self.code(),
                s.path.clone(),
                s.line,
                s.col,
                message,
            ));
        }
        out
    }
}

impl SimdDispatchDiscipline {
    /// Records every production call site that is *not* provably
    /// disciplined (unguarded, or guarded without an adjacent SAFETY
    /// justification) for the cross-file join in `finish`.
    fn collect_suspects(&mut self, ctx: &FileCtx<'_>, fns: &[FnInfo]) {
        for (k, &i) in ctx.code.iter().enumerate() {
            let t = &ctx.tokens[i];
            if t.kind != TokenKind::Ident || ctx.in_test(i) {
                continue;
            }
            let called = ctx
                .code
                .get(k + 1)
                .is_some_and(|&n| ctx.tokens[n].is_punct('('));
            let defined = k > 0 && ctx.tokens[ctx.code[k - 1]].is_ident("fn");
            if !called || defined {
                continue;
            }
            // Innermost enclosing fn body.
            let Some(encl) = fns
                .iter()
                .filter(|f| (f.body.0..f.body.1).contains(&i))
                .min_by_key(|f| f.body.1 - f.body.0)
            else {
                continue;
            };
            if encl.is_tf {
                continue; // tf-to-tf calls carry the feature statically
            }
            // Last feature check before the call, inside the same body.
            let guard = ctx.code.iter().copied().rfind(|&g| {
                g > encl.body.0 && g < i && ctx.tokens[g].is_ident("is_x86_feature_detected")
            });
            let safety = guard.is_some_and(|g| {
                ctx.tokens[g..i]
                    .iter()
                    .any(|c| c.is_comment() && c.text.contains("SAFETY:"))
            });
            if guard.is_some() && safety {
                continue;
            }
            self.suspects.push(Suspect {
                name: t.text.clone(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                guarded: guard.is_some(),
            });
        }
    }
}

/// Walks the file's items, recording each fn's body range and whether a
/// `#[target_feature]` attribute precedes it; tf fn names go into `defs`.
fn collect_fns(ctx: &FileCtx<'_>, defs: &mut BTreeSet<String>) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut pending_tf = false;
    let mut k = 0usize;
    while k < ctx.code.len() {
        let i = ctx.code[k];
        let t = &ctx.tokens[i];
        if t.is_punct('#')
            && ctx
                .code
                .get(k + 1)
                .is_some_and(|&n| ctx.tokens[n].is_punct('['))
        {
            let close = matching_delim(ctx.tokens, ctx.code[k + 1]);
            pending_tf |= ctx.tokens[ctx.code[k + 1]..close.min(ctx.tokens.len())]
                .iter()
                .any(|a| a.is_ident("target_feature"));
            // Resume after the attribute's `]`.
            k = ctx.code.partition_point(|&c| c <= close);
            continue;
        }
        if t.is_ident("fn") {
            if let Some(&name_i) = ctx.code.get(k + 1) {
                let name_tok = &ctx.tokens[name_i];
                if name_tok.kind == TokenKind::Ident {
                    if let Some(open) = fn_body_open(ctx, k) {
                        let close = matching_delim(ctx.tokens, open);
                        if pending_tf {
                            defs.insert(name_tok.text.clone());
                        }
                        fns.push(FnInfo {
                            body: (open, close.min(ctx.tokens.len())),
                            is_tf: pending_tf,
                        });
                    }
                }
            }
            pending_tf = false;
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            // Attributes attach only to the directly following item.
            pending_tf = false;
        }
        k += 1;
    }
    fns
}

/// Tokens index of the body `{` for the fn keyword at code index `k`, or
/// `None` for body-less declarations.
fn fn_body_open(ctx: &FileCtx<'_>, k: usize) -> Option<usize> {
    for j in k + 1..ctx.code.len() {
        let t = &ctx.tokens[ctx.code[j]];
        if t.is_punct('{') {
            return Some(ctx.code[j]);
        }
        if t.is_punct(';') {
            return None;
        }
    }
    None
}

/// If the file's production code uses x86 intrinsics but no identifier in
/// the file (tests included) ends with `_reference`, reports the first
/// intrinsic use.
fn reference_oracle_finding(ctx: &FileCtx<'_>, code: &'static str) -> Option<Finding> {
    let first_mm = ctx.code.iter().copied().find(|&i| {
        let t = &ctx.tokens[i];
        t.kind == TokenKind::Ident && t.text.starts_with("_mm") && !ctx.in_test(i)
    })?;
    let has_oracle = ctx
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text.ends_with("_reference"));
    if has_oracle {
        return None;
    }
    Some(ctx.finding(
        code,
        first_mm,
        format!(
            "`{}` is an x86 intrinsic but this file names no `*_reference` \
             oracle: every intrinsics kernel module must keep a scalar \
             reference implementation for its equivalence tests to pin \
             against",
            ctx.tokens[first_mm].text
        ),
    ))
}
