//! BD010 — interprocedural panic reachability.
//!
//! PR 3 made the engine and checkpoint layers fully fallible: worker
//! panics, sink failures and journal corruption are typed
//! `EngineError`/`CheckpointError`/`ShardError` values so a crashed
//! campaign leaves a resumable journal instead of a dead process. The
//! retired per-file BD005 could police a panic *written in* those
//! files; it could not see an innocent helper three calls away that
//! unwraps. This rule closes that hole with the workspace call graph.
//!
//! **Root set** (BD005's exact scope, now as call-graph entry points):
//! every non-test fn defined in `crates/core/src/engine.rs`,
//! `crates/core/src/checkpoint.rs`, `crates/core/src/shard.rs`, any
//! file under `crates/server/src/`, or inside an `impl … EvalSink for …`
//! block anywhere.
//!
//! **Violation**: any panic site (`panic!`/`unreachable!`/`todo!`,
//! `.unwrap()`, `.expect(…)`) in a non-test fn reachable from a root.
//! A panic *in* a root fn is a length-0 path — exact BD005 parity.
//! Postfix *scalar* indexing (`xs[i]`, also a panic site) is reported
//! only when the indexing fn is itself a root: transitively-reached
//! indexing is overwhelmingly checked-by-construction tensor math, and
//! flagging all of it would drown the signal. Range slicing
//! (`&buf[..n]`) is exempt everywhere — it is the length-managed buffer
//! idiom whose bounds checks sit adjacent (DESIGN.md §18).
//!
//! **Traversal bounds**: the walk never enters test fns, nor functions
//! in `crates/lint/` or `crates/bench/` (the linter's own rule tables
//! and the bench harness are not campaign territory, and name-based
//! method resolution would otherwise drag them in).
//!
//! Findings anchor at the panic site, carry the witness call chain as
//! notes, and are waived there:
//! `// bdlfi-lint: allow(BD010) -- reason`.

use super::WsRule;
use crate::ast::PanicKind;
use crate::callgraph::{chain_notes, reach_forward, Provenance};
use crate::diag::Finding;
use crate::Workspace;
use std::collections::BTreeSet;

/// Files policed in their entirety (non-test fns become roots).
pub const SCOPE_PATHS: [&str; 3] = [
    "crates/core/src/engine.rs",
    "crates/core/src/checkpoint.rs",
    "crates/core/src/shard.rs",
];

/// Directories whose every file is policed (the daemon's request paths).
pub const SCOPE_DIRS: [&str; 1] = ["crates/server/src/"];

/// Crates the reachability walk never enters.
pub const EXCLUDED_CRATES: [&str; 2] = ["crates/lint/", "crates/bench/"];

/// Whether a path is part of BD010's root scope.
#[must_use]
pub fn in_scope_path(path: &str) -> bool {
    SCOPE_PATHS.iter().any(|p| path.ends_with(p)) || SCOPE_DIRS.iter().any(|d| path.contains(d))
}

/// Whether a path is excluded territory for the interprocedural rules.
#[must_use]
pub fn excluded_path(path: &str) -> bool {
    EXCLUDED_CRATES.iter().any(|c| path.contains(c))
}

/// See module docs.
pub struct PanicReachability;

impl WsRule for PanicReachability {
    fn code(&self) -> &'static str {
        "BD010"
    }

    fn name(&self) -> &'static str {
        "panic-reachability-from-engine-paths"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let n = ws.symbols.fns.len();
        let is_root = |node: usize| {
            let d = ws.def(node);
            if d.is_test {
                return false;
            }
            let path = &ws.file_of(node).path;
            if excluded_path(path) {
                return false;
            }
            in_scope_path(path) || d.trait_name.as_deref() == Some("EvalSink")
        };
        let roots: Vec<usize> = (0..n).filter(|&x| is_root(x)).collect();
        if roots.is_empty() {
            return Vec::new();
        }
        let enter = |node: usize| !ws.def(node).is_test && !excluded_path(&ws.file_of(node).path);
        let reach = reach_forward(&ws.graph, &roots, enter);

        let mut out = Vec::new();
        let mut seen_sites: BTreeSet<(String, u32, u32)> = BTreeSet::new();
        for (&node, prov) in &reach {
            let d = ws.def(node);
            let file = ws.file_of(node);
            let root = matches!(prov, Provenance::Root);
            for p in &d.panics {
                if p.kind == PanicKind::SliceIndex && !root {
                    continue;
                }
                if !seen_sites.insert((file.path.clone(), p.line, p.col)) {
                    continue;
                }
                let what = p.kind.label(&p.what);
                let message = if root {
                    format!(
                        "`{what}` in a typed-error path (engine/checkpoint/shard/serve/\
                         EvalSink): return a typed error so interrupted campaigns stay \
                         resumable"
                    )
                } else {
                    format!(
                        "`{what}` in `{}` is reachable from a typed-error entry point: \
                         a panic anywhere on this call path kills the campaign instead \
                         of leaving a resumable journal",
                        d.name
                    )
                };
                let mut f = Finding::new(self.code(), file.path.clone(), p.line, p.col, message);
                f.notes = chain_notes(&ws.files, &ws.symbols, &reach, node, true);
                out.push(f);
            }
        }
        out
    }
}
