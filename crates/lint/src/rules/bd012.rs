//! BD012 — unsafe-dispatch reachability for `#[target_feature]` kernels.
//!
//! BD008 polices the *shape* of a dispatch site: a call to a
//! `#[target_feature]` fn must be dominated by an
//! `is_x86_feature_detected!` check with an adjacent `// SAFETY:`
//! comment — in the same file, because BD008's token view ends at the
//! file boundary. This rule extends the contract to the whole
//! workspace, and makes it *architectural*: the guarded dispatch inside
//! the kernel's own module (the benched selector's front door, DESIGN.md
//! §15) is the **only** sanctioned way in from another file.
//!
//! **Violation**: a resolved call edge from a non-test,
//! non-`#[target_feature]` fn in file A to a `#[target_feature]` fn in
//! file B ≠ A — *even if* the caller wrote its own guard and SAFETY
//! comment. A second dispatch site in a distant crate would bypass the
//! selector's per-shape benching and duplicate the feature-detection
//! policy; the fix is to call the kernel module's public dispatch
//! wrapper instead.
//!
//! Exemptions: kernel-to-kernel calls (`#[target_feature]` callers
//! already carry the feature statically, and multi-stage kernels
//! legitimately span files), test fns (equivalence tests drive kernels
//! directly), and the `crates/lint`/`crates/bench` territory the other
//! interprocedural rules also skip.

use super::bd010::excluded_path;
use super::WsRule;
use crate::diag::Finding;
use crate::Workspace;
use std::collections::BTreeSet;

/// See module docs.
pub struct UnsafeDispatchReachability;

impl WsRule for UnsafeDispatchReachability {
    fn code(&self) -> &'static str {
        "BD012"
    }

    fn name(&self) -> &'static str {
        "target-feature-cross-file-dispatch"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        let mut seen: BTreeSet<(String, u32, u32)> = BTreeSet::new();
        for caller in 0..ws.symbols.fns.len() {
            let cd = ws.def(caller);
            if cd.is_test || cd.target_feature {
                continue;
            }
            let cfile = ws.file_of(caller);
            if excluded_path(&cfile.path) {
                continue;
            }
            for e in &ws.graph.fwd[caller] {
                let kd = ws.def(e.callee);
                if !kd.target_feature || kd.is_test {
                    continue;
                }
                let kfile = ws.file_of(e.callee);
                if std::ptr::eq(cfile, kfile) || excluded_path(&kfile.path) {
                    continue;
                }
                let site = &cd.calls[e.site];
                if !seen.insert((cfile.path.clone(), site.line, site.col)) {
                    continue;
                }
                let mut f = Finding::new(
                    self.code(),
                    cfile.path.clone(),
                    site.line,
                    site.col,
                    format!(
                        "`{}` is a `#[target_feature]` kernel defined in {}: it may \
                         only be entered cross-file through its own module's guarded \
                         dispatch wrapper (the benched selector front door), not \
                         called directly from `{}`",
                        kd.name, kfile.path, cd.name
                    ),
                );
                f.notes = vec![format!(
                    "kernel `{}` defined at {}:{}:{}",
                    kd.name, kfile.path, kd.line, kd.col
                )];
                out.push(f);
            }
        }
        out
    }
}
