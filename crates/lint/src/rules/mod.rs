//! The rule engine: each determinism rule is a [`Rule`] over a lexed
//! file, with an optional workspace-wide `finish` pass for cross-file
//! invariants (BD006's tag-distinctness check).
//!
//! Rules see a [`FileCtx`]: the token stream (comments included), a
//! comment-free *code view* (indices into the stream), and the file's
//! test regions — `#[cfg(test)] mod … { }` bodies, `#[test]` fn bodies,
//! and whole files under a `tests/` directory. Rules that police
//! production invariants (BD003) skip test regions; rules that police
//! source hygiene everywhere (BD004) do not. The interprocedural rules
//! (BD010–BD012) exclude test fns at the call-graph level instead.

use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};

mod bd001;
mod bd002;
mod bd003;
mod bd004;
mod bd006;
mod bd007;
mod bd008;
mod bd009;
mod bd010;
mod bd011;
mod bd012;

pub use bd001::EntropySources;
pub use bd002::AdditiveSeeds;
pub use bd003::UnorderedIteration;
pub use bd004::UnsafeNeedsSafety;
pub use bd006::DistinctFingerprints;
pub use bd007::ExactDeltaFallback;
pub use bd008::SimdDispatchDiscipline;
pub use bd009::ShardFingerprintDiscipline;
pub use bd010::PanicReachability;
pub use bd011::DeterminismTaint;
pub use bd012::UnsafeDispatchReachability;

/// Everything a rule may inspect about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative, `/`-separated path.
    pub path: &'a str,
    /// Full token stream, comments included.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of every non-comment token, in order.
    pub code: &'a [usize],
    /// Half-open `tokens` index ranges that are test code.
    pub test_regions: &'a [(usize, usize)],
}

impl FileCtx<'_> {
    /// Whether token index `i` falls inside a test region.
    #[must_use]
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| (a..b).contains(&i))
    }

    /// Builds a finding at token index `i`.
    #[must_use]
    pub fn finding(&self, code: &'static str, i: usize, message: String) -> Finding {
        let t = &self.tokens[i];
        Finding::new(code, self.path.to_string(), t.line, t.col, message)
    }
}

/// One determinism rule. `check` runs per file; `finish` runs once after
/// every file has been seen and may report cross-file violations.
pub trait Rule {
    /// The rule's `BDxxx` code.
    fn code(&self) -> &'static str;
    /// Short rule name for `--list`-style output.
    fn name(&self) -> &'static str;
    /// Per-file pass.
    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding>;
    /// Workspace pass after all files.
    fn finish(&mut self) -> Vec<Finding> {
        Vec::new()
    }
}

/// A workspace-level rule: runs once, over the fully built
/// [`crate::Workspace`] (parsed files + symbol table + call graph).
/// BD010–BD012 live here; anything a single [`FileCtx`] can answer
/// belongs in [`Rule`] instead.
pub trait WsRule {
    /// The rule's `BDxxx` code.
    fn code(&self) -> &'static str;
    /// Short rule name for `--list`-style output.
    fn name(&self) -> &'static str;
    /// The whole-workspace pass.
    fn check(&self, ws: &crate::Workspace) -> Vec<Finding>;
}

/// The per-file rule set, in code order. BD005's per-file panic scan
/// retired in favour of BD010's interprocedural reachability (its exact
/// scope survives as BD010's root set).
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(EntropySources),
        Box::new(AdditiveSeeds),
        Box::new(UnorderedIteration),
        Box::new(UnsafeNeedsSafety),
        Box::new(DistinctFingerprints::default()),
        Box::new(ExactDeltaFallback),
        Box::new(SimdDispatchDiscipline::default()),
        Box::new(ShardFingerprintDiscipline),
    ]
}

/// The workspace-level rule set, in code order.
#[must_use]
pub fn all_ws_rules() -> Vec<Box<dyn WsRule>> {
    vec![
        Box::new(PanicReachability),
        Box::new(DeterminismTaint),
        Box::new(UnsafeDispatchReachability),
    ]
}

/// Indices of all non-comment tokens.
#[must_use]
pub fn code_view(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect()
}

/// Finds the `tokens` index of the delimiter matching the opener at
/// `tokens[open]` (`open` must index a Punct `(`/`[`/`{`). Returns the
/// index of the closer, or `tokens.len()` if unbalanced.
#[must_use]
pub fn matching_delim(tokens: &[Token], open: usize) -> usize {
    let (oc, cc) = match tokens[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return tokens.len(),
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        if t.is_punct(oc) {
            depth += 1;
        } else if t.is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Computes the file's test regions as half-open `tokens` index ranges:
/// `#[cfg(test)] mod … { … }` bodies and `#[test] fn … { … }` bodies. A
/// file whose path contains a `tests/` directory segment is one whole
/// test region.
#[must_use]
pub fn test_regions(path: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    if path.split('/').any(|seg| seg == "tests") {
        return vec![(0, tokens.len())];
    }
    let code = code_view(tokens);
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        if let Some(body) = attribute_guard_body(tokens, &code, k) {
            out.push(body);
        }
        k += 1;
    }
    out
}

/// If `code[k]` starts a `#[cfg(test)]` or `#[test]` attribute, returns
/// the token range of the `mod`/`fn` body it guards.
fn attribute_guard_body(tokens: &[Token], code: &[usize], k: usize) -> Option<(usize, usize)> {
    let tok = |j: usize| -> Option<&Token> { code.get(j).map(|&i| &tokens[i]) };
    if !tok(k)?.is_punct('#') || !tok(k + 1)?.is_punct('[') {
        return None;
    }
    let attr_close = matching_delim_in_view(tokens, code, k + 1)?;
    let inner: Vec<&str> = code[k + 2..attr_close]
        .iter()
        .map(|&i| tokens[i].text.as_str())
        .collect();
    let is_test_attr = inner == ["test"] || inner == ["cfg", "(", "test", ")"];
    if !is_test_attr {
        return None;
    }
    // Skip any further attributes between this one and the item.
    let mut j = attr_close + 1;
    while tok(j)?.is_punct('#') && tok(j + 1)?.is_punct('[') {
        j = matching_delim_in_view(tokens, code, j + 1)? + 1;
    }
    // Scan forward to the item's opening brace at the current level.
    while let Some(t) = tok(j) {
        if t.is_punct('{') {
            let close = matching_delim(tokens, code[j]);
            return Some((code[j], close.min(tokens.len())));
        }
        if t.is_punct(';') {
            return None; // e.g. `#[cfg(test)] use …;`
        }
        j += 1;
    }
    None
}

/// [`matching_delim`] over the code view: `code[open_k]` indexes the
/// opener; returns the code-view index of the closer.
fn matching_delim_in_view(tokens: &[Token], code: &[usize], open_k: usize) -> Option<usize> {
    let close_tok = matching_delim(tokens, code[open_k]);
    code.iter().position(|&i| i == close_tok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_body_is_a_test_region() {
        let src =
            "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\n";
        let toks = lex(src);
        let regions = test_regions("crates/a/src/lib.rs", &toks);
        assert_eq!(regions.len(), 1);
        // The production unwrap is outside, the test unwrap inside.
        let unwraps: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        let (a, b) = regions[0];
        assert!(!(a..b).contains(&unwraps[0]));
        assert!((a..b).contains(&unwraps[1]));
    }

    #[test]
    fn test_attr_fn_body_is_a_test_region() {
        let src = "#[test]\nfn check() { assert!(true); }\nfn prod() {}";
        let toks = lex(src);
        let regions = test_regions("crates/a/src/lib.rs", &toks);
        assert_eq!(regions.len(), 1);
    }

    #[test]
    fn tests_directory_files_are_entirely_test() {
        let toks = lex("fn anything() {}");
        assert_eq!(
            test_regions("tests/engine_determinism.rs", &toks),
            vec![(0, toks.len())]
        );
        assert_eq!(
            test_regions("crates/lint/tests/lint_fixtures.rs", &toks),
            vec![(0, toks.len())]
        );
    }

    #[test]
    fn other_cfg_attributes_are_not_test_regions() {
        let src = "#[cfg(target_arch = \"x86_64\")]\nmod arch { fn f() {} }";
        let toks = lex(src);
        assert!(test_regions("crates/a/src/lib.rs", &toks).is_empty());
    }
}
