//! BD001 — no nondeterministic entropy sources outside `crates/bench`.
//!
//! The reproduction's statistical-completeness claim rests on campaigns
//! being a pure function of their configured seed. `thread_rng()`,
//! `SeedableRng::from_entropy()`, `OsRng` and `SystemTime::now()` (the
//! classic time-derived-seed source) all smuggle ambient state into that
//! function. The bench crate is exempt: wall-clock timing harnesses
//! legitimately read the clock, and their numbers are not part of any
//! reproducible report.

use super::{FileCtx, Rule};
use crate::diag::Finding;

/// Identifiers that are nondeterministic entropy sources wherever they
/// appear in an expression.
const BANNED_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

/// See module docs.
pub struct EntropySources;

impl Rule for EntropySources {
    fn code(&self) -> &'static str {
        "BD001"
    }

    fn name(&self) -> &'static str {
        "no-entropy-sources"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        if ctx.path.starts_with("crates/bench/") {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (k, &i) in ctx.code.iter().enumerate() {
            let t = &ctx.tokens[i];
            for banned in BANNED_IDENTS {
                if t.is_ident(banned) {
                    out.push(ctx.finding(
                        self.code(),
                        i,
                        format!(
                            "nondeterministic entropy source `{banned}`: campaigns must \
                             derive all randomness from an explicit seed \
                             (seed_stream lanes); only crates/bench may read ambient \
                             entropy"
                        ),
                    ));
                }
            }
            // `SystemTime::now()` — time-derived seeds and timestamps in
            // results. (`Instant` is fine: it only feeds RunMeta timing.)
            if t.is_ident("SystemTime")
                && ctx
                    .code
                    .get(k + 1)
                    .is_some_and(|&j| ctx.tokens[j].is_punct(':'))
                && ctx
                    .code
                    .get(k + 2)
                    .is_some_and(|&j| ctx.tokens[j].is_punct(':'))
                && ctx
                    .code
                    .get(k + 3)
                    .is_some_and(|&j| ctx.tokens[j].is_ident("now"))
            {
                out.push(
                    ctx.finding(
                        self.code(),
                        i,
                        "time-derived value `SystemTime::now()`: wall-clock state must \
                     not reach seeds or reported results; only crates/bench may \
                     read the clock"
                            .to_string(),
                    ),
                );
            }
        }
        out
    }
}
