//! BD004 — every `unsafe` needs a `// SAFETY:` justification.
//!
//! The workspace's two `unsafe` call sites (the AVX2 micro-kernel
//! dispatches in `ops/gemm.rs` and `ops/qgemm.rs`) are exactly the places
//! where an undocumented assumption can silently turn into UB after a
//! refactor. The rule requires a comment containing `SAFETY:` either on
//! the `unsafe` line itself or anywhere in the contiguous comment block
//! that ends on the line directly above it — close enough that the
//! justification cannot drift away from the block it covers, while still
//! permitting multi-line justifications.

use super::{FileCtx, Rule};
use crate::diag::Finding;
use std::collections::BTreeSet;

/// See module docs.
pub struct UnsafeNeedsSafety;

impl Rule for UnsafeNeedsSafety {
    fn code(&self) -> &'static str {
        "BD004"
    }

    fn name(&self) -> &'static str {
        "unsafe-needs-safety-comment"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        // Lines carrying any comment, and lines whose comment says SAFETY:.
        let mut comment_lines = BTreeSet::new();
        let mut safety_lines = BTreeSet::new();
        for c in ctx.tokens.iter().filter(|c| c.is_comment()) {
            comment_lines.insert(c.line);
            if c.text.contains("SAFETY:") {
                safety_lines.insert(c.line);
            }
        }
        let mut out = Vec::new();
        for &i in ctx.code {
            let t = &ctx.tokens[i];
            if !t.is_ident("unsafe") {
                continue;
            }
            // Same line, or any line of the contiguous comment run ending
            // directly above.
            let mut justified = safety_lines.contains(&t.line);
            let mut line = t.line;
            while !justified && line > 1 && comment_lines.contains(&(line - 1)) {
                line -= 1;
                justified = safety_lines.contains(&line);
            }
            if !justified {
                out.push(
                    ctx.finding(
                        self.code(),
                        i,
                        "`unsafe` without a `// SAFETY:` comment: state the proof \
                     obligation (pointer provenance, alignment, in-bounds, \
                     target-feature availability) on or directly above the block"
                            .to_string(),
                    ),
                );
            }
        }
        out
    }
}
