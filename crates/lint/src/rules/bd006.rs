//! BD006 — every `*_controlled` driver taking a `CheckpointSpec` must
//! bind a *distinct* journal fingerprint tag.
//!
//! The checkpoint header's fingerprint (`fingerprint("tag", &config)`)
//! is what stops a journal written by one driver from being replayed
//! into another — the f32/quant no-cross-resume guarantee relies on
//! `"exhaustive"` vs `"exhaustive_quant"` being different tags even when
//! the configs hash alike. Two failure modes are flagged:
//!
//! * a `*_controlled(… CheckpointSpec …)` driver that never binds a tag
//!   at all (its journals inherit whatever the callee uses, so two
//!   different studies become resume-compatible);
//! * two different drivers binding the *same* tag.
//!
//! Tags are resolved from direct `fingerprint("tag", …)` calls in the
//! driver body, or one level through a local `*fingerprint*` helper
//! (e.g. `campaign_fingerprint(…)` → `fingerprint("campaign", …)`).

use super::{matching_delim, FileCtx, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// One tag binding discovered in a driver body.
#[derive(Debug, Clone)]
struct TagUse {
    fn_name: String,
    path: String,
    line: u32,
    col: u32,
}

/// See module docs.
#[derive(Default)]
pub struct DistinctFingerprints {
    /// tag → every controlled driver binding it (BTreeMap for
    /// deterministic report order).
    tags: BTreeMap<String, Vec<TagUse>>,
}

impl Rule for DistinctFingerprints {
    fn code(&self) -> &'static str {
        "BD006"
    }

    fn name(&self) -> &'static str {
        "distinct-journal-fingerprints"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        for (k, &i) in ctx.code.iter().enumerate() {
            if !ctx.tokens[i].is_ident("fn") || ctx.in_test(i) {
                continue;
            }
            let Some(&name_i) = ctx.code.get(k + 1) else {
                continue;
            };
            let name_tok = &ctx.tokens[name_i];
            if name_tok.kind != TokenKind::Ident || !name_tok.text.ends_with("_controlled") {
                continue;
            }
            let Some((sig_end, body_open)) = fn_body_open(ctx, k) else {
                continue;
            };
            let sig_has_spec = (k..sig_end)
                .filter_map(|j| ctx.code.get(j))
                .any(|&t| ctx.tokens[t].is_ident("CheckpointSpec"));
            if !sig_has_spec {
                continue;
            }
            let body_close = matching_delim(ctx.tokens, body_open);
            let mut tags = direct_tags(ctx, body_open, body_close);
            if tags.is_empty() {
                for helper in helper_calls(ctx, body_open, body_close) {
                    tags.extend(helper_tags(ctx, &helper));
                }
            }
            if tags.is_empty() {
                out.push(ctx.finding(
                    self.code(),
                    name_i,
                    format!(
                        "`{}` takes a CheckpointSpec but never binds a journal \
                         fingerprint tag: its journals are resume-compatible with \
                         whatever driver it delegates to; bind a distinct \
                         fingerprint(\"tag\", …) before delegating",
                        name_tok.text
                    ),
                ));
            }
            for (tag, tag_i) in tags {
                let t = &ctx.tokens[tag_i];
                self.tags.entry(tag).or_default().push(TagUse {
                    fn_name: name_tok.text.clone(),
                    path: ctx.path.to_string(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
        out
    }

    fn finish(&mut self) -> Vec<Finding> {
        let mut out = Vec::new();
        for (tag, uses) in &self.tags {
            let mut fns: Vec<&str> = uses.iter().map(|u| u.fn_name.as_str()).collect();
            fns.sort_unstable();
            fns.dedup();
            if fns.len() < 2 {
                continue;
            }
            for u in uses {
                out.push(Finding::new(
                    self.code(),
                    u.path.clone(),
                    u.line,
                    u.col,
                    format!(
                        "journal fingerprint tag \"{tag}\" is shared by {} — journals \
                         from different drivers must never be resume-compatible; give \
                         each controlled driver its own tag",
                        fns.join(" and ")
                    ),
                ));
            }
        }
        out
    }
}

/// For the `fn` at code index `k`, returns `(code index past the
/// signature, tokens index of the body `{`)`. Returns `None` for
/// body-less declarations (trait methods).
fn fn_body_open(ctx: &FileCtx<'_>, k: usize) -> Option<(usize, usize)> {
    for j in k + 1..ctx.code.len() {
        let t = &ctx.tokens[ctx.code[j]];
        if t.is_punct('{') {
            return Some((j, ctx.code[j]));
        }
        if t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Direct `fingerprint("tag", …)` calls between token indices
/// `(open, close)`; returns `(tag, tokens index of the tag literal)`.
fn direct_tags(ctx: &FileCtx<'_>, open: usize, close: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let idxs: Vec<usize> = ctx
        .code
        .iter()
        .copied()
        .filter(|&i| i > open && i < close)
        .collect();
    for (k, &i) in idxs.iter().enumerate() {
        if !ctx.tokens[i].is_ident("fingerprint") {
            continue;
        }
        let Some(&paren) = idxs.get(k + 1) else {
            continue;
        };
        if !ctx.tokens[paren].is_punct('(') {
            continue;
        }
        if let Some(&lit) = idxs.get(k + 2) {
            let t = &ctx.tokens[lit];
            if t.kind == TokenKind::StrLit && t.text.len() >= 2 {
                out.push((t.text[1..t.text.len() - 1].to_string(), lit));
            }
        }
    }
    out
}

/// Names of called local helpers whose name contains `fingerprint`
/// (excluding the bare `fingerprint` function itself).
fn helper_calls(ctx: &FileCtx<'_>, open: usize, close: usize) -> Vec<String> {
    let mut out = Vec::new();
    let idxs: Vec<usize> = ctx
        .code
        .iter()
        .copied()
        .filter(|&i| i > open && i < close)
        .collect();
    for (k, &i) in idxs.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.kind == TokenKind::Ident
            && t.text != "fingerprint"
            && t.text.contains("fingerprint")
            && idxs
                .get(k + 1)
                .is_some_and(|&j| ctx.tokens[j].is_punct('('))
        {
            out.push(t.text.clone());
        }
    }
    out
}

/// Tags bound inside the body of local `fn helper(…)`.
fn helper_tags(ctx: &FileCtx<'_>, helper: &str) -> Vec<(String, usize)> {
    for (k, &i) in ctx.code.iter().enumerate() {
        if !ctx.tokens[i].is_ident("fn") {
            continue;
        }
        let Some(&name_i) = ctx.code.get(k + 1) else {
            continue;
        };
        if !ctx.tokens[name_i].is_ident(helper) {
            continue;
        }
        if let Some((_, body_open)) = fn_body_open(ctx, k) {
            let body_close = matching_delim(ctx.tokens, body_open);
            return direct_tags(ctx, body_open, body_close);
        }
    }
    Vec::new()
}
