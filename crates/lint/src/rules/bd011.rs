//! BD011 — interprocedural determinism taint.
//!
//! PR 9 hardened the journal-purity invariant at runtime: journaled
//! task values (`CampaignReport::journal_form`) and journal
//! fingerprints (`fingerprint_form`, `job_fingerprint`) scrub worker
//! counts and wall-clock so a resume on different hardware produces
//! byte-identical journals. This rule enforces the same invariant at
//! source level, across call chains: **no ambient-state source may be
//! reachable from a journal/fingerprint serialization function, and no
//! tainted value may be passed into one.**
//!
//! **Sinks** (non-test fns, outside `crates/lint`/`crates/bench`):
//! * `journal_form` / `fingerprint_form` — the scrubbing serializers;
//! * any fn whose name contains `fingerprint` (checkpoint's FNV-1a
//!   `fingerprint(driver, config)`, the server's `job_fingerprint`,
//!   shard fingerprint helpers);
//! * `append` / `write_header` defined in `crates/core/src/checkpoint.rs`
//!   (the journal writers themselves).
//!
//! Two checks, both over the function-level taint of [`crate::taint`]:
//!
//! 1. **Sink-body purity.** If a sink can *reach* a source-containing fn
//!    through any call chain, the sink is reported (anchored at the sink
//!    fn, witness chain in the notes). `journal_form` calling a helper
//!    that calls `Instant::now` is a violation even if today's code
//!    discards the value — purity means *unable to observe*.
//! 2. **Sink-argument purity.** At every resolved call into a sink, the
//!    argument token range must contain no ambient source and no call to
//!    a tainted fn. `w.append(stamped(SystemTime::now()))` is caught
//!    here. Tainted values smuggled through a local `let` are **not**
//!    caught — function-level taint has no local dataflow; that
//!    direction of false negative is documented in DESIGN.md §18.
//!
//! Name-based call resolution means a `Vec::append` in an unrelated
//! crate does *not* become a sink (the writer methods are scoped to
//! checkpoint.rs definitions), but any `.append(…)` that *resolves* to
//! the checkpoint writer (the trait-object approximation) is checked.

use super::WsRule;
use crate::diag::Finding;
use crate::taint::TaintMap;
use crate::Workspace;
use std::collections::BTreeSet;

use super::bd010::excluded_path;

/// See module docs.
pub struct DeterminismTaint;

/// Whether node `n` is a BD011 sink.
fn is_sink(ws: &Workspace, n: usize) -> bool {
    let d = ws.def(n);
    if d.is_test {
        return false;
    }
    let path = &ws.file_of(n).path;
    if excluded_path(path) {
        return false;
    }
    matches!(d.name.as_str(), "journal_form" | "fingerprint_form")
        || d.name.contains("fingerprint")
        || (path.ends_with("crates/core/src/checkpoint.rs")
            && matches!(d.name.as_str(), "append" | "write_header"))
}

impl WsRule for DeterminismTaint {
    fn code(&self) -> &'static str {
        "BD011"
    }

    fn name(&self) -> &'static str {
        "determinism-taint-into-journal-bytes"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let n = ws.symbols.fns.len();
        let admit = |node: usize| !ws.def(node).is_test && !excluded_path(&ws.file_of(node).path);
        let taint = TaintMap::analyze(&ws.files, &ws.symbols, &ws.graph, admit, admit);
        let sinks: Vec<usize> = (0..n).filter(|&x| is_sink(ws, x)).collect();
        if sinks.is_empty() {
            return Vec::new();
        }

        let mut out = Vec::new();
        let mut seen: BTreeSet<(String, u32, u32)> = BTreeSet::new();

        // Check 1: sink bodies must not reach ambient sources.
        for &s in &sinks {
            let d = ws.def(s);
            let file = ws.file_of(s);
            for kind in taint.kinds_of(s) {
                if !seen.insert((file.path.clone(), d.line, d.col)) {
                    continue;
                }
                let mut f = Finding::new(
                    self.code(),
                    file.path.clone(),
                    d.line,
                    d.col,
                    format!(
                        "journal/fingerprint fn `{}` can observe {} state through its \
                         call chain: journal bytes must be identical across machines, \
                         workers, and reruns",
                        d.name,
                        kind.label()
                    ),
                );
                f.notes = taint.witness(&ws.files, &ws.symbols, s, kind);
                out.push(f);
            }
        }

        // Check 2: arguments of calls *into* sinks must be ambient-free.
        let sink_set: BTreeSet<usize> = sinks.iter().copied().collect();
        for caller in (0..n).filter(|&x| admit(x)) {
            let d = ws.def(caller);
            let file = ws.file_of(caller);
            for e in &ws.graph.fwd[caller] {
                if !sink_set.contains(&e.callee) {
                    continue;
                }
                let Some((a, b)) = d.calls[e.site].args else {
                    continue;
                };
                let sink_name = ws.def(e.callee).name.clone();
                // Direct ambient sources inside the argument range.
                for src in d.sources.iter().filter(|s| (a..b).contains(&s.tok)) {
                    if !seen.insert((file.path.clone(), src.line, src.col)) {
                        continue;
                    }
                    out.push(Finding::new(
                        self.code(),
                        file.path.clone(),
                        src.line,
                        src.col,
                        format!(
                            "`{}` ({}) is passed into journal/fingerprint fn \
                             `{sink_name}`: journal bytes must be ambient-free",
                            src.what,
                            src.kind.label()
                        ),
                    ));
                }
                // Calls to tainted fns inside the argument range.
                for e2 in &ws.graph.fwd[caller] {
                    let inner = &d.calls[e2.site];
                    if !(a..b).contains(&inner.tok) {
                        continue;
                    }
                    for kind in taint.kinds_of(e2.callee) {
                        if !seen.insert((file.path.clone(), inner.line, inner.col)) {
                            continue;
                        }
                        let callee_name = &ws.def(e2.callee).name;
                        let mut f = Finding::new(
                            self.code(),
                            file.path.clone(),
                            inner.line,
                            inner.col,
                            format!(
                                "`{callee_name}` can observe {} state and its result is \
                                 passed into journal/fingerprint fn `{sink_name}`: \
                                 journal bytes must be ambient-free",
                                kind.label()
                            ),
                        );
                        f.notes = taint.witness(&ws.files, &ws.symbols, e2.callee, kind);
                        out.push(f);
                    }
                }
            }
        }
        out
    }
}
