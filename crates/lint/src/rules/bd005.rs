//! BD005 — no `unwrap`/`expect`/`panic!` in typed-error paths.
//!
//! PR 3 made the engine and checkpoint layers fully fallible: worker
//! panics, sink failures and journal corruption are typed
//! `EngineError`/`CheckpointError` values so a crashed campaign leaves a
//! resumable journal instead of a dead process. A stray `unwrap()` in
//! those paths reintroduces the abort-the-world failure mode. The rule
//! polices `crates/core/src/engine.rs`, `crates/core/src/checkpoint.rs`,
//! `crates/core/src/shard.rs` (the merge verifier turns every malformed
//! shard journal into a typed `ShardError`, never a panic),
//! every file under `crates/server/src/` (PR 8: a daemon request path
//! that panics kills a connection thread or — worse — the scheduler, so
//! the whole crate holds to the same discipline; poisoned locks are
//! recovered with `PoisonError::into_inner`, failures become HTTP error
//! responses), and the body of every `impl … EvalSink … for …` block
//! anywhere in the workspace. Test modules are exempt (tests *should*
//! unwrap).
//!
//! Escape hatch: a documented panicking API boundary (e.g. the infallible
//! `EvalEngine::run` convenience wrapper) carries
//! `// bdlfi-lint: allow(BD005) -- reason`.

use super::{matching_delim, FileCtx, Rule};
use crate::diag::Finding;

/// Files policed in their entirety (non-test regions).
const SCOPE_PATHS: [&str; 3] = [
    "crates/core/src/engine.rs",
    "crates/core/src/checkpoint.rs",
    "crates/core/src/shard.rs",
];

/// Directories whose every file is policed (the daemon's request paths).
const SCOPE_DIRS: [&str; 1] = ["crates/server/src/"];

/// See module docs.
pub struct PanicFreePaths;

impl Rule for PanicFreePaths {
    fn code(&self) -> &'static str {
        "BD005"
    }

    fn name(&self) -> &'static str {
        "typed-errors-in-engine-paths"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        let whole_file = SCOPE_PATHS.iter().any(|p| ctx.path.ends_with(p))
            || SCOPE_DIRS.iter().any(|d| ctx.path.contains(d));
        let scopes: Vec<(usize, usize)> = if whole_file {
            vec![(0, ctx.tokens.len())]
        } else {
            eval_sink_impl_bodies(ctx)
        };
        if scopes.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (k, &i) in ctx.code.iter().enumerate() {
            if ctx.in_test(i) || !scopes.iter().any(|&(a, b)| (a..b).contains(&i)) {
                continue;
            }
            let t = &ctx.tokens[i];
            let next_is = |text: char| {
                ctx.code
                    .get(k + 1)
                    .is_some_and(|&j| ctx.tokens[j].is_punct(text))
            };
            let prev_is_dot = k >= 1 && ctx.tokens[ctx.code[k - 1]].is_punct('.');
            let offender =
                if (t.is_ident("unwrap") || t.is_ident("expect")) && prev_is_dot && next_is('(') {
                    Some(format!(".{}()", t.text))
                } else if (t.is_ident("panic") || t.is_ident("unreachable") || t.is_ident("todo"))
                    && next_is('!')
                {
                    Some(format!("{}!", t.text))
                } else {
                    None
                };
            if let Some(what) = offender {
                out.push(ctx.finding(
                    self.code(),
                    i,
                    format!(
                        "`{what}` in a typed-error path (engine/checkpoint/EvalSink): \
                         return EngineError/CheckpointError so interrupted campaigns \
                         stay resumable"
                    ),
                ));
            }
        }
        out
    }
}

/// Token ranges of `impl … EvalSink … for … { … }` bodies.
fn eval_sink_impl_bodies(ctx: &FileCtx<'_>) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (k, &i) in ctx.code.iter().enumerate() {
        if !ctx.tokens[i].is_ident("impl") {
            continue;
        }
        // Scan the impl header up to its body `{`; require `EvalSink` and
        // `for` in the header.
        let mut saw_sink = false;
        let mut saw_for = false;
        for j in k + 1..ctx.code.len().min(k + 64) {
            let t = &ctx.tokens[ctx.code[j]];
            if t.is_punct('{') {
                if saw_sink && saw_for {
                    out.push((ctx.code[j], matching_delim(ctx.tokens, ctx.code[j])));
                }
                break;
            }
            saw_sink |= t.is_ident("EvalSink");
            saw_for |= t.is_ident("for");
        }
    }
    out
}
