//! BD009 — every shard-journal writer must bind a per-shard fingerprint
//! tag that embeds the shard's index and count.
//!
//! Shard journals are merged back into the whole-campaign journal by
//! strict fingerprint verification: shard `i` of `n` must carry
//! `fingerprint("shard", (base, n, i))` so that a journal from the wrong
//! index, a different shard count, or a different campaign is refused at
//! merge time rather than silently stitched in. Two failure modes are
//! flagged:
//!
//! * a function that calls the engine's `run_shard_checkpointed` without
//!   deriving its checkpoint fingerprint through a `*shard_fingerprint*`
//!   helper applied to its shard index — its journals would all carry
//!   the same (or an unrelated) fingerprint, and the merge verifier
//!   could not tell shards apart;
//! * a `*shard_fingerprint*` helper whose `fingerprint(…)` derivation
//!   does not mention both the shard `index` and the shard `count` —
//!   dropping either makes journals from different plans
//!   resume-compatible.

use super::{matching_delim, FileCtx, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;

/// See module docs.
pub struct ShardFingerprintDiscipline;

impl Rule for ShardFingerprintDiscipline {
    fn code(&self) -> &'static str {
        "BD009"
    }

    fn name(&self) -> &'static str {
        "shard-journal-fingerprints"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        for (k, &i) in ctx.code.iter().enumerate() {
            if !ctx.tokens[i].is_ident("fn") || ctx.in_test(i) {
                continue;
            }
            let Some(&name_i) = ctx.code.get(k + 1) else {
                continue;
            };
            let name_tok = &ctx.tokens[name_i];
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            let Some(body_open) = fn_body_open(ctx, k) else {
                continue;
            };
            let body_close = matching_delim(ctx.tokens, body_open);
            let body: Vec<usize> = ctx
                .code
                .iter()
                .copied()
                .filter(|&t| t > body_open && t < body_close)
                .collect();

            if name_tok.text.contains("shard_fingerprint")
                && !derivation_mentions_index_and_count(ctx, &body)
            {
                out.push(ctx.finding(
                    self.code(),
                    name_i,
                    format!(
                        "`{}` derives a shard fingerprint without embedding both the \
                         shard index and the shard count in the fingerprint(…) call: \
                         journals from different shards or plans would become \
                         resume-compatible and the merge verifier could not refuse them",
                        name_tok.text
                    ),
                ));
            }

            if calls_ident(ctx, &body, "run_shard_checkpointed") && !binds_per_shard_tag(ctx, &body)
            {
                out.push(ctx.finding(
                    self.code(),
                    name_i,
                    format!(
                        "`{}` writes a shard journal (run_shard_checkpointed) without \
                         deriving its checkpoint fingerprint via a shard_fingerprint \
                         helper applied to the shard index; every shard journal must \
                         carry a tag embedding its index and count so the merge \
                         verifier can tell shards apart",
                        name_tok.text
                    ),
                ));
            }
        }
        out
    }
}

/// For the `fn` at code index `k`, the tokens index of the body `{`.
/// `None` for body-less declarations (trait methods).
fn fn_body_open(ctx: &FileCtx<'_>, k: usize) -> Option<usize> {
    for j in k + 1..ctx.code.len() {
        let t = &ctx.tokens[ctx.code[j]];
        if t.is_punct('{') {
            return Some(ctx.code[j]);
        }
        if t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Whether the body calls `name(` (directly or as a method).
fn calls_ident(ctx: &FileCtx<'_>, body: &[usize], name: &str) -> bool {
    body.iter().enumerate().any(|(k, &i)| {
        ctx.tokens[i].is_ident(name)
            && body
                .get(k + 1)
                .is_some_and(|&j| ctx.tokens[j].is_punct('('))
    })
}

/// Whether the body calls a `*shard_fingerprint*` helper whose argument
/// list mentions an identifier containing `index`.
fn binds_per_shard_tag(ctx: &FileCtx<'_>, body: &[usize]) -> bool {
    for (k, &i) in body.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident || !t.text.contains("shard_fingerprint") {
            continue;
        }
        let Some(&paren) = body.get(k + 1) else {
            continue;
        };
        if !ctx.tokens[paren].is_punct('(') {
            continue;
        }
        let close = matching_delim(ctx.tokens, paren);
        let has_index = body
            .iter()
            .copied()
            .filter(|&j| j > paren && j < close)
            .any(|j| {
                let a = &ctx.tokens[j];
                a.kind == TokenKind::Ident && a.text.contains("index")
            });
        if has_index {
            return true;
        }
    }
    false
}

/// Whether some `fingerprint(…)` call in the body mentions identifiers
/// containing both `index` and `count` among its arguments.
fn derivation_mentions_index_and_count(ctx: &FileCtx<'_>, body: &[usize]) -> bool {
    for (k, &i) in body.iter().enumerate() {
        if !ctx.tokens[i].is_ident("fingerprint") {
            continue;
        }
        let Some(&paren) = body.get(k + 1) else {
            continue;
        };
        if !ctx.tokens[paren].is_punct('(') {
            continue;
        }
        let close = matching_delim(ctx.tokens, paren);
        let args: Vec<&str> = body
            .iter()
            .copied()
            .filter(|&j| j > paren && j < close)
            .filter(|&j| ctx.tokens[j].kind == TokenKind::Ident)
            .map(|j| ctx.tokens[j].text.as_str())
            .collect();
        if args.iter().any(|a| a.contains("index")) && args.iter().any(|a| a.contains("count")) {
            return true;
        }
    }
    false
}
