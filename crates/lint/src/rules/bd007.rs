//! BD007 — the sparse-delta fast path must never silently go
//! approximate.
//!
//! `forward_delta_*` routines are bit-exactness-critical: campaigns trust
//! them to either produce logits bit-identical to a dense re-inference or
//! to *refuse* (return `None`) so the caller falls back to the exact
//! incremental path. Two ways that contract can rot are flagged:
//!
//! * a production `forward_delta*` function whose signature cannot refuse
//!   — no `Option` in its return type means every input is claimed
//!   exact, including the saturation/conv/requant cases the delta
//!   algebra cannot handle;
//! * a production caller of a `forward_delta*` function whose body never
//!   references an exact fallback (`predict_from` / `forward_from`) —
//!   when the delta path refuses, such a caller has nothing sound to
//!   fall back to and will either panic or ship a partial result.
//!
//! `forward_delta*` functions themselves are exempt from the second
//! check: a wrapper that delegates to another delta routine propagates
//! `None` to *its* caller, which is where the fallback belongs.

use super::{matching_delim, FileCtx, Rule};
use crate::diag::Finding;
use crate::lexer::TokenKind;

/// See module docs.
pub struct ExactDeltaFallback;

impl Rule for ExactDeltaFallback {
    fn code(&self) -> &'static str {
        "BD007"
    }

    fn name(&self) -> &'static str {
        "delta-exact-fallback-guard"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        for (k, &i) in ctx.code.iter().enumerate() {
            if !ctx.tokens[i].is_ident("fn") || ctx.in_test(i) {
                continue;
            }
            let Some(&name_i) = ctx.code.get(k + 1) else {
                continue;
            };
            let name_tok = &ctx.tokens[name_i];
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            let is_delta_fn = name_tok.text.starts_with("forward_delta");
            if is_delta_fn && !signature_returns_option(ctx, k) {
                out.push(ctx.finding(
                    self.code(),
                    name_i,
                    format!(
                        "`{}` cannot refuse: a delta-path routine must return \
                         Option<…> so saturation, conv fan-out, and requant \
                         cases fall back to the exact dense path instead of \
                         shipping approximate logits",
                        name_tok.text
                    ),
                ));
            }
            if is_delta_fn {
                continue;
            }
            let Some((_, body_open)) = fn_body_open(ctx, k) else {
                continue;
            };
            let body_close = matching_delim(ctx.tokens, body_open);
            let body: Vec<usize> = ctx
                .code
                .iter()
                .copied()
                .filter(|&t| t > body_open && t < body_close)
                .collect();
            let Some(call_i) = first_delta_call(ctx, &body) else {
                continue;
            };
            let guarded = body.iter().any(|&t| {
                ctx.tokens[t].is_ident("predict_from") || ctx.tokens[t].is_ident("forward_from")
            });
            if !guarded {
                out.push(ctx.finding(
                    self.code(),
                    call_i,
                    format!(
                        "`{}` calls `{}` but never references an exact fallback \
                         (predict_from / forward_from): when the delta path \
                         refuses, this caller has no bit-exact route to the \
                         logits",
                        name_tok.text, ctx.tokens[call_i].text
                    ),
                ));
            }
        }
        out
    }
}

/// Whether the `fn` starting at code index `k` declares `-> … Option … `
/// before its body `{` (or `;` for body-less declarations).
fn signature_returns_option(ctx: &FileCtx<'_>, k: usize) -> bool {
    let mut seen_arrow = false;
    for j in k + 2..ctx.code.len() {
        let t = &ctx.tokens[ctx.code[j]];
        if t.is_punct('{') || t.is_punct(';') {
            return false;
        }
        if !seen_arrow {
            seen_arrow = t.is_punct('-')
                && ctx
                    .code
                    .get(j + 1)
                    .is_some_and(|&n| ctx.tokens[n].is_punct('>'));
            continue;
        }
        if t.is_ident("Option") {
            return true;
        }
    }
    false
}

/// First `forward_delta*(…)` call site among the body's code-token
/// indices, excluding nested `fn forward_delta*` definitions.
fn first_delta_call(ctx: &FileCtx<'_>, body: &[usize]) -> Option<usize> {
    for (k, &i) in body.iter().enumerate() {
        let t = &ctx.tokens[i];
        if t.kind != TokenKind::Ident || !t.text.starts_with("forward_delta") {
            continue;
        }
        let called = body
            .get(k + 1)
            .is_some_and(|&n| ctx.tokens[n].is_punct('('));
        let defined = k > 0 && ctx.tokens[body[k - 1]].is_ident("fn");
        if called && !defined {
            return Some(i);
        }
    }
    None
}

/// For the `fn` at code index `k`, returns `(code index of the body `{`,
/// tokens index of the body `{`)`. Returns `None` for body-less
/// declarations (trait methods).
fn fn_body_open(ctx: &FileCtx<'_>, k: usize) -> Option<(usize, usize)> {
    for j in k + 1..ctx.code.len() {
        let t = &ctx.tokens[ctx.code[j]];
        if t.is_punct('{') {
            return Some((j, ctx.code[j]));
        }
        if t.is_punct(';') {
            return None;
        }
    }
    None
}
