//! BD003 — no iteration over `HashMap`/`HashSet` in serialization-adjacent
//! code.
//!
//! `std::collections::HashMap` iteration order is randomized per process
//! (SipHash keys from ambient entropy). Any hash-map iteration that feeds
//! a report, a sink, a checkpoint journal, or a hand-written serde impl
//! therefore leaks nondeterministic ordering into serialized bytes — the
//! exact class of bug that breaks byte-compare resume tests. Keyed
//! *lookups* are fine; only iteration is flagged. The fix is `BTreeMap`,
//! or collecting into a `Vec` and sorting by an explicit key.
//!
//! Scope: a file participates if it names `EvalSink`, hand-written serde
//! (`Serialize` / `Deserialize` / `to_json_value` / `serde_json`), or is
//! one of the serialization modules (`report.rs`, `checkpoint.rs`,
//! `serialize.rs`). Within in-scope files, the rule tracks identifiers
//! declared with a hash-map/set type (let bindings, struct fields, fn
//! params) and flags `for … in` loops over them and calls to ordering-
//! sensitive iteration methods on them. Test regions are exempt.

use super::{FileCtx, Rule};
use crate::diag::Finding;

/// Methods whose results depend on hash-iteration order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
];

/// File names that are serialization modules regardless of content.
const SCOPE_FILES: [&str; 3] = ["report.rs", "checkpoint.rs", "serialize.rs"];

/// Identifiers whose presence marks a file as serialization-adjacent.
const SCOPE_MARKERS: [&str; 5] = [
    "EvalSink",
    "Serialize",
    "Deserialize",
    "to_json_value",
    "serde_json",
];

/// See module docs.
pub struct UnorderedIteration;

impl Rule for UnorderedIteration {
    fn code(&self) -> &'static str {
        "BD003"
    }

    fn name(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        if !in_scope(ctx) {
            return Vec::new();
        }
        let hashed = hash_typed_names(ctx);
        if hashed.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (k, &i) in ctx.code.iter().enumerate() {
            if ctx.in_test(i) {
                continue;
            }
            let t = &ctx.tokens[i];
            // `name.iter()` / `self.name.keys()` …
            if ITER_METHODS.contains(&t.text.as_str())
                && t.kind == crate::lexer::TokenKind::Ident
                && k >= 2
                && ctx.tokens[ctx.code[k - 1]].is_punct('.')
                && ctx
                    .code
                    .get(k + 1)
                    .is_some_and(|&j| ctx.tokens[j].is_punct('('))
            {
                let recv = &ctx.tokens[ctx.code[k - 2]];
                if hashed.iter().any(|n| recv.is_ident(n)) {
                    out.push(ctx.finding(self.code(), i, message(&recv.text, &t.text)));
                }
            }
            // `for pat in [&mut] [self.]name {`
            if t.is_ident("for") {
                if let Some((j, name)) = for_loop_over(ctx, k) {
                    if hashed.iter().any(|n| n == &name) {
                        out.push(ctx.finding(self.code(), j, message(&name, "for-in")));
                    }
                }
            }
        }
        out
    }
}

fn message(name: &str, how: &str) -> String {
    format!(
        "iteration (`{how}`) over unordered hash collection `{name}` in a \
         serialization-adjacent path: hash order leaks into reports/journals; \
         use BTreeMap or sort explicitly before emitting"
    )
}

fn in_scope(ctx: &FileCtx<'_>) -> bool {
    let file_name = ctx.path.rsplit('/').next().unwrap_or(ctx.path);
    if SCOPE_FILES.contains(&file_name) {
        return true;
    }
    ctx.code.iter().any(|&i| {
        let t = &ctx.tokens[i];
        SCOPE_MARKERS.iter().any(|m| t.is_ident(m))
    })
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type anywhere
/// in the file: `let [mut] NAME : …Hash… =`, `let [mut] NAME = HashMap::…`,
/// struct fields and fn params `NAME : …Hash… [,;)}]`.
fn hash_typed_names(ctx: &FileCtx<'_>) -> Vec<String> {
    let tok = |k: usize| ctx.code.get(k).map(|&i| &ctx.tokens[i]);
    let mut names = Vec::new();
    for k in 0..ctx.code.len() {
        let Some(t) = tok(k) else { break };
        if t.kind != crate::lexer::TokenKind::Ident || is_keyword(&t.text) {
            continue;
        }
        let name = t.text.clone();
        match tok(k + 1) {
            // `NAME : <type tokens>` — scan the annotation for Hash types.
            Some(colon)
                if colon.is_punct(':')
                    && tok(k + 2).is_some_and(|n| !n.is_punct(':')) // not a `::` path
                    && !tok(k.wrapping_sub(1)).is_some_and(|p| p.is_punct(':')) =>
            {
                let mut depth = 0i32;
                for j in k + 2..ctx.code.len() {
                    let u = tok(j).expect("in bounds");
                    match u.text.as_str() {
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "=" | ";" | "," | "{" | "}" if depth == 0 => break,
                        _ => {}
                    }
                    if u.is_ident("HashMap") || u.is_ident("HashSet") {
                        names.push(name.clone());
                        break;
                    }
                    // Annotations are short; bail out of runaway scans.
                    if j > k + 24 {
                        break;
                    }
                }
            }
            // `NAME = [std::collections::]Hash{Map,Set}::…`
            Some(eq) if eq.is_punct('=') => {
                for j in k + 2..(k + 8).min(ctx.code.len()) {
                    let u = tok(j).expect("in bounds");
                    if u.is_ident("HashMap") || u.is_ident("HashSet") {
                        names.push(name.clone());
                        break;
                    }
                    if !(u.is_punct(':') || u.is_ident("std") || u.is_ident("collections")) {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    names.sort();
    names.dedup();
    names
}

/// If code index `k` is a `for` keyword, returns the token index and name
/// of the iterated identifier when the iterated expression is exactly
/// `[&[mut]] [self.]NAME`.
fn for_loop_over(ctx: &FileCtx<'_>, k: usize) -> Option<(usize, String)> {
    // Find `in` at depth 0 (patterns may contain tuples/parens).
    let mut depth = 0i32;
    let mut in_k = None;
    for j in k + 1..ctx.code.len().min(k + 32) {
        let t = &ctx.tokens[ctx.code[j]];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && t.kind == crate::lexer::TokenKind::Ident => {
                in_k = Some(j);
                break;
            }
            "{" => return None,
            _ => {}
        }
    }
    let in_k = in_k?;
    // Expression tokens until the loop body `{`.
    let mut expr: Vec<usize> = Vec::new();
    for j in in_k + 1..ctx.code.len() {
        let t = &ctx.tokens[ctx.code[j]];
        if t.is_punct('{') {
            break;
        }
        expr.push(ctx.code[j]);
        if expr.len() > 6 {
            return None; // complex expression — not a bare name
        }
    }
    // Strip leading `&` / `mut`, then accept `NAME` or `self . NAME`.
    let toks: Vec<&crate::lexer::Token> = expr.iter().map(|&i| &ctx.tokens[i]).collect();
    let mut s = 0usize;
    while s < toks.len() && (toks[s].is_punct('&') || toks[s].is_ident("mut")) {
        s += 1;
    }
    let rest = &toks[s..];
    match rest {
        [name] if name.kind == crate::lexer::TokenKind::Ident => Some((expr[s], name.text.clone())),
        [this, dot, name]
            if this.is_ident("self")
                && dot.is_punct('.')
                && name.kind == crate::lexer::TokenKind::Ident =>
        {
            Some((expr[s + 2], name.text.clone()))
        }
        _ => None,
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "fn"
            | "pub"
            | "if"
            | "else"
            | "match"
            | "return"
            | "for"
            | "while"
            | "in"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "use"
            | "mod"
            | "where"
            | "ref"
    )
}
