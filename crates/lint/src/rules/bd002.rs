//! BD002 — no additive seed derivation feeding an RNG constructor.
//!
//! `StdRng::seed_from_u64(seed + i)` was the exact bug class PR 2
//! eradicated: consecutive integers are *correlated* SplitMix64 inputs,
//! and overlapping `seed + i` ranges across drivers silently alias RNG
//! streams between tasks. The sanctioned derivation is
//! `seed_stream(seed, lane)`, whose output lanes are provably disjoint.
//!
//! The rule flags a top-level additive operator (`+`) in:
//!
//! * any argument of `seed_from_u64(…)`;
//! * the *first* argument (the root seed) of `seed_stream(…)` and of
//!   `EvalEngine::new(…)` / `EvalEngine::with_workers(…)`.
//!
//! "Top level" means directly inside the call's parentheses — a `+`
//! nested in an inner call (`seed_from_u64(seed_stream(seed, 2 * r + 1))`)
//! is lane arithmetic and stays legal.

use super::{matching_delim, FileCtx, Rule};
use crate::diag::Finding;

/// See module docs.
pub struct AdditiveSeeds;

impl Rule for AdditiveSeeds {
    fn code(&self) -> &'static str {
        "BD002"
    }

    fn name(&self) -> &'static str {
        "no-additive-seeds"
    }

    fn check(&mut self, ctx: &FileCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        for (k, &i) in ctx.code.iter().enumerate() {
            let t = &ctx.tokens[i];
            let guarded = if t.is_ident("seed_from_u64") {
                Some(false) // every argument is seed material
            } else if t.is_ident("seed_stream")
                || ((t.is_ident("new") || t.is_ident("with_workers"))
                    && is_path_of(ctx, k, "EvalEngine"))
            {
                Some(true) // only the root seed (first argument)
            } else {
                None
            };
            let Some(first_arg_only) = guarded else {
                continue;
            };
            let Some(&open) = ctx.code.get(k + 1) else {
                continue;
            };
            if !ctx.tokens[open].is_punct('(') {
                continue;
            }
            let close = matching_delim(ctx.tokens, open);
            if let Some(plus) = additive_at_top_level(ctx, open, close, first_arg_only) {
                out.push(ctx.finding(
                    self.code(),
                    plus,
                    format!(
                        "additive seed derivation feeding `{}`: `seed + i` aliases \
                         RNG streams; derive per-task seeds with \
                         bdlfi_bayes::seed_stream(seed, lane) instead",
                        callee_label(ctx, k)
                    ),
                ));
            }
        }
        out
    }
}

/// Whether the ident at code index `k` is preceded by `Qualifier::` with
/// the given qualifier (e.g. `EvalEngine :: new`).
fn is_path_of(ctx: &FileCtx<'_>, k: usize, qualifier: &str) -> bool {
    k >= 3
        && ctx.tokens[ctx.code[k - 1]].is_punct(':')
        && ctx.tokens[ctx.code[k - 2]].is_punct(':')
        && ctx.tokens[ctx.code[k - 3]].is_ident(qualifier)
}

/// Finds a `+` token at nesting depth 1 between `open` and `close`
/// (tokens indices). With `first_arg_only`, stops at the first depth-1
/// comma. Returns the token index of the offending `+`.
fn additive_at_top_level(
    ctx: &FileCtx<'_>,
    open: usize,
    close: usize,
    first_arg_only: bool,
) -> Option<usize> {
    let mut depth = 0i32;
    for &i in ctx.code.iter().filter(|&&i| i >= open && i <= close) {
        let t = &ctx.tokens[i];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 1 && first_arg_only => return None,
            "+" if depth == 1 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Reconstructs a short label for the guarded callee at code index `k`.
fn callee_label(ctx: &FileCtx<'_>, k: usize) -> String {
    let name = &ctx.tokens[ctx.code[k]].text;
    if is_path_of(ctx, k, "EvalEngine") {
        format!("EvalEngine::{name}")
    } else {
        name.clone()
    }
}
