//! CLI entry point:
//!
//! * `bdlfi-lint check [PATH] [--format text|json|github]` — lint every
//!   `.rs` file under PATH (default `.`). Exit codes: `0` clean, `1`
//!   findings reported, `2` usage or I/O error.
//! * `bdlfi-lint explain BDxxx` (or `--explain BDxxx`) — print a rule's
//!   rationale, scope, and the good/bad fixture pair backing it.

use bdlfi_lint::output::{render, Format};
use bdlfi_lint::{explain, lint_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bdlfi-lint check [PATH] [--format text|json|github]\n       \
bdlfi-lint explain BDxxx\n\n\
    check    lints every .rs file under PATH (default: current directory)\n\
             against the BDLFI determinism-discipline rules BD001..BD012.\n\
             --format json emits a SARIF-style document; --format github\n\
             emits ::error workflow commands for PR annotations.\n\
    explain  prints a rule's rationale, scope, and a minimal good/bad\n\
             example pair sourced from the linter's own fixtures.\n\n\
    Waive a finding inline with `// bdlfi-lint: allow(BDxxx) -- reason`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "check" => run_check(rest),
        Some((cmd, rest)) if (cmd == "explain" || cmd == "--explain") && rest.len() == 1 => {
            run_explain(&rest[0])
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(rest: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--format" {
            let Some(f) = it.next().map(String::as_str).and_then(Format::parse) else {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            };
            format = f;
        } else if root.is_none() && !arg.starts_with('-') {
            root = Some(PathBuf::from(arg));
        } else {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bdlfi-lint: error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", render(&findings, format));
    if findings.is_empty() {
        if format == Format::Text {
            println!("bdlfi-lint: clean");
        }
        ExitCode::SUCCESS
    } else {
        if format == Format::Text {
            println!(
                "bdlfi-lint: {} finding{}",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
        ExitCode::from(1)
    }
}

fn run_explain(code: &str) -> ExitCode {
    if code.eq_ignore_ascii_case("BD005") {
        println!("{}", explain::BD005_RETIRED);
        return ExitCode::SUCCESS;
    }
    match explain::lookup(code) {
        Some(e) => {
            println!("{}", explain::render(e));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "bdlfi-lint: unknown rule `{code}`; known rules: {}",
                explain::ALL
                    .iter()
                    .map(|e| e.code)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            ExitCode::from(2)
        }
    }
}
