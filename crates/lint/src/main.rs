//! CLI entry point: `bdlfi-lint check [PATH]`.
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bdlfi-lint check [PATH]\n\n\
    Lints every .rs file under PATH (default: current directory) against\n\
    the BDLFI determinism-discipline rules BD001..BD006. Waive a finding\n\
    inline with `// bdlfi-lint: allow(BDxxx) -- reason`.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.split_first() {
        Some((cmd, rest)) if cmd == "check" && rest.len() <= 1 => {
            PathBuf::from(rest.first().map_or(".", String::as_str))
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let findings = match bdlfi_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bdlfi-lint: error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{}", f.render());
    }
    if findings.is_empty() {
        println!("bdlfi-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "bdlfi-lint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        ExitCode::from(1)
    }
}
