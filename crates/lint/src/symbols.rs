//! The workspace symbol table: every function item from every parsed
//! file, flattened into one indexed node list with name-based lookup
//! maps. The call-graph builder resolves call sites against these maps;
//! the resolution policy itself (what a method call may bind to, when a
//! qualified call falls back to free functions) lives in
//! [`crate::callgraph`].

use crate::ast::FnDef;
use crate::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};

/// A function node: indices into `files` and that file's `ast.fns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    /// Index into the workspace's file list.
    pub file: usize,
    /// Index into that file's `ast.fns`.
    pub idx: usize,
}

/// Flat, indexed view of every function in the workspace.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All function nodes, in (file, definition) order. Node ids used by
    /// the call graph are indices into this vector.
    pub fns: Vec<FnRef>,
    /// name → node ids (all fns of that name, free and associated).
    by_name: BTreeMap<String, Vec<usize>>,
    /// name → node ids of fns taking `self` (method-call resolution).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// (qual, name) → node ids; qual is the impl type or trait name.
    by_qual: BTreeMap<(String, String), Vec<usize>>,
    /// name → node ids of true free fns (no enclosing impl/trait).
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// Every impl-type and trait name known to the workspace. A
    /// qualified call whose qualifier is *not* in this set is treated as
    /// a module path or an external (std/vendor) type.
    quals: BTreeSet<String>,
}

impl SymbolTable {
    /// Builds the table over all parsed files.
    #[must_use]
    pub fn build(files: &[ParsedFile]) -> Self {
        let mut t = SymbolTable::default();
        for (file, pf) in files.iter().enumerate() {
            for (idx, f) in pf.ast.fns.iter().enumerate() {
                let node = t.fns.len();
                t.fns.push(FnRef { file, idx });
                t.by_name.entry(f.name.clone()).or_default().push(node);
                if f.is_method {
                    t.methods_by_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(node);
                }
                if let Some(q) = &f.qual {
                    t.by_qual
                        .entry((q.clone(), f.name.clone()))
                        .or_default()
                        .push(node);
                    t.quals.insert(q.clone());
                } else {
                    t.free_by_name.entry(f.name.clone()).or_default().push(node);
                }
                if let Some(tr) = &f.trait_name {
                    t.by_qual
                        .entry((tr.clone(), f.name.clone()))
                        .or_default()
                        .push(node);
                    t.quals.insert(tr.clone());
                }
            }
        }
        t
    }

    /// All fns named `name`.
    #[must_use]
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// All `self`-taking fns named `name`.
    #[must_use]
    pub fn methods_named(&self, name: &str) -> &[usize] {
        self.methods_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// All fns `Qual::name` where `Qual` is an impl type or trait.
    #[must_use]
    pub fn qualified(&self, qual: &str, name: &str) -> &[usize] {
        self.by_qual
            .get(&(qual.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// All module-level free fns named `name`.
    #[must_use]
    pub fn free_named(&self, name: &str) -> &[usize] {
        self.free_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Whether `qual` names a workspace impl type or trait.
    #[must_use]
    pub fn knows_qual(&self, qual: &str) -> bool {
        self.quals.contains(qual)
    }

    /// The [`FnDef`] behind a node id.
    #[must_use]
    pub fn def<'a>(&self, files: &'a [ParsedFile], node: usize) -> &'a FnDef {
        let r = self.fns[node];
        &files[r.file].ast.fns[r.idx]
    }
}
