//! Fixture-driven acceptance tests for every rule: each `*_bad.rs` fixture
//! trips exactly its rule (no more, no less), each `*_good.rs` fixture is
//! clean, the allow escape hatch behaves, and — the acceptance criterion
//! the CI job enforces from the outside — the workspace itself lints
//! clean.
//!
//! Fixtures live in `crates/lint/fixtures/` (which the workspace walker
//! deliberately skips) and are linted under *virtual* workspace-relative
//! paths, because rule scoping is path-sensitive: BD001's bench exemption
//! and BD010's engine/checkpoint scope both key off the path a file is
//! presented under. The interprocedural rules (BD010–BD012) additionally
//! have *fixture trees* — miniature multi-crate workspaces under
//! `fixtures/bd01x_{good,bad}/` — linted whole via [`lint_workspace`],
//! with the expected finding set asserted exactly.

use bdlfi_lint::{lint_source, lint_workspace, Finding};
use std::path::{Path, PathBuf};

/// Lints a fixture *tree* (a miniature workspace rooted at
/// `fixtures/<name>/`) through the same entry point CI uses.
fn lint_tree(name: &str) -> Vec<Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    lint_workspace(&root).unwrap_or_else(|e| panic!("fixture tree {name} unreadable: {e}"))
}

/// `(code, path, line)` triples, in the analyzer's sorted order.
fn summarize(findings: &[Finding]) -> Vec<(&str, &str, u32)> {
    findings
        .iter()
        .map(|f| (f.code, f.path.as_str(), f.line))
        .collect()
}

/// Asserts a fixture tree lints completely clean.
fn assert_tree_clean(name: &str) {
    let findings = lint_tree(name);
    assert!(
        findings.is_empty(),
        "{name}: expected clean tree, got:\n{}",
        findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Reads a fixture from `crates/lint/fixtures/`.
fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Lints a fixture under a virtual path and asserts every finding carries
/// `code` (and that there is at least one).
fn assert_trips(name: &str, virtual_path: &str, code: &str) -> Vec<Finding> {
    let findings = lint_source(virtual_path, &fixture(name));
    assert!(
        !findings.is_empty(),
        "{name} under {virtual_path}: expected {code} findings, got none"
    );
    for f in &findings {
        assert_eq!(
            f.code,
            code,
            "{name} under {virtual_path}: expected only {code}, got {}",
            f.render()
        );
    }
    findings
}

/// Lints a fixture under a virtual path and asserts it is clean.
fn assert_clean(name: &str, virtual_path: &str) {
    let findings = lint_source(virtual_path, &fixture(name));
    assert!(
        findings.is_empty(),
        "{name} under {virtual_path}: expected clean, got:\n{}",
        findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---- BD001: entropy sources ------------------------------------------

#[test]
fn bd001_bad_trips_only_bd001() {
    let f = assert_trips("bd001_bad.rs", "crates/core/src/campaign.rs", "BD001");
    assert!(f[0].render().contains("thread_rng"));
}

#[test]
fn bd001_good_is_clean() {
    assert_clean("bd001_good.rs", "crates/core/src/campaign.rs");
}

#[test]
fn bd001_bad_is_legal_inside_bench() {
    // The same entropy-reading source is sanctioned in crates/bench —
    // wall-clock noise is the point of a benchmark harness.
    assert_clean("bd001_bad.rs", "crates/bench/src/harness.rs");
}

// ---- BD002: additive seeds -------------------------------------------

#[test]
fn bd002_bad_trips_only_bd002() {
    assert_trips("bd002_bad.rs", "crates/core/src/campaign.rs", "BD002");
}

#[test]
fn bd002_good_lane_arithmetic_is_clean() {
    assert_clean("bd002_good.rs", "crates/core/src/campaign.rs");
}

// ---- BD003: hash-order iteration -------------------------------------

#[test]
fn bd003_bad_trips_only_bd003() {
    let f = assert_trips("bd003_bad.rs", "crates/core/src/report.rs", "BD003");
    assert!(f[0].render().contains("hits"));
}

#[test]
fn bd003_good_btreemap_and_keyed_lookups_are_clean() {
    assert_clean("bd003_good.rs", "crates/core/src/report.rs");
}

// ---- BD004: SAFETY comments ------------------------------------------

#[test]
fn bd004_bad_trips_only_bd004() {
    assert_trips("bd004_bad.rs", "crates/tensor/src/ops/simd.rs", "BD004");
}

#[test]
fn bd004_good_multiline_safety_block_is_clean() {
    assert_clean("bd004_good.rs", "crates/tensor/src/ops/simd.rs");
}

// ---- BD010: panic reachability (fixture trees) ------------------------

#[test]
fn bd010_bad_tree_reports_exact_panic_sites() {
    let f = lint_tree("bd010_bad");
    assert_eq!(
        summarize(&f),
        vec![
            // Direct unwrap in a root fn (the BD005-equivalent shape).
            ("BD010", "crates/core/src/engine.rs", 6),
            // Direct slice index in a root fn.
            ("BD010", "crates/core/src/engine.rs", 11),
            // The cross-crate panic, anchored at its own site.
            ("BD010", "crates/nn/src/prep.rs", 10),
        ],
        "got:\n{}",
        f.iter().map(Finding::render).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn bd010_cross_crate_finding_carries_the_witness_chain() {
    let f = lint_tree("bd010_bad");
    let cross = f
        .iter()
        .find(|x| x.path.ends_with("prep.rs"))
        .expect("cross-crate finding present");
    assert!(
        cross.notes.iter().any(|n| n.contains("run_batch")),
        "chain must start at the engine entry point: {:?}",
        cross.notes
    );
    assert!(
        cross.notes.iter().any(|n| n.contains("scale_one")),
        "chain must pass through the intermediate helper: {:?}",
        cross.notes
    );
}

#[test]
fn bd010_good_tree_typed_errors_waiver_and_test_unwraps_are_clean() {
    assert_tree_clean("bd010_good");
}

#[test]
fn bd010_scope_is_path_sensitive() {
    // The same panicking sources are legal outside the policed
    // engine/checkpoint/shard/serve paths: presented under a
    // non-entry-point path, the bad engine file lints clean.
    assert_clean(
        "bd010_bad/crates/core/src/engine.rs",
        "crates/nn/src/train.rs",
    );
}

#[test]
fn bd010_polices_every_server_source_file() {
    // PR 8: the daemon's request paths hold to the same no-panic
    // discipline — the whole of crates/server/src/ is in scope, whatever
    // the file is called.
    assert_trips(
        "bd010_bad/crates/core/src/engine.rs",
        "crates/server/src/daemon.rs",
        "BD010",
    );
    assert_trips(
        "bd010_bad/crates/core/src/engine.rs",
        "crates/server/src/http.rs",
        "BD010",
    );
}

// ---- BD011: determinism taint (fixture trees) --------------------------

#[test]
fn bd011_bad_tree_reports_body_and_argument_taint() {
    let f = lint_tree("bd011_bad");
    assert_eq!(
        summarize(&f),
        vec![
            // Check 1: journal_form reaches Instant::now via util.rs.
            ("BD011", "crates/core/src/report.rs", 6),
            // Check 2: tainted helper's result passed into the sink.
            ("BD011", "crates/server/src/jobs.rs", 6),
            // Check 2: ambient source read directly in the argument list.
            ("BD011", "crates/server/src/jobs.rs", 10),
        ],
        "got:\n{}",
        f.iter().map(Finding::render).collect::<Vec<_>>().join("\n")
    );
    let body = &f[0];
    assert!(
        body.notes.iter().any(|n| n.contains("current_elapsed")),
        "check-1 finding must name the tainted helper: {:?}",
        body.notes
    );
}

#[test]
fn bd011_good_tree_scrubbed_journals_are_clean() {
    // util.rs still reads Instant::now in the good tree — taint that
    // never reaches journal or fingerprint bytes is not a violation.
    assert_tree_clean("bd011_good");
}

// ---- BD012: cross-file target_feature dispatch (fixture trees) ---------

#[test]
fn bd012_bad_tree_reports_the_distant_dispatch_site() {
    let f = lint_tree("bd012_bad");
    assert_eq!(
        summarize(&f),
        vec![("BD012", "crates/core/src/fastpath.rs", 10)],
        "got:\n{}",
        f.iter().map(Finding::render).collect::<Vec<_>>().join("\n")
    );
    // BD008 is satisfied at that site (guard + SAFETY) — the finding is
    // purely the cross-file front-door violation, and it names the kernel.
    assert!(
        f[0].notes.iter().any(|n| n.contains("gemm_avx2")),
        "finding must name the kernel: {:?}",
        f[0].notes
    );
}

#[test]
fn bd012_good_tree_front_door_dispatch_is_clean() {
    assert_tree_clean("bd012_good");
}

// ---- BD006: distinct fingerprints ------------------------------------

#[test]
fn bd006_bad_missing_tag_trips_only_bd006() {
    let f = assert_trips("bd006_bad.rs", "crates/core/src/study.rs", "BD006");
    assert!(f[0].render().contains("run_study_controlled"));
}

#[test]
fn bd006_dup_bad_shared_tag_trips_only_bd006() {
    let f = assert_trips("bd006_dup_bad.rs", "crates/core/src/study.rs", "BD006");
    assert!(
        f.iter().all(|x| x.render().contains("\"study\"")),
        "findings should name the shared tag: {f:?}"
    );
}

#[test]
fn bd006_good_distinct_tags_and_helper_resolution_are_clean() {
    assert_clean("bd006_good.rs", "crates/core/src/study.rs");
}

// ---- BD007: delta exact-fallback guard --------------------------------

#[test]
fn bd007_bad_trips_only_bd007() {
    let f = assert_trips("bd007_bad.rs", "crates/core/src/delta.rs", "BD007");
    assert_eq!(f.len(), 2, "one per failure mode: {f:?}");
    assert!(f[0].render().contains("forward_delta_blocks"));
    assert!(f[1].render().contains("eval_sparse"));
}

#[test]
fn bd007_good_is_clean() {
    assert_clean("bd007_good.rs", "crates/core/src/delta.rs");
}

#[test]
fn bd007_bad_is_ignored_in_test_code() {
    // The same shapes are legal in integration tests, which routinely
    // call the delta path directly to compare it against dense logits.
    assert_clean("bd007_bad.rs", "tests/delta_equivalence.rs");
}

// ---- BD008: SIMD kernel dispatch discipline ---------------------------

#[test]
fn bd008_bad_trips_only_bd008() {
    let f = assert_trips("bd008_bad.rs", "crates/tensor/src/kernels/fast.rs", "BD008");
    assert_eq!(f.len(), 3, "one per failure mode: {f:?}");
    // Sorted by line: missing oracle (first intrinsic), unguarded call,
    // guarded-but-unjustified call.
    assert!(f[0].render().contains("_reference"));
    assert!(f[1].render().contains("kernel_a_avx2"));
    assert!(f[1].render().contains("is_x86_feature_detected"));
    assert!(f[2].render().contains("kernel_b_avx2"));
    assert!(f[2].render().contains("SAFETY"));
}

#[test]
fn bd008_good_guarded_dispatch_and_oracle_are_clean() {
    assert_clean("bd008_good.rs", "crates/tensor/src/kernels/fast.rs");
}

#[test]
fn bd008_bad_is_ignored_in_test_code() {
    // Equivalence tests drive kernels directly; the call checks don't
    // apply there, and the oracle requirement keys off production
    // intrinsics use only.
    assert_clean("bd008_bad.rs", "crates/tensor/tests/kernel_equivalence.rs");
}

// ---- BD009: shard journal fingerprint discipline ----------------------

#[test]
fn bd009_bad_trips_only_bd009() {
    let f = assert_trips("bd009_bad.rs", "crates/core/src/campaign.rs", "BD009");
    assert_eq!(f.len(), 2, "one per failure mode: {f:?}");
    // Sorted by line: the runner that reuses the base fingerprint, then
    // the helper that drops the shard count.
    assert!(f[0].render().contains("run_demo_shard"));
    assert!(f[1].render().contains("shard_fingerprint"));
}

#[test]
fn bd009_good_derived_shard_fingerprints_are_clean() {
    assert_clean("bd009_good.rs", "crates/core/src/campaign.rs");
}

#[test]
fn bd009_bad_is_ignored_in_test_code() {
    // Tests exercise shard runners against hand-built journals; the
    // discipline applies to production writers only.
    assert_clean("bd009_bad.rs", "tests/shard_merge.rs");
}

// ---- allow directive --------------------------------------------------

#[test]
fn allow_with_reason_waives_the_finding() {
    assert_clean("allow_good.rs", "crates/core/src/campaign.rs");
}

#[test]
fn allow_without_reason_is_inert_and_reported() {
    let findings = lint_source("crates/core/src/campaign.rs", &fixture("allow_bad.rs"));
    let mut codes: Vec<&str> = findings.iter().map(|f| f.code).collect();
    codes.sort_unstable();
    assert_eq!(codes, vec!["BD000", "BD001"], "got: {findings:?}");
}

// ---- the acceptance criterion, from the inside ------------------------

#[test]
fn workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let findings = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "workspace must lint clean; run `cargo run -p bdlfi-lint -- check .`:\n{}",
        findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
