//! Exit-code contract of the `bdlfi-lint` binary: 0 clean, 1 findings,
//! 2 usage/I/O error — the shape the CI job keys off.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bdlfi-lint"))
}

#[test]
fn check_on_the_workspace_exits_zero() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = bin().arg("check").arg(&root).output().expect("spawn");
    assert!(
        out.status.success(),
        "expected clean workspace, got:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("bdlfi-lint: clean"));
}

#[test]
fn check_on_the_bad_fixtures_exits_one_with_codes() {
    // Pointed directly at the fixture corpus the workspace walker skips,
    // the path-insensitive rules all fire.
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let out = bin().arg("check").arg(&fixtures).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for code in ["BD001", "BD002", "BD003", "BD004", "BD006"] {
        assert!(stdout.contains(code), "expected {code} in:\n{stdout}");
    }
}

#[test]
fn bad_usage_and_bad_paths_exit_two() {
    let out = bin().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .arg("check")
        .arg("/nonexistent/bdlfi")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}
