//! Exit-code contract of the `bdlfi-lint` binary: 0 clean, 1 findings,
//! 2 usage/I/O error — the shape the CI job keys off.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bdlfi-lint"))
}

#[test]
fn check_on_the_workspace_exits_zero() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = bin().arg("check").arg(&root).output().expect("spawn");
    assert!(
        out.status.success(),
        "expected clean workspace, got:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("bdlfi-lint: clean"));
}

#[test]
fn check_on_the_bad_fixtures_exits_one_with_codes() {
    // Pointed directly at the fixture corpus the workspace walker skips,
    // the path-insensitive rules all fire.
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let out = bin().arg("check").arg(&fixtures).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for code in ["BD001", "BD002", "BD003", "BD004", "BD006"] {
        assert!(stdout.contains(code), "expected {code} in:\n{stdout}");
    }
}

#[test]
fn bad_usage_and_bad_paths_exit_two() {
    let out = bin().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .arg("check")
        .arg("/nonexistent/bdlfi")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["check", ".", "--format", "yaml"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_format_emits_sarif_on_findings() {
    let tree = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bd010_bad");
    let out = bin()
        .args([
            "check",
            tree.to_str().expect("utf-8 path"),
            "--format",
            "json",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\":\"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\":\"BD010\""), "{stdout}");
    assert!(stdout.contains("crates/nn/src/prep.rs"), "{stdout}");
    // No human-format footer pollutes the document.
    assert!(!stdout.contains("bdlfi-lint:"), "{stdout}");
}

#[test]
fn github_format_emits_error_commands() {
    let tree = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bd012_bad");
    let out = bin()
        .args([
            "check",
            tree.to_str().expect("utf-8 path"),
            "--format",
            "github",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=crates/core/src/fastpath.rs,line=10,"),
        "{stdout}"
    );
}

#[test]
fn explain_documents_rules_and_flags_unknown_codes() {
    let out = bin().args(["explain", "bd011"]).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("BD011"), "{stdout}");
    assert!(stdout.contains("=== good:"), "{stdout}");
    assert!(stdout.contains("=== bad:"), "{stdout}");

    let out = bin().args(["explain", "BD005"]).output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("retired"));

    let out = bin().args(["explain", "BD999"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}
