//! Fault models: distributions over [`FaultMask`]s.
//!
//! The paper's model treats every bit of every stored 32-bit value as an
//! independent Bernoulli random variable with probability `p` derived from
//! the per-bit architectural vulnerability factor (AVF); "we do not make any
//! assumptions about the number of bits in error; this is determined by
//! `p`". [`BernoulliBitFlip`] is that model. [`SingleBitFlip`] and
//! [`ExactKBitFlips`] are the classical fault models used by traditional
//! injectors (TensorFI-style), needed for the baseline comparison.

use crate::bits::{BitRange, Repr};
use crate::mask::FaultMask;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A distribution over fault masks for a tensor of `len` elements.
///
/// Object-safe so campaigns can hold heterogeneous models.
pub trait FaultModel: Send + Sync {
    /// Samples a fault mask for a tensor with `len` elements.
    fn sample_mask(&self, len: usize, rng: &mut dyn Rng) -> FaultMask;

    /// Log-probability of a given mask under this model, if the model
    /// defines a product-form density (used as the MCMC target); `None` for
    /// models without one.
    fn log_prob(&self, mask: &FaultMask, len: usize) -> Option<f64>;

    /// Expected number of flipped bits for a tensor of `len` elements.
    fn expected_flips(&self, len: usize) -> f64;

    /// [`FaultModel::sample_mask`] for a site stored in representation
    /// `repr`: the injectable bit space is clamped to `repr`'s word width,
    /// so an int8 site draws over 8 bits per element instead of 32.
    ///
    /// The default ignores the representation (correct for f32-only
    /// models); width-aware models override it. For [`Repr::F32`] every
    /// override must be — and the provided ones are — bit-identical to
    /// `sample_mask`, preserving the determinism of existing campaigns.
    fn sample_mask_for(&self, len: usize, repr: Repr, rng: &mut dyn Rng) -> FaultMask {
        let _ = repr;
        self.sample_mask(len, rng)
    }

    /// [`FaultModel::log_prob`] under the representation-clamped bit
    /// space, matching [`FaultModel::sample_mask_for`].
    fn log_prob_for(&self, mask: &FaultMask, len: usize, repr: Repr) -> Option<f64> {
        let _ = repr;
        self.log_prob(mask, len)
    }

    /// [`FaultModel::expected_flips`] under the representation-clamped bit
    /// space.
    fn expected_flips_for(&self, len: usize, repr: Repr) -> f64 {
        let _ = repr;
        self.expected_flips(len)
    }

    /// A rare-event *proposal* version of this model with the fault rate
    /// inflated by `factor` (used by tilted-prior importance sampling);
    /// `None` if the model does not support tilting.
    fn tilted(&self, factor: f64) -> Option<Box<dyn FaultModel>> {
        let _ = factor;
        None
    }
}

/// The paper's fault model: every bit in `bits` of every element flips
/// independently with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BernoulliBitFlip {
    /// Per-bit flip probability (the AVF-derived `p`).
    pub p: f64,
    /// The injectable bit positions (the paper uses all 32).
    pub bits: BitRange,
}

impl BernoulliBitFlip {
    /// Creates the model over all 32 bits.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        Self::with_bits(p, BitRange::all())
    }

    /// Creates the model restricted to a bit field (sign/exponent/mantissa
    /// ablations).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn with_bits(p: f64, bits: BitRange) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0, 1]"
        );
        BernoulliBitFlip { p, bits }
    }
}

impl FaultModel for BernoulliBitFlip {
    fn sample_mask(&self, len: usize, rng: &mut dyn Rng) -> FaultMask {
        if self.p <= 0.0 || len == 0 {
            return FaultMask::empty();
        }
        let nbits = self.bits.len() as usize;
        let total = len * nbits;
        let mut entries: Vec<(usize, u32)> = Vec::new();

        if self.p >= 1.0 {
            // Every bit in range flips.
            let pattern = (0..self.bits.len()).fold(0u32, |acc, i| acc | (1 << self.bits.nth(i)));
            for i in 0..len {
                entries.push((i, pattern));
            }
            return FaultMask::from_entries(entries);
        }

        // Geometric skipping: iterate over flipped bit positions directly so
        // the cost is O(expected flips), not O(len * 32). The gap between
        // successive flips is Geometric(p).
        let log1m = (1.0 - self.p).ln();
        let mut pos = 0usize;
        loop {
            // Draw gap >= 0 with P(gap = k) = p (1-p)^k.
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let gap = (u.ln() / log1m).floor() as usize;
            pos = match pos.checked_add(gap) {
                Some(p) if p < total => p,
                _ => break,
            };
            let elem = pos / nbits;
            let bit = self.bits.nth((pos % nbits) as u8);
            entries.push((elem, 1u32 << bit));
            pos += 1;
            if pos >= total {
                break;
            }
        }
        FaultMask::from_entries(entries)
    }

    fn log_prob(&self, mask: &FaultMask, len: usize) -> Option<f64> {
        if !(0.0..=1.0).contains(&self.p) {
            return None;
        }
        // Bits outside the injectable range have probability 0 of flipping.
        for &(elem, pattern) in mask.entries() {
            if elem >= len {
                return Some(f64::NEG_INFINITY);
            }
            for bit in 0..32u8 {
                if pattern & (1 << bit) != 0 && !self.bits.contains(bit) {
                    return Some(f64::NEG_INFINITY);
                }
            }
        }
        let k = mask.bit_count() as f64;
        let n = (len * self.bits.len() as usize) as f64;
        if self.p == 0.0 {
            return Some(if k == 0.0 { 0.0 } else { f64::NEG_INFINITY });
        }
        if self.p == 1.0 {
            return Some(if k == n { 0.0 } else { f64::NEG_INFINITY });
        }
        Some(k * self.p.ln() + (n - k) * (1.0 - self.p).ln())
    }

    fn expected_flips(&self, len: usize) -> f64 {
        self.p * (len * self.bits.len() as usize) as f64
    }

    fn sample_mask_for(&self, len: usize, repr: Repr, rng: &mut dyn Rng) -> FaultMask {
        BernoulliBitFlip::with_bits(self.p, self.bits.clamp_to(repr)).sample_mask(len, rng)
    }

    fn log_prob_for(&self, mask: &FaultMask, len: usize, repr: Repr) -> Option<f64> {
        BernoulliBitFlip::with_bits(self.p, self.bits.clamp_to(repr)).log_prob(mask, len)
    }

    fn expected_flips_for(&self, len: usize, repr: Repr) -> f64 {
        BernoulliBitFlip::with_bits(self.p, self.bits.clamp_to(repr)).expected_flips(len)
    }

    fn tilted(&self, factor: f64) -> Option<Box<dyn FaultModel>> {
        if factor <= 0.0 {
            return None;
        }
        // Cap at 1/2: a proposal rate above one half would make the
        // importance weights of sparse configurations explode.
        Some(Box::new(BernoulliBitFlip::with_bits(
            (self.p * factor).min(0.5),
            self.bits,
        )))
    }
}

/// Exactly one uniformly chosen bit flips — the classical single-bit-flip
/// model of debugger/source-level injectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SingleBitFlip {
    /// The injectable bit positions.
    pub bits: BitRange,
}

impl SingleBitFlip {
    /// Creates the model over all 32 bits.
    pub fn new() -> Self {
        SingleBitFlip {
            bits: BitRange::all(),
        }
    }
}

impl Default for SingleBitFlip {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultModel for SingleBitFlip {
    fn sample_mask(&self, len: usize, rng: &mut dyn Rng) -> FaultMask {
        if len == 0 {
            return FaultMask::empty();
        }
        let elem = rng.random_range(0..len);
        let bit = self.bits.nth(rng.random_range(0..self.bits.len()));
        FaultMask::from_entries(vec![(elem, 1u32 << bit)])
    }

    fn log_prob(&self, mask: &FaultMask, len: usize) -> Option<f64> {
        let n = (len * self.bits.len() as usize) as f64;
        if mask.bit_count() == 1 {
            let (elem, pattern) = mask.entries()[0];
            let bit = pattern.trailing_zeros() as u8;
            if elem < len && self.bits.contains(bit) {
                return Some(-(n.ln()));
            }
        }
        Some(f64::NEG_INFINITY)
    }

    fn expected_flips(&self, _len: usize) -> f64 {
        1.0
    }

    fn sample_mask_for(&self, len: usize, repr: Repr, rng: &mut dyn Rng) -> FaultMask {
        let clamped = SingleBitFlip {
            bits: self.bits.clamp_to(repr),
        };
        clamped.sample_mask(len, rng)
    }

    fn log_prob_for(&self, mask: &FaultMask, len: usize, repr: Repr) -> Option<f64> {
        let clamped = SingleBitFlip {
            bits: self.bits.clamp_to(repr),
        };
        clamped.log_prob(mask, len)
    }
}

/// Exactly `k` distinct uniformly chosen bits flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactKBitFlips {
    /// Number of distinct bit flips per sample.
    pub k: usize,
    /// The injectable bit positions.
    pub bits: BitRange,
}

impl ExactKBitFlips {
    /// Creates the model over all 32 bits.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        ExactKBitFlips {
            k,
            bits: BitRange::all(),
        }
    }
}

impl FaultModel for ExactKBitFlips {
    fn sample_mask(&self, len: usize, rng: &mut dyn Rng) -> FaultMask {
        if len == 0 {
            return FaultMask::empty();
        }
        let nbits = self.bits.len() as usize;
        let total = len * nbits;
        let k = self.k.min(total);
        // Rejection-sample distinct positions (k << total in practice).
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < k {
            chosen.insert(rng.random_range(0..total));
        }
        let entries = chosen
            .into_iter()
            .map(|pos| {
                let elem = pos / nbits;
                let bit = self.bits.nth((pos % nbits) as u8);
                (elem, 1u32 << bit)
            })
            .collect();
        FaultMask::from_entries(entries)
    }

    fn log_prob(&self, mask: &FaultMask, len: usize) -> Option<f64> {
        let total = len * self.bits.len() as usize;
        if mask.bit_count() as usize != self.k.min(total) {
            return Some(f64::NEG_INFINITY);
        }
        // Uniform over C(total, k) subsets.
        let mut log_comb = 0.0f64;
        for i in 0..self.k.min(total) {
            log_comb += ((total - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        Some(-log_comb)
    }

    fn expected_flips(&self, len: usize) -> f64 {
        self.k.min(len * self.bits.len() as usize) as f64
    }

    fn sample_mask_for(&self, len: usize, repr: Repr, rng: &mut dyn Rng) -> FaultMask {
        let clamped = ExactKBitFlips {
            k: self.k,
            bits: self.bits.clamp_to(repr),
        };
        clamped.sample_mask(len, rng)
    }

    fn log_prob_for(&self, mask: &FaultMask, len: usize, repr: Repr) -> Option<f64> {
        let clamped = ExactKBitFlips {
            k: self.k,
            bits: self.bits.clamp_to(repr),
        };
        clamped.log_prob(mask, len)
    }

    fn expected_flips_for(&self, len: usize, repr: Repr) -> f64 {
        self.k.min(len * self.bits.clamp_to(repr).len() as usize) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_expected_flip_count_matches() {
        let model = BernoulliBitFlip::new(0.01);
        let mut rng = StdRng::seed_from_u64(0);
        let len = 1000; // 32k bits, expect ~320 flips.
        let mut total = 0u64;
        let reps = 50;
        for _ in 0..reps {
            total += model.sample_mask(len, &mut rng).bit_count() as u64;
        }
        let mean = total as f64 / reps as f64;
        let expected = model.expected_flips(len);
        assert!(
            (mean - expected).abs() < expected * 0.1,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn bernoulli_p_zero_and_one() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(BernoulliBitFlip::new(0.0)
            .sample_mask(10, &mut rng)
            .is_empty());
        let full = BernoulliBitFlip::new(1.0).sample_mask(10, &mut rng);
        assert_eq!(full.bit_count(), 320);
    }

    #[test]
    fn bernoulli_respects_bit_range() {
        let model = BernoulliBitFlip::with_bits(0.5, BitRange::exponent());
        let mut rng = StdRng::seed_from_u64(2);
        let mask = model.sample_mask(100, &mut rng);
        assert!(!mask.is_empty());
        for &(_, pattern) in mask.entries() {
            for bit in 0..32u8 {
                if pattern & (1 << bit) != 0 {
                    assert!(
                        BitRange::exponent().contains(bit),
                        "bit {bit} outside exponent"
                    );
                }
            }
        }
    }

    #[test]
    fn bernoulli_log_prob_is_consistent() {
        let model = BernoulliBitFlip::new(0.1);
        let len = 4; // 128 bits
        let empty = FaultMask::empty();
        let one = FaultMask::from_entries(vec![(0, 1)]);
        let lp0 = model.log_prob(&empty, len).unwrap();
        let lp1 = model.log_prob(&one, len).unwrap();
        // lp1 - lp0 = ln(p) - ln(1-p)
        let expected = (0.1f64.ln()) - (0.9f64.ln());
        assert!((lp1 - lp0 - expected).abs() < 1e-9);
    }

    #[test]
    fn bernoulli_log_prob_rejects_out_of_range_bits() {
        let model = BernoulliBitFlip::with_bits(0.1, BitRange::mantissa());
        let sign_flip = FaultMask::from_entries(vec![(0, 1 << 31)]);
        assert_eq!(model.log_prob(&sign_flip, 4), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn single_bit_flip_flips_exactly_one() {
        let model = SingleBitFlip::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(model.sample_mask(7, &mut rng).bit_count(), 1);
        }
    }

    #[test]
    fn single_bit_flip_log_prob_is_uniform() {
        let model = SingleBitFlip::new();
        let m = FaultMask::from_entries(vec![(3, 1 << 5)]);
        let lp = model.log_prob(&m, 10).unwrap();
        assert!((lp - -(320.0f64.ln())).abs() < 1e-12);
        let two = FaultMask::from_entries(vec![(3, 0b11)]);
        assert_eq!(model.log_prob(&two, 10), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn exact_k_flips_exactly_k() {
        let model = ExactKBitFlips::new(5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert_eq!(model.sample_mask(100, &mut rng).bit_count(), 5);
        }
    }

    #[test]
    fn exact_k_saturates_on_tiny_tensors() {
        let model = ExactKBitFlips::new(1000);
        let mut rng = StdRng::seed_from_u64(5);
        // 1 element = 32 bits total.
        assert_eq!(model.sample_mask(1, &mut rng).bit_count(), 32);
    }

    #[test]
    fn repr_clamped_sampling_stays_in_word() {
        let model = BernoulliBitFlip::new(0.4);
        let mut rng = StdRng::seed_from_u64(7);
        let mask = model.sample_mask_for(50, Repr::I8, &mut rng);
        assert!(!mask.is_empty());
        for &(_, pattern) in mask.entries() {
            assert_eq!(pattern & !0xFF, 0, "flip above bit 7 on an i8 site");
        }
    }

    #[test]
    fn f32_repr_sampling_is_bit_identical_to_legacy() {
        let model = BernoulliBitFlip::new(0.03);
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            assert_eq!(
                model.sample_mask(100, &mut a),
                model.sample_mask_for(100, Repr::F32, &mut b)
            );
        }
    }

    #[test]
    fn repr_clamped_density_normalizes_over_narrow_space() {
        // On an i8 site the single-bit model is uniform over len * 8
        // positions, not len * 32.
        let model = SingleBitFlip::new();
        let m = FaultMask::from_entries(vec![(3, 1 << 5)]);
        let lp = model.log_prob_for(&m, 10, Repr::I8).unwrap();
        assert!((lp - -(80.0f64.ln())).abs() < 1e-12);
        // A flip above the word width has probability zero.
        let high = FaultMask::from_entries(vec![(3, 1 << 9)]);
        assert_eq!(
            model.log_prob_for(&high, 10, Repr::I8),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn repr_scales_expected_flips() {
        let model = BernoulliBitFlip::new(0.01);
        assert!((model.expected_flips_for(100, Repr::I8) - 8.0).abs() < 1e-9);
        assert!((model.expected_flips_for(100, Repr::F32) - 32.0).abs() < 1e-9);
        assert!((model.expected_flips_for(100, Repr::I32Accum) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn exact_k_saturates_at_narrow_word() {
        let model = ExactKBitFlips::new(1000);
        let mut rng = StdRng::seed_from_u64(9);
        // 1 element * 8 bits.
        assert_eq!(model.sample_mask_for(1, Repr::I8, &mut rng).bit_count(), 8);
        assert!((model.expected_flips_for(1, Repr::I8) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn models_are_object_safe() {
        let models: Vec<Box<dyn FaultModel>> = vec![
            Box::new(BernoulliBitFlip::new(0.01)),
            Box::new(SingleBitFlip::new()),
            Box::new(ExactKBitFlips::new(2)),
        ];
        let mut rng = StdRng::seed_from_u64(6);
        for m in &models {
            let _ = m.sample_mask(10, &mut rng);
        }
    }
}
