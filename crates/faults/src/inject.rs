//! Applying fault configurations to networks.
//!
//! A [`FaultConfig`] is one concrete joint fault outcome — a mask per
//! parameter site (the MCMC state of BDLFI). Applying it XORs the masks
//! into the weights; applying it again undoes the injection exactly, so a
//! campaign never copies the golden weights.

use crate::mask::FaultMask;
use crate::model::FaultModel;
use crate::site::{ParamSite, ResolvedSites};
use bdlfi_nn::{Layer, Sequential};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One concrete joint fault configuration over a set of parameter sites.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    // Keyed by parameter path. Empty masks are omitted. Ordered so the
    // serialized form (checkpoint journals) and `affected_paths` are
    // independent of hash state across runs.
    masks: BTreeMap<String, FaultMask>,
}

impl FaultConfig {
    /// The fault-free configuration.
    pub fn clean() -> Self {
        FaultConfig {
            masks: BTreeMap::new(),
        }
    }

    /// Samples a configuration: one independent mask per parameter site,
    /// drawn over each site's own word width
    /// ([`FaultModel::sample_mask_for`]), so int8 sites flip within their
    /// 8 stored bits and f32 sites behave exactly as before.
    pub fn sample(sites: &[ParamSite], model: &dyn FaultModel, rng: &mut dyn Rng) -> Self {
        let mut masks = BTreeMap::new();
        for site in sites {
            let mask = model.sample_mask_for(site.len, site.repr, rng);
            if !mask.is_empty() {
                masks.insert(site.path.clone(), mask);
            }
        }
        FaultConfig { masks }
    }

    /// The mask for a parameter path (empty if none).
    pub fn mask(&self, path: &str) -> FaultMask {
        self.masks.get(path).cloned().unwrap_or_default()
    }

    /// Replaces the mask at `path` (removing it if empty).
    pub fn set_mask(&mut self, path: &str, mask: FaultMask) {
        if mask.is_empty() {
            self.masks.remove(path);
        } else {
            self.masks.insert(path.to_string(), mask);
        }
    }

    /// Total number of flipped bits across all sites.
    pub fn total_flips(&self) -> u32 {
        self.masks.values().map(FaultMask::bit_count).sum()
    }

    /// Whether no faults are present.
    pub fn is_clean(&self) -> bool {
        self.masks.is_empty()
    }

    /// Paths with a non-empty mask, in sorted (path) order.
    pub fn affected_paths(&self) -> Vec<&str> {
        self.masks.keys().map(String::as_str).collect()
    }

    /// Index of the shallowest top-level layer of `model` whose parameters
    /// this configuration corrupts, or `None` for a clean configuration.
    ///
    /// Every layer before this index computes on golden weights, so its
    /// activations are bit-identical to the golden run — the invariant the
    /// incremental-inference cache ([`bdlfi_nn::PrefixCache`]) exploits. A
    /// mask whose path matches no layer maps conservatively to `Some(0)`
    /// (full re-run).
    pub fn first_dirty_layer(&self, model: &Sequential) -> Option<usize> {
        self.masks
            .keys()
            .map(|path| model.layer_index_of_param(path).unwrap_or(0))
            .min()
    }

    /// Joint log-probability of this configuration under a per-site fault
    /// model, given the site list (sites without masks contribute their
    /// no-fault probability).
    ///
    /// Returns `None` if the model defines no density.
    pub fn log_prob(&self, sites: &[ParamSite], model: &dyn FaultModel) -> Option<f64> {
        let mut total = 0.0f64;
        for site in sites {
            let mask = self.mask(&site.path);
            total += model.log_prob_for(&mask, site.len, site.repr)?;
        }
        Some(total)
    }

    /// XORs the configuration into the model's parameters. Calling it a
    /// second time undoes the injection exactly.
    ///
    /// # Panics
    ///
    /// Panics if a mask indexes beyond its parameter.
    pub fn apply(&self, model: &mut Sequential) {
        if self.masks.is_empty() {
            return;
        }
        let masks = &self.masks;
        model.visit_params_mut("", &mut |path, p| {
            if let Some(mask) = masks.get(path) {
                mask.apply(&mut p.value);
            }
        });
    }

    /// Runs `f` with the faults applied, guaranteeing the model is restored
    /// afterwards (XOR involution), even though `f` may inspect the faulty
    /// model freely.
    pub fn with_applied<T>(
        &self,
        model: &mut Sequential,
        f: impl FnOnce(&mut Sequential) -> T,
    ) -> T {
        self.apply(model);
        let out = f(model);
        self.apply(model);
        out
    }
}

/// Convenience: the total number of distinct `(element, bit)` positions a
/// resolved site set exposes — the size of the paper's "enormous space of
/// fault locations". Counts each site at its own word width, so a
/// quantized site set is 4× smaller per element than its f32 twin.
pub fn injection_space_bits(sites: &ResolvedSites) -> u64 {
    sites.params.iter().map(ParamSite::injectable_bits).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BernoulliBitFlip, SingleBitFlip};
    use crate::site::{resolve_sites, SiteSpec};
    use bdlfi_nn::mlp;
    use bdlfi_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        mlp(2, &[4], 3, &mut rng)
    }

    #[test]
    fn apply_twice_restores_weights() {
        let mut m = model();
        let sites = resolve_sites(&m, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(0.05), &mut rng);
        assert!(!cfg.is_clean());

        let golden = bdlfi_nn::serialize::export_weights(&m);
        cfg.apply(&mut m);
        let faulty = bdlfi_nn::serialize::export_weights(&m);
        assert_ne!(golden.params, faulty.params);
        cfg.apply(&mut m);
        let restored = bdlfi_nn::serialize::export_weights(&m);
        assert_eq!(golden.params, restored.params);
    }

    #[test]
    fn with_applied_restores_even_after_prediction() {
        let mut m = model();
        let sites = resolve_sites(&m, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(0.1), &mut rng);
        let x = Tensor::rand_normal([4, 2], 0.0, 1.0, &mut rng);

        let clean = m.predict(&x);
        let faulty = cfg.with_applied(&mut m, |m| m.predict(&x));
        let clean_again = m.predict(&x);
        let cb: Vec<u32> = clean.data().iter().map(|v| v.to_bits()).collect();
        let ca: Vec<u32> = clean_again.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(cb, ca, "model not restored");
        // With p = 0.1 over every parameter, outputs almost surely differ.
        let fb: Vec<u32> = faulty.data().iter().map(|v| v.to_bits()).collect();
        assert_ne!(cb, fb);
    }

    #[test]
    fn sample_respects_sites() {
        let m = model();
        let sites = resolve_sites(
            &m,
            &SiteSpec::LayerParams {
                prefix: "fc1".into(),
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(0.5), &mut rng);
        for path in cfg.affected_paths() {
            assert!(path.starts_with("fc1."), "unexpected path {path}");
        }
    }

    #[test]
    fn log_prob_sums_over_sites() {
        let m = model();
        let sites = resolve_sites(&m, &SiteSpec::AllParams);
        let fm = BernoulliBitFlip::new(0.01);
        let clean = FaultConfig::clean();
        let lp_clean = clean.log_prob(&sites.params, &fm).unwrap();
        // ln((1-p)^(total bits))
        let total_bits = sites.total_param_elements() as f64 * 32.0;
        assert!((lp_clean - total_bits * (0.99f64).ln()).abs() < 1e-6);

        let mut one = FaultConfig::clean();
        let mut mask = FaultMask::empty();
        mask.push_bit(0, 4);
        one.set_mask("fc1.weight", mask);
        let lp_one = one.log_prob(&sites.params, &fm).unwrap();
        assert!((lp_one - lp_clean - (0.01f64.ln() - 0.99f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn set_mask_with_empty_removes() {
        let mut cfg = FaultConfig::clean();
        let mut mask = FaultMask::empty();
        mask.push_bit(2, 7);
        cfg.set_mask("fc1.weight", mask.clone());
        assert_eq!(cfg.total_flips(), 1);
        cfg.set_mask("fc1.weight", FaultMask::empty());
        assert!(cfg.is_clean());
        assert_eq!(cfg.mask("fc1.weight"), FaultMask::empty());
    }

    #[test]
    fn first_dirty_layer_tracks_shallowest_mask() {
        let m = model(); // fc1(0), relu1(1), fc2(2)
        let mut cfg = FaultConfig::clean();
        assert_eq!(cfg.first_dirty_layer(&m), None);

        let mut mask = FaultMask::empty();
        mask.push_bit(0, 3);
        cfg.set_mask("fc2.weight", mask.clone());
        assert_eq!(cfg.first_dirty_layer(&m), Some(2));

        cfg.set_mask("fc1.bias", mask.clone());
        assert_eq!(cfg.first_dirty_layer(&m), Some(0));

        // Removing the shallow mask moves the dirty frontier back down.
        cfg.set_mask("fc1.bias", FaultMask::empty());
        assert_eq!(cfg.first_dirty_layer(&m), Some(2));

        // Unknown paths are conservative: everything re-runs.
        cfg.set_mask("ghost.weight", mask);
        assert_eq!(cfg.first_dirty_layer(&m), Some(0));
    }

    #[test]
    fn injection_space_is_32_bits_per_element() {
        let m = model();
        let sites = resolve_sites(&m, &SiteSpec::AllParams);
        assert_eq!(
            injection_space_bits(&sites),
            (sites.total_param_elements() * 32) as u64
        );
    }

    #[test]
    fn injection_space_counts_each_site_at_its_width() {
        use crate::bits::Repr;
        use crate::site::ParamSite;
        let sites = ResolvedSites {
            params: vec![
                ParamSite::with_repr("q.weight", 10, Repr::I8),
                ParamSite::with_repr("q.bias", 3, Repr::I32Accum),
                ParamSite::with_repr("q.scale", 1, Repr::F32),
            ],
            activations: Vec::new(),
            input: false,
        };
        assert_eq!(injection_space_bits(&sites), 10 * 8 + 3 * 32 + 32);
    }

    #[test]
    fn sampling_respects_site_width() {
        use crate::bits::Repr;
        use crate::site::ParamSite;
        let sites = vec![ParamSite::with_repr("q.weight", 40, Repr::I8)];
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = FaultConfig::sample(&sites, &BernoulliBitFlip::new(0.3), &mut rng);
        assert!(!cfg.is_clean());
        for &(_, pattern) in cfg.mask("q.weight").entries() {
            assert_eq!(pattern & !0xFF, 0, "i8 site flipped a bit above 7");
        }
        // The density normalizes over the 8-bit space.
        let lp_clean = FaultConfig::clean()
            .log_prob(&sites, &BernoulliBitFlip::new(0.01))
            .unwrap();
        assert!((lp_clean - 40.0 * 8.0 * (0.99f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn single_bit_model_produces_single_flip_configs() {
        let m = model();
        // One site only, as the classical injectors do.
        let sites = resolve_sites(&m, &SiteSpec::Params(vec!["fc1.weight".into()]));
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = FaultConfig::sample(&sites.params, &SingleBitFlip::new(), &mut rng);
        assert_eq!(cfg.total_flips(), 1);
    }
}
