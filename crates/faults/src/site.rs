//! Fault sites: where in the network faults strike.
//!
//! The paper injects into "memory units for storing NN parameters, inputs,
//! intermediate activations and outputs". Parameters rest in memory and are
//! addressed by path; activations exist only during a forward pass and are
//! addressed by the layer that produces them (injected through the
//! [`bdlfi_nn::ActivationTap`] mechanism).

use crate::bits::Repr;
use bdlfi_nn::{Layer, Sequential};
use serde::{Deserialize, Serialize};

/// A selector describing which memory locations a campaign injects into.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteSpec {
    /// Every parameter tensor in the model (weights, biases, batch-norm
    /// scales and running statistics) — the paper's "all layers" campaigns
    /// (Fig. 2, Fig. 4).
    AllParams,
    /// Only parameters whose path starts with the given layer prefix — the
    /// paper's layer-by-layer campaign (Fig. 3).
    LayerParams {
        /// Dotted path prefix, e.g. `"layer1_0"`.
        prefix: String,
    },
    /// An explicit list of parameter paths.
    Params(Vec<String>),
    /// The activations produced by the named layers (full dotted paths).
    Activations(Vec<String>),
    /// The network input itself (paper: faults in the memory "storing NN
    /// parameters, **inputs**, intermediate activations and outputs").
    /// Transient, like activations: a fresh mask per inference.
    Input,
}

/// A parameter fault site resolved against a concrete model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSite {
    /// Full dotted parameter path.
    pub path: String,
    /// Number of stored elements in the parameter.
    pub len: usize,
    /// The stored representation of each element. Defaults to
    /// [`Repr::F32`] (including when deserializing pre-quantization site
    /// lists, which lack the field).
    pub repr: Repr,
}

impl ParamSite {
    /// An f32 parameter site — the paper's representation.
    pub fn new(path: impl Into<String>, len: usize) -> Self {
        Self::with_repr(path, len, Repr::F32)
    }

    /// A parameter site with an explicit stored representation.
    pub fn with_repr(path: impl Into<String>, len: usize, repr: Repr) -> Self {
        ParamSite {
            path: path.into(),
            len,
            repr,
        }
    }

    /// Number of injectable `(element, bit)` positions the site exposes.
    pub fn injectable_bits(&self) -> u64 {
        self.len as u64 * u64::from(self.repr.width())
    }
}

/// The outcome of resolving a [`SiteSpec`] against a model: the concrete
/// parameter sites (with sizes) and the activation layer paths (sized at
/// forward time).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResolvedSites {
    /// Parameter sites with element counts.
    pub params: Vec<ParamSite>,
    /// Layer paths whose output activations are injected.
    pub activations: Vec<String>,
    /// Whether the network input is injected (transiently, per inference).
    pub input: bool,
}

impl ResolvedSites {
    /// Total number of injectable parameter elements.
    pub fn total_param_elements(&self) -> usize {
        self.params.iter().map(|p| p.len).sum()
    }

    /// Whether the spec resolved to nothing.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty() && self.activations.is_empty() && !self.input
    }
}

/// Resolves a [`SiteSpec`] against a model's parameter structure.
///
/// # Panics
///
/// Panics if the spec names a parameter path or layer prefix that does not
/// exist in the model — a campaign configured against a missing site is a
/// configuration bug worth failing loudly on.
pub fn resolve_sites(model: &Sequential, spec: &SiteSpec) -> ResolvedSites {
    let mut all: Vec<ParamSite> = Vec::new();
    model.visit_params("", &mut |path, p| {
        all.push(ParamSite::new(path, p.len()));
    });

    match spec {
        SiteSpec::AllParams => ResolvedSites {
            params: all,
            activations: Vec::new(),
            input: false,
        },
        SiteSpec::LayerParams { prefix } => {
            let params: Vec<ParamSite> = all
                .into_iter()
                .filter(|s| s.path == *prefix || s.path.starts_with(&format!("{prefix}.")))
                .collect();
            assert!(
                !params.is_empty(),
                "no parameters under layer prefix {prefix:?}"
            );
            ResolvedSites {
                params,
                activations: Vec::new(),
                input: false,
            }
        }
        SiteSpec::Params(paths) => {
            let params: Vec<ParamSite> = paths
                .iter()
                .map(|want| {
                    all.iter()
                        .find(|s| s.path == *want)
                        // bdlfi-lint: allow(BD010) -- spec-resolution boundary: reports the offending path before any campaign state exists
                        .unwrap_or_else(|| panic!("unknown parameter path {want:?}"))
                        .clone()
                })
                .collect();
            ResolvedSites {
                params,
                activations: Vec::new(),
                input: false,
            }
        }
        SiteSpec::Activations(layers) => ResolvedSites {
            params: Vec::new(),
            activations: layers.clone(),
            input: false,
        },
        SiteSpec::Input => ResolvedSites {
            params: Vec::new(),
            activations: Vec::new(),
            input: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_nn::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        mlp(2, &[4], 3, &mut rng)
    }

    #[test]
    fn all_params_resolves_everything() {
        let m = model();
        let r = resolve_sites(&m, &SiteSpec::AllParams);
        assert_eq!(r.params.len(), 4);
        assert_eq!(r.total_param_elements(), 2 * 4 + 4 + 4 * 3 + 3);
        assert!(r.activations.is_empty());
    }

    #[test]
    fn layer_prefix_filters() {
        let m = model();
        let r = resolve_sites(
            &m,
            &SiteSpec::LayerParams {
                prefix: "fc1".into(),
            },
        );
        let paths: Vec<&str> = r.params.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(paths, vec!["fc1.weight", "fc1.bias"]);
    }

    #[test]
    fn layer_prefix_does_not_match_partial_names() {
        let mut rng = StdRng::seed_from_u64(1);
        // fc1 and fc10 must not be confused.
        let mut m = Sequential::new();
        m.push("fc1", bdlfi_nn::layers::Dense::new(2, 2, &mut rng));
        m.push("fc10", bdlfi_nn::layers::Dense::new(2, 2, &mut rng));
        let r = resolve_sites(
            &m,
            &SiteSpec::LayerParams {
                prefix: "fc1".into(),
            },
        );
        assert_eq!(r.params.len(), 2);
        assert!(r.params.iter().all(|p| p.path.starts_with("fc1.")));
    }

    #[test]
    #[should_panic(expected = "no parameters under layer prefix")]
    fn unknown_prefix_panics() {
        resolve_sites(
            &model(),
            &SiteSpec::LayerParams {
                prefix: "nope".into(),
            },
        );
    }

    #[test]
    fn explicit_paths_resolve_in_order() {
        let m = model();
        let r = resolve_sites(
            &m,
            &SiteSpec::Params(vec!["fc2.bias".into(), "fc1.weight".into()]),
        );
        assert_eq!(r.params[0].path, "fc2.bias");
        assert_eq!(r.params[0].len, 3);
        assert_eq!(r.params[1].path, "fc1.weight");
        assert_eq!(r.params[1].len, 8);
    }

    #[test]
    #[should_panic(expected = "unknown parameter path")]
    fn unknown_param_panics() {
        resolve_sites(&model(), &SiteSpec::Params(vec!["fc9.weight".into()]));
    }

    #[test]
    fn input_site_resolves_to_flag() {
        let m = model();
        let r = resolve_sites(&m, &SiteSpec::Input);
        assert!(r.params.is_empty() && r.activations.is_empty());
        assert!(r.input);
        assert!(!r.is_empty());
    }

    #[test]
    fn resolved_sites_default_to_f32() {
        let m = model();
        let r = resolve_sites(&m, &SiteSpec::AllParams);
        assert!(r.params.iter().all(|p| p.repr == Repr::F32));
        assert_eq!(r.params[0].injectable_bits(), r.params[0].len as u64 * 32);
    }

    #[test]
    fn pre_repr_serialized_sites_still_deserialize() {
        // A site list written before `ParamSite` gained its `repr` field
        // (no "repr" key) must load as F32.
        let legacy = r#"{"path": "fc1.weight", "len": 8}"#;
        let site: ParamSite = serde_json::from_str(legacy).unwrap();
        assert_eq!(site, ParamSite::new("fc1.weight", 8));
        assert_eq!(site.repr, Repr::F32);
        // And the new form round-trips with the representation intact.
        let quant = ParamSite::with_repr("fc1.weight", 8, Repr::I8);
        let json = serde_json::to_string(&quant).unwrap();
        let back: ParamSite = serde_json::from_str(&json).unwrap();
        assert_eq!(back, quant);
    }

    #[test]
    fn activations_pass_through() {
        let m = model();
        let r = resolve_sites(&m, &SiteSpec::Activations(vec!["relu1".into()]));
        assert!(r.params.is_empty());
        assert_eq!(r.activations, vec!["relu1"]);
        assert!(!r.is_empty());
    }
}
