//! IEEE-754 single-precision bit manipulation.
//!
//! The paper's fault model operates on the 32-bit float representation of
//! every stored value: "All network parameters, inputs, and outputs are
//! encoded as 32-bit floating point numbers" and faults are "bitwise-XOR
//! operations with flipped bits". Bit numbering here is LSB-first:
//! bits 0–22 are the mantissa, 23–30 the exponent, 31 the sign.

use serde::{DeError, Deserialize, Serialize, Value};

/// Number of bits in the injected representation (IEEE-754 binary32).
pub const WORD_BITS: u8 = 32;

/// Index of the sign bit.
pub const SIGN_BIT: u8 = 31;

/// The stored representation a fault site injects into.
///
/// The paper's model is pure binary32 ([`Repr::F32`]); the quantized
/// deployment workload adds int8 weight bytes ([`Repr::I8`]) and 32-bit
/// integer bias/accumulator words ([`Repr::I32Accum`]). The representation
/// determines the word width — and therefore the size of the per-element
/// injection space — so every width-dependent computation (mask sampling,
/// exhaustive enumeration, injection-space accounting) consults
/// [`Repr::width`] instead of assuming 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Repr {
    /// IEEE-754 binary32 — the paper's representation and the default, so
    /// pre-quantization serialized sites deserialize unchanged.
    #[default]
    F32,
    /// Signed 8-bit integer (quantized weights and activations).
    I8,
    /// Signed 32-bit integer (quantized biases, accumulators and
    /// zero-points).
    I32Accum,
}

impl Repr {
    /// Number of injectable bits per stored element.
    pub fn width(self) -> u8 {
        match self {
            Repr::F32 => 32,
            Repr::I8 => 8,
            Repr::I32Accum => 32,
        }
    }
}

// Hand-written serde: a `Repr` serializes as a plain string, and an
// *absent* field defaults to `F32`, which is what keeps pre-quantization
// checkpoints and site lists loadable ([`crate::ParamSite`] gained a
// `repr` field after they were written).
impl Serialize for Repr {
    fn to_json_value(&self) -> Value {
        Value::String(
            match self {
                Repr::F32 => "F32",
                Repr::I8 => "I8",
                Repr::I32Accum => "I32Accum",
            }
            .to_string(),
        )
    }
}

impl Deserialize for Repr {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => match s.as_str() {
                "F32" => Ok(Repr::F32),
                "I8" => Ok(Repr::I8),
                "I32Accum" => Ok(Repr::I32Accum),
                other => Err(DeError::custom(format!("unknown Repr variant {other:?}"))),
            },
            _ => Err(DeError::custom("Repr must be a string")),
        }
    }

    fn missing_field_default() -> Option<Self> {
        Some(Repr::F32)
    }
}

/// Flips one bit of a float's binary32 representation.
///
/// # Panics
///
/// Panics if `bit >= 32`.
///
/// # Examples
///
/// ```
/// use bdlfi_faults::bits::flip_bit;
/// // Flipping the sign bit negates.
/// assert_eq!(flip_bit(1.5, 31), -1.5);
/// // Flipping twice restores (XOR involution).
/// assert_eq!(flip_bit(flip_bit(0.1, 7), 7), 0.1);
/// ```
pub fn flip_bit(x: f32, bit: u8) -> f32 {
    assert!(bit < WORD_BITS, "bit index {bit} out of range");
    f32::from_bits(x.to_bits() ^ (1u32 << bit))
}

/// Flips one bit of a signed 8-bit integer (quantized weight byte).
///
/// # Panics
///
/// Panics if `bit >= 8`.
///
/// # Examples
///
/// ```
/// use bdlfi_faults::bits::flip_bit_u8;
/// // Flipping the sign bit of a two's-complement byte.
/// assert_eq!(flip_bit_u8(1, 7), -127);
/// // XOR involution, exactly as for floats.
/// assert_eq!(flip_bit_u8(flip_bit_u8(-42, 3), 3), -42);
/// ```
pub fn flip_bit_u8(x: i8, bit: u8) -> i8 {
    assert!(
        bit < Repr::I8.width(),
        "bit index {bit} out of range for i8"
    );
    (x as u8 ^ (1u8 << bit)) as i8
}

/// Flips one bit of a signed 32-bit integer (quantized bias or accumulator
/// word).
///
/// # Panics
///
/// Panics if `bit >= 32`.
pub fn flip_bit_u32(x: i32, bit: u8) -> i32 {
    assert!(bit < WORD_BITS, "bit index {bit} out of range");
    x ^ (1i32 << bit)
}

/// XORs a full 32-bit mask into a float's representation.
pub fn xor_bits(x: f32, mask: u32) -> f32 {
    f32::from_bits(x.to_bits() ^ mask)
}

/// A contiguous range of injectable bit positions `[lo, hi)`.
///
/// Used to restrict fault models to architecturally interesting fields
/// (sign / exponent / mantissa) for the bit-position ablation (EXPERIMENTS
/// E7); the paper's base model uses [`BitRange::all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitRange {
    lo: u8,
    hi: u8,
}

impl BitRange {
    /// All 32 bits — the paper's fault model.
    pub fn all() -> Self {
        BitRange { lo: 0, hi: 32 }
    }

    /// Every bit of the given representation: `[0, repr.width())`.
    ///
    /// `all_for(Repr::F32)` equals [`BitRange::all`]; `all_for(Repr::I8)`
    /// is the exhaustive 8-bit space of a quantized weight byte.
    pub fn all_for(repr: Repr) -> Self {
        BitRange {
            lo: 0,
            hi: repr.width(),
        }
    }

    /// Restricts the range to bits that exist in `repr`, i.e. intersects
    /// with `[0, repr.width())`.
    ///
    /// For [`Repr::F32`] and [`Repr::I32Accum`] this is the identity, so
    /// float campaigns are bit-for-bit unaffected by the clamp.
    ///
    /// # Panics
    ///
    /// Panics if the intersection is empty (e.g. an exponent-only range
    /// clamped to an 8-bit word) — such a campaign cannot inject anything
    /// at the site, which is a configuration bug.
    pub fn clamp_to(&self, repr: Repr) -> Self {
        let hi = self.hi.min(repr.width());
        assert!(
            self.lo < hi,
            "bit range [{}, {}) has no bits within a {}-bit {repr:?} word",
            self.lo,
            self.hi,
            repr.width()
        );
        BitRange { lo: self.lo, hi }
    }

    /// Only the sign bit.
    pub fn sign() -> Self {
        BitRange { lo: 31, hi: 32 }
    }

    /// The 8 exponent bits.
    pub fn exponent() -> Self {
        BitRange { lo: 23, hi: 31 }
    }

    /// The 23 mantissa bits.
    pub fn mantissa() -> Self {
        BitRange { lo: 0, hi: 23 }
    }

    /// A custom `[lo, hi)` range.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi <= 32`.
    pub fn new(lo: u8, hi: u8) -> Self {
        assert!(lo < hi && hi <= WORD_BITS, "invalid bit range [{lo}, {hi})");
        BitRange { lo, hi }
    }

    /// Number of bits in the range.
    pub fn len(&self) -> u8 {
        self.hi - self.lo
    }

    /// Whether the range is empty (never true for constructed ranges).
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Whether `bit` falls in the range.
    pub fn contains(&self, bit: u8) -> bool {
        (self.lo..self.hi).contains(&bit)
    }

    /// The `i`-th bit position of the range (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn nth(&self, i: u8) -> u8 {
        assert!(i < self.len(), "bit offset {i} out of range");
        self.lo + i
    }
}

impl Default for BitRange {
    /// Defaults to all 32 bits, matching the paper.
    fn default() -> Self {
        BitRange::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sign_flip_negates() {
        assert_eq!(flip_bit(2.5, SIGN_BIT), -2.5);
        assert_eq!(flip_bit(-0.0, SIGN_BIT), 0.0);
    }

    #[test]
    fn exponent_flip_scales_by_power_of_two() {
        // Bit 23 is the exponent LSB: flipping it on 1.0 (exp=127) gives
        // exp=126 -> 0.5.
        assert_eq!(flip_bit(1.0, 23), 0.5);
        // The top exponent bit turns 1.0 into a huge number.
        assert!(flip_bit(1.0, 30) > 1e30);
    }

    #[test]
    fn mantissa_flip_perturbs_slightly() {
        let y = flip_bit(1.0, 0);
        assert!(y != 1.0 && (y - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_32_rejected() {
        flip_bit(1.0, 32);
    }

    #[test]
    fn ranges_partition_the_word() {
        let (s, e, m) = (BitRange::sign(), BitRange::exponent(), BitRange::mantissa());
        assert_eq!(s.len() + e.len() + m.len(), 32);
        for bit in 0..32u8 {
            let count = [s, e, m].iter().filter(|r| r.contains(bit)).count();
            assert_eq!(count, 1, "bit {bit} in {count} fields");
        }
    }

    #[test]
    fn nth_enumerates_range() {
        let e = BitRange::exponent();
        let bits: Vec<u8> = (0..e.len()).map(|i| e.nth(i)).collect();
        assert_eq!(bits, vec![23, 24, 25, 26, 27, 28, 29, 30]);
    }

    #[test]
    #[should_panic(expected = "invalid bit range")]
    fn backwards_range_rejected() {
        BitRange::new(5, 5);
    }

    #[test]
    fn repr_widths() {
        assert_eq!(Repr::F32.width(), 32);
        assert_eq!(Repr::I8.width(), 8);
        assert_eq!(Repr::I32Accum.width(), 32);
        assert_eq!(Repr::default(), Repr::F32);
    }

    #[test]
    fn all_for_matches_width() {
        assert_eq!(BitRange::all_for(Repr::F32), BitRange::all());
        let i8_range = BitRange::all_for(Repr::I8);
        assert_eq!(i8_range.len(), 8);
        assert!(i8_range.contains(7) && !i8_range.contains(8));
    }

    #[test]
    fn clamp_to_is_identity_for_f32() {
        for r in [
            BitRange::all(),
            BitRange::sign(),
            BitRange::exponent(),
            BitRange::mantissa(),
        ] {
            assert_eq!(r.clamp_to(Repr::F32), r);
            assert_eq!(r.clamp_to(Repr::I32Accum), r);
        }
        assert_eq!(
            BitRange::all().clamp_to(Repr::I8),
            BitRange::all_for(Repr::I8)
        );
        assert_eq!(BitRange::new(0, 12).clamp_to(Repr::I8), BitRange::new(0, 8));
    }

    #[test]
    #[should_panic(expected = "no bits within")]
    fn clamp_to_rejects_disjoint_range() {
        BitRange::exponent().clamp_to(Repr::I8);
    }

    #[test]
    fn i8_sign_bit_flip() {
        assert_eq!(flip_bit_u8(0, 7), -128);
        assert_eq!(flip_bit_u32(0, 31), i32::MIN);
        assert_eq!(flip_bit_u32(flip_bit_u32(12345, 17), 17), 12345);
    }

    #[test]
    fn repr_round_trips_through_serde_as_string() {
        for r in [Repr::F32, Repr::I8, Repr::I32Accum] {
            let v = r.to_json_value();
            assert_eq!(Repr::from_json_value(&v).unwrap(), r);
        }
        assert_eq!(Repr::missing_field_default(), Some(Repr::F32));
        assert!(Repr::from_json_value(&Value::String("I4".into())).is_err());
    }

    proptest! {
        #[test]
        fn flip_is_involution(x in proptest::num::f32::ANY, bit in 0u8..32) {
            let y = flip_bit(flip_bit(x, bit), bit);
            // Compare representations: NaN != NaN as floats.
            prop_assert_eq!(y.to_bits(), x.to_bits());
        }

        #[test]
        fn i8_flip_is_involution(raw in proptest::num::u32::ANY, bit in 0u8..8) {
            let x = raw as u8 as i8;
            prop_assert_eq!(flip_bit_u8(flip_bit_u8(x, bit), bit), x);
        }

        #[test]
        fn i32_flip_is_involution(raw in proptest::num::u32::ANY, bit in 0u8..32) {
            let x = raw as i32;
            prop_assert_eq!(flip_bit_u32(flip_bit_u32(x, bit), bit), x);
        }

        #[test]
        fn xor_composes(x in -1e10f32..1e10, a in proptest::num::u32::ANY, b in proptest::num::u32::ANY) {
            let lhs = xor_bits(xor_bits(x, a), b);
            let rhs = xor_bits(x, a ^ b);
            prop_assert_eq!(lhs.to_bits(), rhs.to_bits());
        }
    }
}
