//! IEEE-754 single-precision bit manipulation.
//!
//! The paper's fault model operates on the 32-bit float representation of
//! every stored value: "All network parameters, inputs, and outputs are
//! encoded as 32-bit floating point numbers" and faults are "bitwise-XOR
//! operations with flipped bits". Bit numbering here is LSB-first:
//! bits 0–22 are the mantissa, 23–30 the exponent, 31 the sign.

use serde::{Deserialize, Serialize};

/// Number of bits in the injected representation (IEEE-754 binary32).
pub const WORD_BITS: u8 = 32;

/// Index of the sign bit.
pub const SIGN_BIT: u8 = 31;

/// Flips one bit of a float's binary32 representation.
///
/// # Panics
///
/// Panics if `bit >= 32`.
///
/// # Examples
///
/// ```
/// use bdlfi_faults::bits::flip_bit;
/// // Flipping the sign bit negates.
/// assert_eq!(flip_bit(1.5, 31), -1.5);
/// // Flipping twice restores (XOR involution).
/// assert_eq!(flip_bit(flip_bit(0.1, 7), 7), 0.1);
/// ```
pub fn flip_bit(x: f32, bit: u8) -> f32 {
    assert!(bit < WORD_BITS, "bit index {bit} out of range");
    f32::from_bits(x.to_bits() ^ (1u32 << bit))
}

/// XORs a full 32-bit mask into a float's representation.
pub fn xor_bits(x: f32, mask: u32) -> f32 {
    f32::from_bits(x.to_bits() ^ mask)
}

/// A contiguous range of injectable bit positions `[lo, hi)`.
///
/// Used to restrict fault models to architecturally interesting fields
/// (sign / exponent / mantissa) for the bit-position ablation (EXPERIMENTS
/// E7); the paper's base model uses [`BitRange::all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitRange {
    lo: u8,
    hi: u8,
}

impl BitRange {
    /// All 32 bits — the paper's fault model.
    pub fn all() -> Self {
        BitRange { lo: 0, hi: 32 }
    }

    /// Only the sign bit.
    pub fn sign() -> Self {
        BitRange { lo: 31, hi: 32 }
    }

    /// The 8 exponent bits.
    pub fn exponent() -> Self {
        BitRange { lo: 23, hi: 31 }
    }

    /// The 23 mantissa bits.
    pub fn mantissa() -> Self {
        BitRange { lo: 0, hi: 23 }
    }

    /// A custom `[lo, hi)` range.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi <= 32`.
    pub fn new(lo: u8, hi: u8) -> Self {
        assert!(lo < hi && hi <= WORD_BITS, "invalid bit range [{lo}, {hi})");
        BitRange { lo, hi }
    }

    /// Number of bits in the range.
    pub fn len(&self) -> u8 {
        self.hi - self.lo
    }

    /// Whether the range is empty (never true for constructed ranges).
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Whether `bit` falls in the range.
    pub fn contains(&self, bit: u8) -> bool {
        (self.lo..self.hi).contains(&bit)
    }

    /// The `i`-th bit position of the range (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn nth(&self, i: u8) -> u8 {
        assert!(i < self.len(), "bit offset {i} out of range");
        self.lo + i
    }
}

impl Default for BitRange {
    /// Defaults to all 32 bits, matching the paper.
    fn default() -> Self {
        BitRange::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sign_flip_negates() {
        assert_eq!(flip_bit(2.5, SIGN_BIT), -2.5);
        assert_eq!(flip_bit(-0.0, SIGN_BIT), 0.0);
    }

    #[test]
    fn exponent_flip_scales_by_power_of_two() {
        // Bit 23 is the exponent LSB: flipping it on 1.0 (exp=127) gives
        // exp=126 -> 0.5.
        assert_eq!(flip_bit(1.0, 23), 0.5);
        // The top exponent bit turns 1.0 into a huge number.
        assert!(flip_bit(1.0, 30) > 1e30);
    }

    #[test]
    fn mantissa_flip_perturbs_slightly() {
        let y = flip_bit(1.0, 0);
        assert!(y != 1.0 && (y - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_32_rejected() {
        flip_bit(1.0, 32);
    }

    #[test]
    fn ranges_partition_the_word() {
        let (s, e, m) = (BitRange::sign(), BitRange::exponent(), BitRange::mantissa());
        assert_eq!(s.len() + e.len() + m.len(), 32);
        for bit in 0..32u8 {
            let count = [s, e, m].iter().filter(|r| r.contains(bit)).count();
            assert_eq!(count, 1, "bit {bit} in {count} fields");
        }
    }

    #[test]
    fn nth_enumerates_range() {
        let e = BitRange::exponent();
        let bits: Vec<u8> = (0..e.len()).map(|i| e.nth(i)).collect();
        assert_eq!(bits, vec![23, 24, 25, 26, 27, 28, 29, 30]);
    }

    #[test]
    #[should_panic(expected = "invalid bit range")]
    fn backwards_range_rejected() {
        BitRange::new(5, 5);
    }

    proptest! {
        #[test]
        fn flip_is_involution(x in proptest::num::f32::ANY, bit in 0u8..32) {
            let y = flip_bit(flip_bit(x, bit), bit);
            // Compare representations: NaN != NaN as floats.
            prop_assert_eq!(y.to_bits(), x.to_bits());
        }

        #[test]
        fn xor_composes(x in -1e10f32..1e10, a in proptest::num::u32::ANY, b in proptest::num::u32::ANY) {
            let lhs = xor_bits(xor_bits(x, a), b);
            let rhs = xor_bits(x, a ^ b);
            prop_assert_eq!(lhs.to_bits(), rhs.to_bits());
        }
    }
}
