//! Sparse XOR fault masks over tensors.
//!
//! A [`FaultMask`] records, per affected element, the 32-bit XOR pattern to
//! apply — the `e` of the paper's `W′ = e ⊙ W`. Masks are sparse because at
//! realistic flip probabilities only a tiny fraction of elements is hit.

use bdlfi_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A sparse set of per-element XOR patterns for a tensor of known length.
///
/// Applying a mask twice restores the original tensor (XOR involution),
/// which is how injections are undone without copying weights.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultMask {
    // Sorted by element index; at most one entry per element.
    entries: Vec<(usize, u32)>,
}

impl FaultMask {
    /// The empty mask (no faults).
    pub fn empty() -> Self {
        FaultMask {
            entries: Vec::new(),
        }
    }

    /// Builds a mask from `(element_index, xor_pattern)` pairs.
    ///
    /// Duplicate element indices are combined by XOR; zero patterns are
    /// dropped.
    pub fn from_entries(mut entries: Vec<(usize, u32)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, u32)> = Vec::with_capacity(entries.len());
        for (i, m) in entries {
            match merged.last_mut() {
                Some((j, acc)) if *j == i => *acc ^= m,
                _ => merged.push((i, m)),
            }
        }
        merged.retain(|&(_, m)| m != 0);
        FaultMask { entries: merged }
    }

    /// Adds a single-bit flip at `(element, bit)`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn push_bit(&mut self, element: usize, bit: u8) {
        assert!(bit < 32, "bit index {bit} out of range");
        *self = FaultMask::from_entries(
            self.entries
                .iter()
                .copied()
                .chain(std::iter::once((element, 1u32 << bit)))
                .collect(),
        );
    }

    /// Whether the mask flips nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of affected elements.
    pub fn affected_elements(&self) -> usize {
        self.entries.len()
    }

    /// Total number of flipped bits.
    pub fn bit_count(&self) -> u32 {
        self.entries.iter().map(|&(_, m)| m.count_ones()).sum()
    }

    /// The `(element, pattern)` entries, sorted by element.
    pub fn entries(&self) -> &[(usize, u32)] {
        &self.entries
    }

    /// Applies the mask to a tensor in place.
    ///
    /// # Panics
    ///
    /// Panics if an entry indexes beyond the tensor.
    pub fn apply(&self, tensor: &mut Tensor) {
        let data = tensor.data_mut();
        for &(i, m) in &self.entries {
            data[i] = f32::from_bits(data[i].to_bits() ^ m);
        }
    }

    /// Applies the mask directly to a mutable slice (for activations).
    ///
    /// # Panics
    ///
    /// Panics if an entry indexes beyond the slice.
    pub fn apply_slice(&self, data: &mut [f32]) {
        for &(i, m) in &self.entries {
            data[i] = f32::from_bits(data[i].to_bits() ^ m);
        }
    }

    /// Applies the mask to a slice of quantized int8 weights.
    ///
    /// Only the low 8 bits of each pattern are meaningful for an
    /// [`crate::bits::Repr::I8`] site; higher pattern bits have no storage
    /// to land in and are ignored (a width-respecting fault model never
    /// produces them).
    ///
    /// # Panics
    ///
    /// Panics if an entry indexes beyond the slice.
    pub fn apply_slice_i8(&self, data: &mut [i8]) {
        for &(i, m) in &self.entries {
            data[i] = (data[i] as u8 ^ (m as u8)) as i8;
        }
    }

    /// Applies the mask to a slice of quantized i32 words (biases,
    /// zero-points, accumulators).
    ///
    /// # Panics
    ///
    /// Panics if an entry indexes beyond the slice.
    pub fn apply_slice_i32(&self, data: &mut [i32]) {
        for &(i, m) in &self.entries {
            data[i] ^= m as i32;
        }
    }

    /// XOR-composes two masks: the result of applying both.
    pub fn merged(&self, other: &FaultMask) -> FaultMask {
        FaultMask::from_entries(
            self.entries
                .iter()
                .chain(other.entries.iter())
                .copied()
                .collect(),
        )
    }

    /// Hamming distance in injected-bit space between two masks — used as
    /// the proposal step size in MCMC moves over fault configurations.
    pub fn hamming_distance(&self, other: &FaultMask) -> u32 {
        self.merged(other).bit_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duplicate_entries_merge_by_xor() {
        let m = FaultMask::from_entries(vec![(3, 0b01), (3, 0b11), (1, 0b100)]);
        assert_eq!(m.entries(), &[(1, 0b100), (3, 0b10)]);
        assert_eq!(m.bit_count(), 2);
    }

    #[test]
    fn self_cancelling_entries_vanish() {
        let m = FaultMask::from_entries(vec![(5, 0xFF), (5, 0xFF)]);
        assert!(m.is_empty());
    }

    #[test]
    fn apply_is_involution() {
        let mut t = Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.0], [4]);
        let orig = t.clone();
        let m = FaultMask::from_entries(vec![(0, 1 << 31), (2, 1 << 23), (3, 0b1010)]);
        m.apply(&mut t);
        assert!(!t.approx_eq(&orig, 0.0));
        assert_eq!(t.data()[0], -1.0); // sign flip
        m.apply(&mut t);
        assert_eq!(t, orig);
    }

    #[test]
    fn push_bit_accumulates() {
        let mut m = FaultMask::empty();
        m.push_bit(0, 3);
        m.push_bit(0, 5);
        m.push_bit(1, 0);
        assert_eq!(m.entries(), &[(0, 0b101000), (1, 1)]);
        // Pushing the same bit again cancels it.
        m.push_bit(0, 3);
        assert_eq!(m.entries(), &[(0, 0b100000), (1, 1)]);
    }

    #[test]
    fn hamming_distance_counts_differing_bits() {
        let a = FaultMask::from_entries(vec![(0, 0b11)]);
        let b = FaultMask::from_entries(vec![(0, 0b10), (1, 0b1)]);
        // Differ in bit 0 of elem 0, and bit 0 of elem 1.
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn integer_apply_is_involution() {
        let m = FaultMask::from_entries(vec![(0, 1 << 7), (2, 0b101)]);
        let mut bytes: Vec<i8> = vec![1, -2, 3, 127];
        let orig = bytes.clone();
        m.apply_slice_i8(&mut bytes);
        assert_ne!(bytes, orig);
        assert_eq!(bytes[0], flip(1, 7));
        m.apply_slice_i8(&mut bytes);
        assert_eq!(bytes, orig);

        let m32 = FaultMask::from_entries(vec![(1, 1 << 31), (3, 0xFFFF)]);
        let mut words: Vec<i32> = vec![0, 1, -5, i32::MAX];
        let worig = words.clone();
        m32.apply_slice_i32(&mut words);
        assert_ne!(words, worig);
        m32.apply_slice_i32(&mut words);
        assert_eq!(words, worig);

        fn flip(x: i8, bit: u8) -> i8 {
            crate::bits::flip_bit_u8(x, bit)
        }
    }

    proptest! {
        #[test]
        fn merged_apply_equals_sequential_apply(
            e1 in proptest::collection::vec((0usize..8, proptest::num::u32::ANY), 0..6),
            e2 in proptest::collection::vec((0usize..8, proptest::num::u32::ANY), 0..6),
            vals in proptest::collection::vec(-100.0f32..100.0, 8),
        ) {
            let a = FaultMask::from_entries(e1);
            let b = FaultMask::from_entries(e2);
            let mut t1 = Tensor::from_vec(vals.clone(), [8]);
            let mut t2 = Tensor::from_vec(vals, [8]);
            a.apply(&mut t1);
            b.apply(&mut t1);
            a.merged(&b).apply(&mut t2);
            let bits1: Vec<u32> = t1.data().iter().map(|x| x.to_bits()).collect();
            let bits2: Vec<u32> = t2.data().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(bits1, bits2);
        }

        #[test]
        fn involution_holds_for_arbitrary_masks(
            entries in proptest::collection::vec((0usize..16, proptest::num::u32::ANY), 0..10),
            vals in proptest::collection::vec(proptest::num::f32::ANY, 16),
        ) {
            let m = FaultMask::from_entries(entries);
            let orig: Vec<u32> = vals.iter().map(|x| x.to_bits()).collect();
            let mut t = Tensor::from_vec(vals, [16]);
            m.apply(&mut t);
            m.apply(&mut t);
            let back: Vec<u32> = t.data().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(back, orig);
        }
    }
}
