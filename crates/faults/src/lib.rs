//! # bdlfi-faults
//!
//! Fault-model substrate for the BDLFI reproduction ("Towards a Bayesian
//! Approach for Assessing Fault Tolerance of Deep Neural Networks",
//! DSN 2019).
//!
//! Implements the paper's fault model (Section II): transient faults in the
//! memory holding network parameters, inputs, activations and outputs,
//! modelled as independent per-bit Bernoulli flips over the IEEE-754
//! binary32 representation, with the flip probability `p` derived from the
//! architectural vulnerability factor (AVF). Injection is a bitwise XOR
//! (`W′ = e ⊙ W`), so applying a configuration twice restores the golden
//! weights exactly.
//!
//! * [`bits`] — IEEE-754 bit manipulation and injectable [`BitRange`]s;
//! * [`FaultMask`] — sparse per-element XOR patterns;
//! * [`FaultModel`] implementations: [`BernoulliBitFlip`] (the paper's
//!   model), [`SingleBitFlip`] and [`ExactKBitFlips`] (classical baseline
//!   models), [`PerBitAvf`] (position-dependent vulnerability);
//! * [`AvfModel`] — `p = raw_ber × avf` decomposition;
//! * [`SiteSpec`] / [`resolve_sites`] — addressing injection sites;
//! * [`FaultConfig`] — a joint fault outcome (the MCMC state), applied and
//!   undone by XOR;
//! * [`StuckAtFault`] — permanent stuck-at-0/1 faults with exact
//!   undo logs (the paper's "can be extended to other fault models").
//!
//! # Examples
//!
//! ```
//! use bdlfi_faults::{BernoulliBitFlip, FaultConfig, resolve_sites, SiteSpec};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = bdlfi_nn::mlp(2, &[8], 2, &mut rng);
//! let sites = resolve_sites(&model, &SiteSpec::AllParams);
//! let cfg = FaultConfig::sample(&sites.params, &BernoulliBitFlip::new(0.001), &mut rng);
//! let logits = cfg.with_applied(&mut model, |m| m.predict(&bdlfi_tensor::Tensor::zeros([1, 2])));
//! assert_eq!(logits.dims(), &[1, 2]);
//! ```

#![warn(missing_docs)]

pub mod avf;
pub mod bits;
mod inject;
mod mask;
mod model;
mod site;
mod stuck;

pub use avf::{AvfModel, PerBitAvf};
pub use bits::{BitRange, Repr};
pub use inject::{injection_space_bits, FaultConfig};
pub use mask::FaultMask;
pub use model::{BernoulliBitFlip, ExactKBitFlips, FaultModel, SingleBitFlip};
pub use site::{resolve_sites, ParamSite, ResolvedSites, SiteSpec};
pub use stuck::{StuckAtFault, StuckBit, StuckUndo};
