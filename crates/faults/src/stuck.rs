//! Stuck-at faults — the paper's "BDLFI can also be extended to other
//! fault models".
//!
//! A stuck-at fault forces a bit to a fixed value (0 or 1) rather than
//! inverting it, modelling permanent cell defects instead of transient
//! upsets. Unlike XOR masks, stuck-at application is *not* an involution,
//! so applying one returns an [`StuckUndo`] log that restores the original
//! bits exactly.

use bdlfi_tensor::Tensor;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One stuck bit: element index, bit position and the stuck value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckBit {
    /// Element index within the tensor.
    pub element: usize,
    /// Bit position (0 = mantissa LSB, 31 = sign).
    pub bit: u8,
    /// `true` = stuck-at-1, `false` = stuck-at-0.
    pub value: bool,
}

/// A set of stuck-at faults over one tensor.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StuckAtFault {
    bits: Vec<StuckBit>,
}

/// The restoration log returned by [`StuckAtFault::apply`].
///
/// Holds the original 32-bit words of every element the fault touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckUndo {
    saved: Vec<(usize, u32)>,
}

impl StuckAtFault {
    /// Creates a fault set from stuck bits.
    ///
    /// # Panics
    ///
    /// Panics if any bit position is ≥ 32.
    pub fn new(bits: Vec<StuckBit>) -> Self {
        assert!(bits.iter().all(|b| b.bit < 32), "bit position out of range");
        StuckAtFault { bits }
    }

    /// Samples `count` stuck bits uniformly over `(element, bit, value)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` and `count > 0`.
    pub fn sample(len: usize, count: usize, rng: &mut dyn Rng) -> Self {
        assert!(
            len > 0 || count == 0,
            "cannot sample faults over an empty tensor"
        );
        let bits = (0..count)
            .map(|_| StuckBit {
                element: rng.random_range(0..len),
                bit: rng.random_range(0..32u8),
                value: rng.random::<bool>(),
            })
            .collect();
        StuckAtFault { bits }
    }

    /// The stuck bits.
    pub fn bits(&self) -> &[StuckBit] {
        &self.bits
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Forces the stuck bits in `tensor`, returning the undo log.
    ///
    /// # Panics
    ///
    /// Panics if an element index is out of bounds.
    pub fn apply(&self, tensor: &mut Tensor) -> StuckUndo {
        let data = tensor.data_mut();
        let mut saved = Vec::with_capacity(self.bits.len());
        for b in &self.bits {
            saved.push((b.element, data[b.element].to_bits()));
            let word = data[b.element].to_bits();
            let forced = if b.value {
                word | (1u32 << b.bit)
            } else {
                word & !(1u32 << b.bit)
            };
            data[b.element] = f32::from_bits(forced);
        }
        StuckUndo { saved }
    }

    /// Applies the fault, runs `f`, restores the tensor exactly.
    pub fn with_applied<T>(&self, tensor: &mut Tensor, f: impl FnOnce(&mut Tensor) -> T) -> T {
        let undo = self.apply(tensor);
        let out = f(tensor);
        undo.restore(tensor);
        out
    }

    /// Number of bits that would actually change in `tensor` (a stuck-at
    /// fault whose cell already holds the stuck value is *masked*).
    pub fn effective_changes(&self, tensor: &Tensor) -> usize {
        self.bits
            .iter()
            .filter(|b| {
                let word = tensor.data()[b.element].to_bits();
                let current = word & (1u32 << b.bit) != 0;
                current != b.value
            })
            .count()
    }
}

impl StuckUndo {
    /// Restores the saved words (in reverse application order, so
    /// overlapping faults unwind correctly).
    ///
    /// # Panics
    ///
    /// Panics if an element index is out of bounds.
    pub fn restore(&self, tensor: &mut Tensor) {
        let data = tensor.data_mut();
        for &(element, word) in self.saved.iter().rev() {
            data[element] = f32::from_bits(word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stuck_at_one_sets_the_bit() {
        let mut t = Tensor::from_vec(vec![1.0], [1]);
        let f = StuckAtFault::new(vec![StuckBit {
            element: 0,
            bit: 31,
            value: true,
        }]);
        let undo = f.apply(&mut t);
        assert_eq!(t.data()[0], -1.0); // sign forced on
        undo.restore(&mut t);
        assert_eq!(t.data()[0], 1.0);
    }

    #[test]
    fn stuck_at_current_value_is_masked() {
        let mut t = Tensor::from_vec(vec![-2.0], [1]);
        let f = StuckAtFault::new(vec![StuckBit {
            element: 0,
            bit: 31,
            value: true,
        }]);
        assert_eq!(f.effective_changes(&t), 0); // sign already set
        let before = t.data()[0].to_bits();
        let undo = f.apply(&mut t);
        assert_eq!(t.data()[0].to_bits(), before);
        undo.restore(&mut t);
    }

    #[test]
    fn with_applied_restores_after_use() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = Tensor::rand_normal([64], 0.0, 1.0, &mut rng);
        let orig: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
        let f = StuckAtFault::sample(64, 10, &mut rng);
        let changed = f.with_applied(&mut t, |t| {
            t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        });
        assert_ne!(changed, orig); // overwhelmingly likely with 10 faults
        let back: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(back, orig);
    }

    #[test]
    fn overlapping_faults_unwind_correctly() {
        // Two faults on the same element/bit with opposite values: the
        // second wins while applied, restore unwinds to the original.
        let mut t = Tensor::from_vec(vec![1.0], [1]);
        let f = StuckAtFault::new(vec![
            StuckBit {
                element: 0,
                bit: 31,
                value: true,
            },
            StuckBit {
                element: 0,
                bit: 31,
                value: false,
            },
        ]);
        let undo = f.apply(&mut t);
        assert_eq!(t.data()[0], 1.0); // second fault forced sign back to 0
        undo.restore(&mut t);
        assert_eq!(t.data()[0], 1.0);
    }

    #[test]
    fn sample_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = StuckAtFault::sample(5, 100, &mut rng);
        assert!(f.bits().iter().all(|b| b.element < 5 && b.bit < 32));
        assert_eq!(f.bits().len(), 100);
    }

    proptest! {
        #[test]
        fn apply_restore_is_identity(
            vals in proptest::collection::vec(proptest::num::f32::ANY, 8),
            seed in 0u64..1000,
            count in 0usize..12,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tensor::from_vec(vals, [8]);
            let orig: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
            let f = StuckAtFault::sample(8, count, &mut rng);
            let undo = f.apply(&mut t);
            undo.restore(&mut t);
            let back: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(back, orig);
        }

        #[test]
        fn applied_bits_hold_their_stuck_value(
            seed in 0u64..1000,
            count in 1usize..8,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tensor::rand_normal([16], 0.0, 1.0, &mut rng);
            let f = StuckAtFault::sample(16, count, &mut rng);
            let undo = f.apply(&mut t);
            // Last-applied fault per (element, bit) wins.
            let mut expected: std::collections::HashMap<(usize, u8), bool> =
                std::collections::HashMap::new();
            for b in f.bits() {
                expected.insert((b.element, b.bit), b.value);
            }
            for ((element, bit), value) in expected {
                let word = t.data()[element].to_bits();
                prop_assert_eq!(word & (1 << bit) != 0, value);
            }
            undo.restore(&mut t);
        }
    }
}
