//! Architectural vulnerability factor (AVF) modelling.
//!
//! The paper derives the per-bit flip probability `p` from the memory's AVF:
//! `p` is the probability that a raw transient upset both occurs and
//! matters. [`AvfModel`] captures the standard decomposition
//! `p = raw_ber × avf`, and [`PerBitAvf`] generalises it to position-
//! dependent vulnerability (exponent bits of a float are architecturally
//! more critical than low mantissa bits — the E7 ablation measures exactly
//! this).

use crate::bits::{BitRange, Repr, WORD_BITS};
use crate::mask::FaultMask;
use crate::model::{BernoulliBitFlip, FaultModel};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Uniform AVF: one flip probability for every bit position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvfModel {
    /// Raw bit error rate of the memory technology (per bit, per program
    /// execution).
    pub raw_ber: f64,
    /// Architectural vulnerability factor in `[0, 1]`.
    pub avf: f64,
}

impl AvfModel {
    /// Creates an AVF model.
    ///
    /// # Panics
    ///
    /// Panics unless `raw_ber` and `avf` are in `[0, 1]`.
    pub fn new(raw_ber: f64, avf: f64) -> Self {
        assert!((0.0..=1.0).contains(&raw_ber), "raw_ber must be in [0, 1]");
        assert!((0.0..=1.0).contains(&avf), "avf must be in [0, 1]");
        AvfModel { raw_ber, avf }
    }

    /// The effective per-bit flip probability `p = raw_ber × avf` — the `p`
    /// of the paper's Bernoulli fault model.
    pub fn flip_probability(&self) -> f64 {
        self.raw_ber * self.avf
    }

    /// The Bernoulli fault model induced by this AVF.
    pub fn to_fault_model(self) -> BernoulliBitFlip {
        BernoulliBitFlip::new(self.flip_probability())
    }

    /// The Bernoulli fault model induced by this AVF over the word width
    /// of `repr`: the per-bit probability is unchanged (it is a property
    /// of the memory cell, not the datatype), but the injectable space is
    /// `repr.width()` bits per element — an int8 element therefore absorbs
    /// 4× fewer expected upsets than an f32 one.
    pub fn to_fault_model_for(self, repr: Repr) -> BernoulliBitFlip {
        BernoulliBitFlip::with_bits(self.flip_probability(), BitRange::all_for(repr))
    }
}

/// Position-dependent AVF: an independent flip probability per bit
/// position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerBitAvf {
    probs: [f64; WORD_BITS as usize],
}

impl PerBitAvf {
    /// Creates a per-bit model from 32 probabilities (index 0 = mantissa
    /// LSB, 31 = sign).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(probs: [f64; WORD_BITS as usize]) -> Self {
        assert!(
            probs.iter().all(|p| (0.0..=1.0).contains(p)),
            "all per-bit probabilities must be in [0, 1]"
        );
        PerBitAvf { probs }
    }

    /// Uniform per-bit probability (equivalent to [`AvfModel`]).
    pub fn uniform(p: f64) -> Self {
        Self::new([p; WORD_BITS as usize])
    }

    /// The flip probability of a bit position.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn prob(&self, bit: u8) -> f64 {
        self.probs[bit as usize]
    }

    /// The model restricted to the word width of `repr`: positions at or
    /// above `repr.width()` have no storage and get probability zero.
    pub fn clamped_to(&self, repr: Repr) -> Self {
        let mut probs = self.probs;
        for p in probs.iter_mut().skip(repr.width() as usize) {
            *p = 0.0;
        }
        PerBitAvf { probs }
    }
}

impl FaultModel for PerBitAvf {
    fn sample_mask(&self, len: usize, rng: &mut dyn Rng) -> FaultMask {
        let mut entries = Vec::new();
        for (bit, &p) in self.probs.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            if p >= 1.0 {
                for elem in 0..len {
                    entries.push((elem, 1u32 << bit));
                }
                continue;
            }
            // Geometric skipping across elements for this bit position.
            let log1m = (1.0 - p).ln();
            let mut pos = 0usize;
            loop {
                let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let gap = (u.ln() / log1m).floor() as usize;
                pos = match pos.checked_add(gap) {
                    Some(q) if q < len => q,
                    _ => break,
                };
                entries.push((pos, 1u32 << bit));
                pos += 1;
                if pos >= len {
                    break;
                }
            }
        }
        FaultMask::from_entries(entries)
    }

    fn log_prob(&self, mask: &FaultMask, len: usize) -> Option<f64> {
        // Product over (elem, bit) pairs.
        let mut flipped = vec![0u32; len];
        for &(elem, pattern) in mask.entries() {
            if elem >= len {
                return Some(f64::NEG_INFINITY);
            }
            flipped[elem] = pattern;
        }
        let mut lp = 0.0f64;
        for bit in 0..WORD_BITS {
            let p = self.probs[bit as usize];
            let k = flipped
                .iter()
                .filter(|&&pattern| pattern & (1 << bit) != 0)
                .count() as f64;
            let n = len as f64;
            if p == 0.0 {
                if k > 0.0 {
                    return Some(f64::NEG_INFINITY);
                }
            } else if p == 1.0 {
                if k < n {
                    return Some(f64::NEG_INFINITY);
                }
            } else {
                lp += k * p.ln() + (n - k) * (1.0 - p).ln();
            }
        }
        Some(lp)
    }

    fn expected_flips(&self, len: usize) -> f64 {
        self.probs.iter().sum::<f64>() * len as f64
    }

    fn sample_mask_for(&self, len: usize, repr: Repr, rng: &mut dyn Rng) -> FaultMask {
        self.clamped_to(repr).sample_mask(len, rng)
    }

    fn log_prob_for(&self, mask: &FaultMask, len: usize, repr: Repr) -> Option<f64> {
        self.clamped_to(repr).log_prob(mask, len)
    }

    fn expected_flips_for(&self, len: usize, repr: Repr) -> f64 {
        self.clamped_to(repr).expected_flips(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn avf_scales_raw_ber() {
        let m = AvfModel::new(1e-3, 0.2);
        assert!((m.flip_probability() - 2e-4).abs() < 1e-12);
        let fm = m.to_fault_model();
        assert!((fm.p - 2e-4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "avf must be in")]
    fn avf_out_of_range_rejected() {
        AvfModel::new(0.1, 1.5);
    }

    #[test]
    fn per_bit_uniform_matches_bernoulli_expectation() {
        let per_bit = PerBitAvf::uniform(0.01);
        let bern = BernoulliBitFlip::new(0.01);
        assert!((per_bit.expected_flips(100) - bern.expected_flips(100)).abs() < 1e-9);
    }

    #[test]
    fn per_bit_only_flips_enabled_positions() {
        let mut probs = [0.0f64; 32];
        probs[31] = 0.5; // sign only
        let model = PerBitAvf::new(probs);
        let mut rng = StdRng::seed_from_u64(0);
        let mask = model.sample_mask(200, &mut rng);
        assert!(!mask.is_empty());
        for &(_, pattern) in mask.entries() {
            assert_eq!(pattern & !(1 << 31), 0);
        }
    }

    #[test]
    fn avf_fault_model_scales_to_word_width() {
        let m = AvfModel::new(1e-3, 0.5);
        let f32_model = m.to_fault_model_for(Repr::F32);
        let i8_model = m.to_fault_model_for(Repr::I8);
        // Same per-bit probability, quarter the injectable space.
        assert_eq!(f32_model.p, i8_model.p);
        assert!((f32_model.expected_flips(100) / i8_model.expected_flips(100) - 4.0).abs() < 1e-9);
        assert_eq!(i8_model.bits, BitRange::all_for(Repr::I8));
    }

    #[test]
    fn per_bit_clamps_to_word_width() {
        let model = PerBitAvf::uniform(0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let mask = model.sample_mask_for(100, Repr::I8, &mut rng);
        assert!(!mask.is_empty());
        for &(_, pattern) in mask.entries() {
            assert_eq!(pattern & !0xFF, 0);
        }
        assert!((model.expected_flips_for(10, Repr::I8) - 0.3 * 8.0 * 10.0).abs() < 1e-9);
        // A flip above the width has zero probability.
        let high = FaultMask::from_entries(vec![(0, 1 << 20)]);
        assert_eq!(
            model.log_prob_for(&high, 10, Repr::I8),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn per_bit_log_prob_uniform_matches_bernoulli() {
        let per_bit = PerBitAvf::uniform(0.05);
        let bern = BernoulliBitFlip::new(0.05);
        let mask = FaultMask::from_entries(vec![(0, 0b101), (3, 1 << 30)]);
        let a = per_bit.log_prob(&mask, 5).unwrap();
        let b = bern.log_prob(&mask, 5).unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn per_bit_sampling_respects_relative_rates() {
        let mut probs = [0.0f64; 32];
        probs[0] = 0.02;
        probs[1] = 0.002;
        let model = PerBitAvf::new(probs);
        let mut rng = StdRng::seed_from_u64(1);
        let (mut c0, mut c1) = (0u32, 0u32);
        for _ in 0..200 {
            let m = model.sample_mask(100, &mut rng);
            for &(_, pattern) in m.entries() {
                c0 += pattern & 1;
                c1 += (pattern >> 1) & 1;
            }
        }
        assert!(c0 > 4 * c1, "bit0 {c0} vs bit1 {c1}");
    }
}
