//! The paper's "Bayesian Network based Failure Model" (Fig. 1 ②), built
//! explicitly: for every bit of every weight and bias of a dense layer a
//! Bernoulli leaf `bᵢ ~ Bernoulli(p)`, a deterministic XOR node per
//! parameter `w′ = e ⊙ w`, and a deterministic activation node
//! `y′ = max(0, W′ᵀ x + b′)` per output unit.
//!
//! The campaign hot path uses the fused implementation in
//! [`crate::FaultyModel`]; this module is the *specification* — slow,
//! explicit, testable node by node — and the regression tests that pin the
//! fused path to it are the strongest fidelity evidence in the repository.

use bdlfi_bayes::dist::Bernoulli;
use bdlfi_bayes::graph::{BayesNet, NodeId};
use bdlfi_tensor::Tensor;

/// Handles into a [`dense_fault_net`]: the network plus the node ids of
/// its interesting layers.
#[derive(Debug)]
pub struct DenseFaultNet {
    /// The explicit graphical model.
    pub net: BayesNet,
    /// Faulty-weight nodes, row-major `(in, out)` order.
    pub faulty_weights: Vec<NodeId>,
    /// Faulty-bias nodes, one per output unit.
    pub faulty_biases: Vec<NodeId>,
    /// Post-ReLU output nodes, one per output unit.
    pub outputs: Vec<NodeId>,
}

/// Builds the explicit Bayesian failure model of a dense layer
/// `y = relu(xᵀW + b)` under per-bit Bernoulli faults on `W` and `b`.
///
/// Node count is `32·(|W| + |b|)` Bernoulli leaves plus one deterministic
/// node per parameter and per output — exact but exponential in neither;
/// still, keep the layer small (this is a specification, not a kernel).
///
/// # Panics
///
/// Panics if shapes are inconsistent or `p` is not a probability.
pub fn dense_fault_net(weight: &Tensor, bias: &Tensor, x: &[f32], p: f64) -> DenseFaultNet {
    assert_eq!(weight.rank(), 2, "weight must be (in, out)");
    let (in_dim, out_dim) = (weight.dim(0), weight.dim(1));
    assert_eq!(bias.dims(), &[out_dim], "bias must match weight columns");
    assert_eq!(x.len(), in_dim, "input must match weight rows");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");

    let mut net = BayesNet::new();

    // One faulty-parameter node per scalar: 32 Bernoulli bit leaves feeding
    // a deterministic XOR node (the paper's `W' = e ⊙ W`).
    let faulty_scalar = |net: &mut BayesNet, name: &str, value: f32| -> NodeId {
        let bits: Vec<NodeId> = (0..32)
            .map(|k| net.add_stochastic(format!("{name}.b{k}"), Bernoulli::new(p)))
            .collect();
        net.add_deterministic(format!("{name}.faulty"), bits, move |bit_values| {
            let mut mask = 0u32;
            for (k, &b) in bit_values.iter().enumerate() {
                if b == 1.0 {
                    mask |= 1u32 << k;
                }
            }
            f64::from(f32::from_bits(value.to_bits() ^ mask))
        })
    };

    let mut faulty_weights = Vec::with_capacity(in_dim * out_dim);
    for i in 0..in_dim {
        for j in 0..out_dim {
            let w = weight.at(&[i, j]);
            faulty_weights.push(faulty_scalar(&mut net, &format!("w[{i}][{j}]"), w));
        }
    }
    let mut faulty_biases = Vec::with_capacity(out_dim);
    for j in 0..out_dim {
        faulty_biases.push(faulty_scalar(&mut net, &format!("b[{j}]"), bias.at(&[j])));
    }

    // y'_j = max(0, sum_i x_i w'_ij + b'_j)  — the paper's activation node.
    let x_owned: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
    let mut outputs = Vec::with_capacity(out_dim);
    for j in 0..out_dim {
        let mut parents: Vec<NodeId> = (0..in_dim)
            .map(|i| faulty_weights[i * out_dim + j])
            .collect();
        parents.push(faulty_biases[j]);
        let xs = x_owned.clone();
        outputs.push(
            net.add_deterministic(format!("y[{j}]"), parents, move |vals| {
                let (ws, b) = vals.split_at(vals.len() - 1);
                let z: f64 = ws.iter().zip(xs.iter()).map(|(w, x)| w * x).sum::<f64>() + b[0];
                z.max(0.0)
            }),
        );
    }

    DenseFaultNet {
        net,
        faulty_weights,
        faulty_biases,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_faults::{BernoulliBitFlip, FaultConfig, ParamSite};
    use bdlfi_nn::layers::Dense;
    use bdlfi_nn::{ForwardCtx, Layer, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_layer() -> (Tensor, Tensor, Vec<f32>) {
        (
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25], [2, 2]),
            Tensor::from_vec(vec![0.1, -0.2], [2]),
            vec![1.0, -0.5],
        )
    }

    #[test]
    fn node_count_matches_the_paper_formula() {
        let (w, b, x) = tiny_layer();
        let dfn = dense_fault_net(&w, &b, &x, 0.01);
        // 32 bit leaves + 1 XOR node per scalar parameter, + 1 output node
        // per unit: (4 + 2) * 33 + 2.
        assert_eq!(dfn.net.len(), 6 * 33 + 2);
        assert_eq!(dfn.faulty_weights.len(), 4);
        assert_eq!(dfn.faulty_biases.len(), 2);
        assert_eq!(dfn.outputs.len(), 2);
    }

    #[test]
    fn p_zero_reproduces_the_clean_layer() {
        let (w, b, x) = tiny_layer();
        let dfn = dense_fault_net(&w, &b, &x, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let sample = dfn.net.sample(&mut rng);

        // Reference: the real Dense layer.
        let mut dense = Dense::from_weights(w, b);
        let y = dense.forward(
            &Tensor::from_vec(x.clone(), [1, 2]),
            &mut ForwardCtx::new(Mode::Eval),
        );
        let y = y.map(|v| v.max(0.0)); // paper layer includes the ReLU
        for (j, &out) in dfn.outputs.iter().enumerate() {
            let graph_y = dfn.net.value(&sample, out);
            assert!(
                (graph_y - f64::from(y.at(&[0, j]))).abs() < 1e-6,
                "output {j}: graph {graph_y} vs dense {}",
                y.at(&[0, j])
            );
        }
    }

    #[test]
    fn graph_deviation_probability_matches_fused_injection() {
        // The headline fidelity test: ancestral sampling of the explicit
        // Fig. 1 (2) network and the fused XOR-injection path must agree on
        // P(|y' - y| > tau) for the same layer, input and p. (Raw means of
        // the faulty output are heavy-tailed — a single exponent-bit flip
        // reaches 1e38 — so a bounded deviation indicator is the right
        // statistic to compare.)
        let (w, b, x) = tiny_layer();
        let p = 0.02;
        let tau = 0.1f64;
        let n = 6000;

        // Clean reference outputs.
        let mut dense_clean = Dense::from_weights(w.clone(), b.clone());
        let y_clean = dense_clean
            .forward(
                &Tensor::from_vec(x.clone(), [1, 2]),
                &mut ForwardCtx::new(Mode::Eval),
            )
            .map(|v| v.max(0.0));

        let deviates = |y: f64, j: usize| -> bool {
            !y.is_finite() || (y - f64::from(y_clean.at(&[0, j]))).abs() > tau
        };

        // Graph path.
        let dfn = dense_fault_net(&w, &b, &x, p);
        let mut rng = StdRng::seed_from_u64(1);
        let mut graph_dev = vec![0.0f64; 2];
        for _ in 0..n {
            let s = dfn.net.sample(&mut rng);
            for (j, &out) in dfn.outputs.iter().enumerate() {
                graph_dev[j] += f64::from(deviates(dfn.net.value(&s, out), j));
            }
        }
        for m in &mut graph_dev {
            *m /= n as f64;
        }

        // Fused path: FaultConfig over the same parameters.
        let dense = Dense::from_weights(w, b);
        let mut seq = bdlfi_nn::Sequential::new();
        seq.push("fc", dense);
        let sites = vec![ParamSite::new("fc.weight", 4), ParamSite::new("fc.bias", 2)];
        let fm = BernoulliBitFlip::new(p);
        let mut rng = StdRng::seed_from_u64(2);
        let xt = Tensor::from_vec(x.clone(), [1, 2]);
        let mut fused_dev = vec![0.0f64; 2];
        for _ in 0..n {
            let cfg = FaultConfig::sample(&sites, &fm, &mut rng);
            let y = cfg.with_applied(&mut seq, |m| m.predict(&xt));
            for (j, dev) in fused_dev.iter_mut().enumerate() {
                *dev += f64::from(deviates(f64::from(y.at(&[0, j]).max(0.0)), j));
            }
        }
        for m in &mut fused_dev {
            *m /= n as f64;
        }

        for j in 0..2 {
            let (a, b) = (graph_dev[j], fused_dev[j]);
            assert!(a > 0.0 && b > 0.0, "both paths must observe deviations");
            assert!(
                (a - b).abs() < 0.03,
                "output {j}: graph deviation prob {a} vs fused {b}"
            );
        }
    }

    #[test]
    fn joint_log_prob_counts_flipped_bits() {
        let (w, b, x) = tiny_layer();
        let p = 0.25;
        let dfn = dense_fault_net(&w, &b, &x, p);
        let mut rng = StdRng::seed_from_u64(3);
        let sample = dfn.net.sample(&mut rng);
        let lp = dfn.net.log_joint(&sample);
        // lp = k ln p + (192 - k) ln(1-p) where k = number of set bits.
        let total_bits = 6.0 * 32.0;
        // Count set leaves directly from the sample: leaves are the first
        // 32 entries of each scalar's 33-node block.
        let mut set = 0.0;
        let mut idx = 0;
        for _scalar in 0..6 {
            for _bit in 0..32 {
                set += sample[idx];
                idx += 1;
            }
            idx += 1; // skip the deterministic XOR node
        }
        let expected = set * p.ln() + (total_bits - set) * (1.0 - p).ln();
        assert!(
            (lp - expected).abs() < 1e-9,
            "lp {lp} vs expected {expected}"
        );
    }
}
