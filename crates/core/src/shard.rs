//! Distributed sharded campaigns: the shard planner and the strict
//! journal-merge verifier.
//!
//! The engine's seed discipline makes every task result a pure function
//! of `(campaign_seed, task_id)`, and journals are fingerprinted JSONL —
//! so a driver's ordered task space `0..n` can be split across N
//! processes (or machines) and reassembled without losing the
//! bit-identical-report guarantee:
//!
//! * A [`ShardPlan`] partitions `0..tasks` into `count` contiguous,
//!   balanced ranges and derives each shard's journal fingerprint from
//!   the *unsharded* journal fingerprint plus the shard count and index
//!   ([`ShardPlan::shard_fingerprint`]), so shards of different plans —
//!   or different positions in the same plan — can never be confused.
//! * Each shard runs the normal engine path over its sub-range
//!   ([`crate::engine::EvalEngine::run_shard_checkpointed`]), writing a
//!   shard journal whose entries carry **global** task ids and whose
//!   header records its [`crate::checkpoint::ShardInfo`]. Crash-safe
//!   resume — replay, torn-tail truncate-and-resume — works per shard,
//!   exactly as for whole-campaign journals.
//! * [`merge_shards`] stitches N shard journals into one journal under
//!   the unsharded header. Because entries already carry global ids in
//!   the single-process serialization, the merge is raw byte
//!   concatenation of the validated entry regions: the merged journal is
//!   **byte-for-byte identical** to the journal a single-process run
//!   writes. Overlap, gap, count/index mismatch, fingerprint mismatch,
//!   duplicate or missing shards, torn tails and short shards are all
//!   typed [`ShardError`]s — never panics, matching the checkpoint
//!   reader's standards.
//!
//! A merged journal turns into a report through the drivers' existing
//! `*_controlled` path with [`crate::engine::CheckpointSpec::finalizing`]:
//! every entry replays, zero tasks run, and the assembled report is the
//! single-process code path verbatim.

use crate::checkpoint::{fingerprint, read_journal, CheckpointError, CheckpointHeader, ShardInfo};
use crate::engine::EngineError;
use std::fmt;
use std::io::Write;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Why a shard plan could not be built, a shard could not run, or a set
/// of shard journals could not be merged. Every variant is typed and
/// recoverable; nothing on this path panics.
#[derive(Debug)]
pub enum ShardError {
    /// The plan parameters are unusable (zero shards, more shards than
    /// tasks, …).
    Plan {
        /// What was wrong with the requested plan.
        detail: String,
    },
    /// A shard index outside `0..count` was addressed.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The plan's shard count.
        count: usize,
    },
    /// A journal offered to the merge carries no shard info — it is a
    /// whole-campaign journal, not a shard.
    NotAShard {
        /// The offending journal.
        path: PathBuf,
    },
    /// A shard journal belongs to a plan with a different shard count.
    CountMismatch {
        /// The offending journal.
        path: PathBuf,
        /// The merging plan's shard count.
        expected: usize,
        /// The count recorded in the journal.
        found: usize,
    },
    /// A shard journal belongs to a campaign with a different total task
    /// count.
    TotalMismatch {
        /// The offending journal.
        path: PathBuf,
        /// The merging plan's total task count.
        expected: usize,
        /// The total recorded in the journal.
        found: usize,
    },
    /// A shard journal was written under a different engine seed.
    SeedMismatch {
        /// The offending journal.
        path: PathBuf,
        /// The merging plan's seed.
        expected: u64,
        /// The seed recorded in the journal.
        found: u64,
    },
    /// A shard journal's fingerprint does not match the plan's derived
    /// fingerprint for its claimed index — it is a shard of a *different*
    /// campaign or plan.
    FingerprintMismatch {
        /// The shard index the journal claims.
        index: usize,
        /// The fingerprint the plan derives for that index.
        expected: String,
        /// The fingerprint found in the journal.
        found: String,
    },
    /// Two journals claim the same shard index.
    DuplicateShard {
        /// The index claimed twice.
        index: usize,
    },
    /// No journal covers this shard index.
    MissingShard {
        /// The uncovered index.
        index: usize,
    },
    /// A shard's claimed range starts before the previous shard's range
    /// ends — the shards overlap.
    Overlap {
        /// The index whose range overlaps its predecessor.
        index: usize,
    },
    /// A shard's claimed range starts after the previous shard's range
    /// ends — the task space has a hole. `index == count` marks a gap
    /// after the final shard.
    Gap {
        /// The index before which the gap opens.
        index: usize,
    },
    /// A shard journal ends in a torn final line. The merge refuses it:
    /// resume the shard (which truncates and recomputes the torn task)
    /// before merging.
    TornTail {
        /// The shard whose journal is torn.
        index: usize,
    },
    /// A shard journal holds fewer entries than its range — the shard has
    /// not finished. Resume it to completion before merging.
    Incomplete {
        /// The unfinished shard.
        index: usize,
        /// Entries present.
        have: usize,
        /// Entries its range requires.
        want: usize,
    },
    /// A shard journal could not be read or validated.
    Checkpoint(CheckpointError),
    /// A shard run failed inside the engine.
    Engine(EngineError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Plan { detail } => write!(f, "invalid shard plan: {detail}"),
            ShardError::IndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range for {count} shards")
            }
            ShardError::NotAShard { path } => {
                write!(f, "{} is not a shard journal", path.display())
            }
            ShardError::CountMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} belongs to a {found}-shard plan, not {expected}",
                path.display()
            ),
            ShardError::TotalMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} covers a {found}-task campaign, not {expected}",
                path.display()
            ),
            ShardError::SeedMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{} was written under engine seed {found}, not {expected}",
                path.display()
            ),
            ShardError::FingerprintMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "shard {index} fingerprint mismatch: plan derives {expected}, journal has {found}"
            ),
            ShardError::DuplicateShard { index } => {
                write!(f, "two journals claim shard {index}")
            }
            ShardError::MissingShard { index } => {
                write!(f, "no journal covers shard {index}")
            }
            ShardError::Overlap { index } => {
                write!(f, "shard {index} overlaps its predecessor's range")
            }
            ShardError::Gap { index } => {
                write!(f, "task space has a gap before shard {index}")
            }
            ShardError::TornTail { index } => write!(
                f,
                "shard {index} ends in a torn line; resume it before merging"
            ),
            ShardError::Incomplete { index, have, want } => write!(
                f,
                "shard {index} is incomplete: {have} of {want} entries; resume it before merging"
            ),
            ShardError::Checkpoint(e) => write!(f, "{e}"),
            ShardError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Checkpoint(e) => Some(e),
            ShardError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ShardError {
    fn from(e: CheckpointError) -> Self {
        ShardError::Checkpoint(e)
    }
}

impl From<EngineError> for ShardError {
    fn from(e: EngineError) -> Self {
        ShardError::Engine(e)
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Checkpoint(CheckpointError::Io(e))
    }
}

/// A deterministic partition of a driver's ordered task space `0..tasks`
/// into `count` contiguous, balanced ranges, bound to the campaign's
/// unsharded journal fingerprint and engine seed.
///
/// Every participant — shard runners, the merge verifier, the finalize
/// step — derives the same plan from the same `(fingerprint, seed,
/// tasks, count)`, so no plan file needs distributing: the spec that
/// identifies the campaign identifies the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    fingerprint: String,
    seed: u64,
    tasks: usize,
    count: usize,
}

impl ShardPlan {
    /// Builds a plan splitting `tasks` tasks into `count` shards.
    /// `fingerprint` is the campaign's **unsharded** journal fingerprint
    /// (what a single-process run of the same spec binds).
    ///
    /// # Errors
    ///
    /// [`ShardError::Plan`] when `count` is zero, `tasks` is zero, or
    /// there are more shards than tasks (an empty shard could never
    /// produce a valid closed journal).
    pub fn new(
        fingerprint: String,
        seed: u64,
        tasks: usize,
        count: usize,
    ) -> Result<Self, ShardError> {
        let plan_err = |detail: String| Err(ShardError::Plan { detail });
        if count == 0 {
            return plan_err("shard count must be positive".to_string());
        }
        if tasks == 0 {
            return plan_err("cannot shard an empty task space".to_string());
        }
        if count > tasks {
            return plan_err(format!(
                "{count} shards over {tasks} tasks leaves empty shards"
            ));
        }
        Ok(ShardPlan {
            fingerprint,
            seed,
            tasks,
            count,
        })
    }

    /// The unsharded journal fingerprint the plan derives from.
    #[must_use]
    pub fn base_fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The engine seed every shard runs under.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total task count of the whole campaign.
    #[must_use]
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Number of shards in the plan.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The contiguous global task range shard `index` owns. Ranges are
    /// balanced — lengths differ by at most one, longer shards first —
    /// and tile `0..tasks` exactly in index order.
    ///
    /// # Errors
    ///
    /// [`ShardError::IndexOutOfRange`] when `index >= count`.
    pub fn range(&self, index: usize) -> Result<Range<usize>, ShardError> {
        if index >= self.count {
            return Err(ShardError::IndexOutOfRange {
                index,
                count: self.count,
            });
        }
        let base_len = self.tasks / self.count;
        let rem = self.tasks % self.count;
        let start = index * base_len + index.min(rem);
        let len = base_len + usize::from(index < rem);
        Ok(start..start + len)
    }

    /// The [`ShardInfo`] shard `index`'s journal header carries.
    ///
    /// # Errors
    ///
    /// [`ShardError::IndexOutOfRange`] when `index >= count`.
    pub fn info(&self, index: usize) -> Result<ShardInfo, ShardError> {
        let range = self.range(index)?;
        Ok(ShardInfo {
            index,
            count: self.count,
            start: range.start,
            total: self.tasks,
        })
    }

    /// The journal fingerprint shard `index` binds: derived from the
    /// unsharded fingerprint plus the shard count and index, so journals
    /// of different plans (or different positions within one plan) can
    /// never be merged or cross-resumed by mistake.
    #[must_use]
    pub fn shard_fingerprint(&self, index: usize) -> String {
        let base = self.fingerprint.as_str();
        let count = self.count as u64;
        fingerprint("shard", &(base.to_string(), count, index as u64))
    }

    /// The header of the merged (unsharded) journal the plan reassembles
    /// into — identical to the header a single-process run writes.
    #[must_use]
    pub fn merged_header(&self) -> CheckpointHeader {
        CheckpointHeader {
            fingerprint: self.fingerprint.clone(),
            seed: self.seed,
            tasks: self.tasks,
            shard: None,
        }
    }
}

/// What [`merge_shards`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeSummary {
    /// Task entries in the merged journal (the plan's total).
    pub tasks: usize,
    /// Shard journals consumed.
    pub shards: usize,
    /// Byte length of the merged journal.
    pub bytes: u64,
}

/// Stitches the `count` shard journals of `plan` into one whole-campaign
/// journal at `out`, byte-for-byte identical to the journal a
/// single-process run of the same campaign writes.
///
/// Every journal is strictly validated first — shard info present,
/// count/total/seed/fingerprint against the plan, no duplicates, no torn
/// tails, complete coverage of each claimed range, and the claimed ranges
/// must tile `0..tasks` exactly (overlaps and gaps are typed errors).
/// Only then is the merged journal assembled, by concatenating the
/// validated entry regions verbatim under the unsharded header, written
/// to a sibling temporary file and atomically renamed into place. As a
/// final self-check the merged journal is re-read and re-validated
/// end-to-end.
///
/// `shard_paths` may be in any order; shards are stitched in index order.
///
/// # Errors
///
/// Every [`ShardError`] variant described above; [`ShardError::Checkpoint`]
/// for unreadable or corrupt journals.
pub fn merge_shards(
    plan: &ShardPlan,
    shard_paths: &[PathBuf],
    out: &Path,
) -> Result<MergeSummary, ShardError> {
    // Validate every journal and slot it by claimed index.
    let mut slots: Vec<Option<(&PathBuf, crate::checkpoint::JournalContents)>> =
        (0..plan.count).map(|_| None).collect();
    for path in shard_paths {
        let contents = read_journal(path)?;
        let Some(info) = contents.header.shard else {
            return Err(ShardError::NotAShard { path: path.clone() });
        };
        if info.count != plan.count {
            return Err(ShardError::CountMismatch {
                path: path.clone(),
                expected: plan.count,
                found: info.count,
            });
        }
        if info.total != plan.tasks {
            return Err(ShardError::TotalMismatch {
                path: path.clone(),
                expected: plan.tasks,
                found: info.total,
            });
        }
        if contents.header.seed != plan.seed {
            return Err(ShardError::SeedMismatch {
                path: path.clone(),
                expected: plan.seed,
                found: contents.header.seed,
            });
        }
        if info.index >= plan.count {
            return Err(ShardError::IndexOutOfRange {
                index: info.index,
                count: plan.count,
            });
        }
        let expected_fp = plan.shard_fingerprint(info.index);
        if contents.header.fingerprint != expected_fp {
            return Err(ShardError::FingerprintMismatch {
                index: info.index,
                expected: expected_fp,
                found: contents.header.fingerprint.clone(),
            });
        }
        if contents.truncated_tail {
            return Err(ShardError::TornTail { index: info.index });
        }
        if contents.values.len() < contents.header.tasks {
            return Err(ShardError::Incomplete {
                index: info.index,
                have: contents.values.len(),
                want: contents.header.tasks,
            });
        }
        let slot = slots
            .get_mut(info.index)
            .ok_or(ShardError::IndexOutOfRange {
                index: info.index,
                count: plan.count,
            })?;
        if slot.is_some() {
            return Err(ShardError::DuplicateShard { index: info.index });
        }
        *slot = Some((path, contents));
    }

    // Every index covered, and the claimed ranges tile 0..tasks exactly.
    let mut cursor = 0usize;
    for (index, slot) in slots.iter().enumerate() {
        let Some((_, contents)) = slot else {
            return Err(ShardError::MissingShard { index });
        };
        let start = contents.header.base();
        if start < cursor {
            return Err(ShardError::Overlap { index });
        }
        if start > cursor {
            return Err(ShardError::Gap { index });
        }
        cursor = start + contents.header.tasks;
    }
    if cursor != plan.tasks {
        return Err(ShardError::Gap { index: plan.count });
    }

    // Stitch: unsharded header line, then each shard's entry bytes
    // verbatim, in index order — written to a temp file and renamed in,
    // like the checkpoint writer's own header install.
    let mut tmp_name = out
        .file_name()
        .map(std::ffi::OsString::from)
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = out.with_file_name(tmp_name);
    let mut file = std::fs::File::create(&tmp)?;
    writeln!(file, "{}", plan.merged_header().to_json_line()?)?;
    for slot in &slots {
        let Some((path, contents)) = slot else {
            // Unreachable: the coverage walk above errored on any hole.
            continue;
        };
        let bytes = std::fs::read(path)?;
        let header_end =
            bytes
                .iter()
                .position(|&b| b == b'\n')
                .ok_or_else(|| CheckpointError::Corrupt {
                    line: 1,
                    detail: format!("{} lost its header mid-merge", path.display()),
                })?;
        let end = (contents.complete_len as usize).min(bytes.len());
        if header_end + 1 < end {
            file.write_all(&bytes[header_end + 1..end])?;
        }
    }
    file.sync_all()?;
    std::fs::rename(&tmp, out)?;

    // Self-check: the merged journal must re-validate as a complete
    // unsharded journal (global ids contiguous across the seams).
    let merged = read_journal(out)?;
    merged.header.verify_matches(&plan.merged_header())?;
    if merged.truncated_tail || merged.values.len() != plan.tasks {
        return Err(ShardError::Incomplete {
            index: plan.count,
            have: merged.values.len(),
            want: plan.tasks,
        });
    }
    Ok(MergeSummary {
        tasks: plan.tasks,
        shards: plan.count,
        bytes: merged.complete_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointWriter;

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdlfi_shard_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn plan(tasks: usize, count: usize) -> ShardPlan {
        ShardPlan::new("basefp".to_string(), 7, tasks, count).unwrap()
    }

    /// Writes shard `index`'s complete journal under `plan`, with entry
    /// values equal to their global task id.
    fn write_shard(dir: &Path, plan: &ShardPlan, index: usize) -> PathBuf {
        let path = dir.join(format!("shard{index}.jsonl"));
        let range = plan.range(index).unwrap();
        let header = CheckpointHeader {
            fingerprint: plan.shard_fingerprint(index),
            seed: plan.seed(),
            tasks: range.len(),
            shard: Some(plan.info(index).unwrap()),
        };
        let mut w = CheckpointWriter::create(&path, &header, 32).unwrap();
        for i in range {
            w.append(i, &(i as u64)).unwrap();
        }
        w.sync().unwrap();
        path
    }

    /// The single-process journal the merge must reproduce byte-for-byte.
    fn write_reference(dir: &Path, plan: &ShardPlan) -> PathBuf {
        let path = dir.join("reference.jsonl");
        let mut w = CheckpointWriter::create(&path, &plan.merged_header(), 32).unwrap();
        for i in 0..plan.tasks() {
            w.append(i, &(i as u64)).unwrap();
        }
        w.sync().unwrap();
        path
    }

    #[test]
    fn ranges_are_balanced_and_tile_the_task_space() {
        for (tasks, count) in [(10, 3), (8, 8), (100, 7), (5, 1)] {
            let p = plan(tasks, count);
            let mut cursor = 0usize;
            let mut lens = Vec::new();
            for i in 0..count {
                let r = p.range(i).unwrap();
                assert_eq!(r.start, cursor, "tasks={tasks} count={count} i={i}");
                assert!(!r.is_empty());
                lens.push(r.len());
                cursor = r.end;
            }
            assert_eq!(cursor, tasks);
            let max = lens.iter().max().unwrap();
            let min = lens.iter().min().unwrap();
            assert!(max - min <= 1, "unbalanced: {lens:?}");
        }
    }

    #[test]
    fn bad_plans_are_typed_errors() {
        assert!(matches!(
            ShardPlan::new("f".into(), 0, 10, 0),
            Err(ShardError::Plan { .. })
        ));
        assert!(matches!(
            ShardPlan::new("f".into(), 0, 0, 1),
            Err(ShardError::Plan { .. })
        ));
        assert!(matches!(
            ShardPlan::new("f".into(), 0, 3, 4),
            Err(ShardError::Plan { .. })
        ));
        assert!(matches!(
            plan(10, 3).range(3),
            Err(ShardError::IndexOutOfRange { index: 3, count: 3 })
        ));
    }

    #[test]
    fn shard_fingerprints_are_distinct_per_index_count_and_base() {
        let p = plan(10, 3);
        assert_ne!(p.shard_fingerprint(0), p.shard_fingerprint(1));
        let p2 = plan(10, 2);
        assert_ne!(p.shard_fingerprint(0), p2.shard_fingerprint(0));
        let other = ShardPlan::new("otherfp".to_string(), 7, 10, 3).unwrap();
        assert_ne!(p.shard_fingerprint(0), other.shard_fingerprint(0));
        // And none equals the base fingerprint itself.
        assert_ne!(p.shard_fingerprint(0), p.base_fingerprint());
    }

    #[test]
    fn merge_reproduces_the_single_process_journal_byte_for_byte() {
        let dir = unique_dir("merge_ok");
        let p = plan(10, 3);
        let mut paths: Vec<PathBuf> = (0..3).map(|i| write_shard(&dir, &p, i)).collect();
        // Arrival order must not matter.
        paths.reverse();
        let out = dir.join("merged.jsonl");
        let summary = merge_shards(&p, &paths, &out).unwrap();
        assert_eq!(summary.tasks, 10);
        assert_eq!(summary.shards, 3);
        let reference = write_reference(&dir, &p);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&reference).unwrap(),
            "merged journal differs from single-process journal"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_duplicate_shards_are_typed() {
        let dir = unique_dir("missing_dup");
        let p = plan(10, 3);
        let s0 = write_shard(&dir, &p, 0);
        let s1 = write_shard(&dir, &p, 1);
        let out = dir.join("merged.jsonl");
        assert!(matches!(
            merge_shards(&p, &[s0.clone(), s1.clone()], &out),
            Err(ShardError::MissingShard { index: 2 })
        ));
        let s1_copy = dir.join("shard1_copy.jsonl");
        std::fs::copy(&s1, &s1_copy).unwrap();
        assert!(matches!(
            merge_shards(&p, &[s0, s1, s1_copy], &out),
            Err(ShardError::DuplicateShard { index: 1 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_and_mismatched_journals_are_typed() {
        let dir = unique_dir("mismatch");
        let p = plan(10, 3);
        let out = dir.join("merged.jsonl");

        // An unsharded journal is not a shard.
        let plain = write_reference(&dir, &p);
        assert!(matches!(
            merge_shards(&p, &[plain], &out),
            Err(ShardError::NotAShard { .. })
        ));

        // A shard of a 2-way plan offered to a 3-way merge.
        let p2 = plan(10, 2);
        let foreign = write_shard(&dir, &p2, 0);
        assert!(matches!(
            merge_shards(&p, &[foreign], &out),
            Err(ShardError::CountMismatch {
                expected: 3,
                found: 2,
                ..
            })
        ));

        // A shard of a different campaign total.
        let p_total = ShardPlan::new("basefp".to_string(), 7, 12, 3).unwrap();
        let other_total = write_shard(&dir, &p_total, 0);
        assert!(matches!(
            merge_shards(&p, &[other_total], &out),
            Err(ShardError::TotalMismatch {
                expected: 10,
                found: 12,
                ..
            })
        ));

        // Same shape, different seed.
        let p_seed = ShardPlan::new("basefp".to_string(), 8, 10, 3).unwrap();
        let other_seed = write_shard(&dir, &p_seed, 0);
        assert!(matches!(
            merge_shards(&p, &[other_seed], &out),
            Err(ShardError::SeedMismatch {
                expected: 7,
                found: 8,
                ..
            })
        ));

        // Same shape and seed, different base fingerprint.
        let p_fp = ShardPlan::new("otherfp".to_string(), 7, 10, 3).unwrap();
        let other_fp = write_shard(&dir, &p_fp, 0);
        assert!(matches!(
            merge_shards(&p, &[other_fp], &out),
            Err(ShardError::FingerprintMismatch { index: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_and_incomplete_shards_are_refused() {
        let dir = unique_dir("torn");
        let p = plan(10, 2);
        let s0 = write_shard(&dir, &p, 0);
        let s1 = write_shard(&dir, &p, 1);
        let out = dir.join("merged.jsonl");

        // Chop shard 1's last line mid-JSON: torn tail.
        let text = std::fs::read_to_string(&s1).unwrap();
        std::fs::write(&s1, &text[..text.len() - 3]).unwrap();
        assert!(matches!(
            merge_shards(&p, &[s0.clone(), s1.clone()], &out),
            Err(ShardError::TornTail { index: 1 })
        ));

        // Drop the torn line entirely: complete lines, short journal.
        let keep: Vec<&str> = text.lines().collect();
        let short = keep[..keep.len() - 1].join("\n") + "\n";
        std::fs::write(&s1, short).unwrap();
        assert!(matches!(
            merge_shards(&p, &[s0, s1], &out),
            Err(ShardError::Incomplete {
                index: 1,
                have: 4,
                want: 5
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overlap_and_gap_are_typed() {
        let dir = unique_dir("tiling");
        let p = plan(10, 2);
        let out = dir.join("merged.jsonl");

        // Hand-craft shard 1 claiming a start inside shard 0's range.
        // Its fingerprint and count/total match the plan, so only the
        // tiling check can reject it.
        let overlap_path = dir.join("overlap.jsonl");
        let info = ShardInfo {
            index: 1,
            count: 2,
            start: 3,
            total: 10,
        };
        let header = CheckpointHeader {
            fingerprint: p.shard_fingerprint(1),
            seed: p.seed(),
            tasks: 5,
            shard: Some(info),
        };
        let mut w = CheckpointWriter::create(&overlap_path, &header, 32).unwrap();
        for i in 3..8usize {
            w.append(i, &(i as u64)).unwrap();
        }
        w.sync().unwrap();
        let s0 = write_shard(&dir, &p, 0);
        assert!(matches!(
            merge_shards(&p, &[s0.clone(), overlap_path], &out),
            Err(ShardError::Overlap { index: 1 })
        ));

        // And one starting past shard 0's end: a gap.
        let gap_path = dir.join("gap.jsonl");
        let info = ShardInfo {
            index: 1,
            count: 2,
            start: 7,
            total: 10,
        };
        let header = CheckpointHeader {
            fingerprint: p.shard_fingerprint(1),
            seed: p.seed(),
            tasks: 3,
            shard: Some(info),
        };
        let mut w = CheckpointWriter::create(&gap_path, &header, 32).unwrap();
        for i in 7..10usize {
            w.append(i, &(i as u64)).unwrap();
        }
        w.sync().unwrap();
        assert!(matches!(
            merge_shards(&p, &[s0, gap_path], &out),
            Err(ShardError::Gap { index: 1 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
