//! Campaign reports: the inferred error distribution, its mixing evidence
//! and JSON persistence for the figure harness.

use crate::campaign::CampaignConfig;
use crate::completeness::CompletenessReport;
use crate::engine::RunMeta;
use bdlfi_bayes::{Trace, TraceSummary};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// The outcome of one BDLFI campaign (paper Fig. 1 ③: "the distribution of
/// classification error produced by BDLFI", plus the completeness
/// evidence).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Per-chain traces of the classification-error statistic.
    pub traces: Vec<Trace>,
    /// Per-chain MH acceptance rates.
    pub acceptance_rates: Vec<f64>,
    /// Summary of the pooled error distribution.
    pub summary: TraceSummary,
    /// Mixing evidence and certification verdict.
    pub completeness: CompletenessReport,
    /// Fault-free classification error (the golden-run line).
    pub golden_error: f64,
    /// Estimated mean classification error under the fault prior
    /// (importance-reweighted for tempered campaigns).
    pub mean_error: f64,
    /// Importance-sampling effective sample size, for tempered campaigns.
    pub importance_ess: Option<f64>,
    /// Mean number of flipped bits per sampled configuration.
    pub mean_flips: f64,
    /// The configuration that produced this report.
    pub config: CampaignConfig,
    /// Engine execution metadata (worker count, wall-clock, chains/sec).
    pub run_meta: RunMeta,
}

impl CampaignReport {
    /// Total recorded samples across chains.
    pub fn total_samples(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// The report with environment-dependent execution accounting
    /// scrubbed: wall-clock timings zeroed and worker counts pinned to 1.
    /// Drivers that journal whole reports as task values (sweep points,
    /// layerwise entries) journal this form, so a journaled value is a
    /// pure function of `(seed, task_id)` — the invariant that makes
    /// resumed and sharded runs byte-identical to uninterrupted
    /// single-process runs. All statistical content is untouched.
    #[must_use]
    pub fn journal_form(mut self) -> CampaignReport {
        self.config.workers = 1;
        self.run_meta.workers = 1;
        self.run_meta.elapsed_secs = 0.0;
        self.run_meta.tasks_per_sec = 0.0;
        self
    }

    /// The increase of mean error over the golden run, in percentage
    /// points (the quantity Figs. 2/4 are read for).
    pub fn error_increase_pct(&self) -> f64 {
        (self.mean_error - self.golden_error) * 100.0
    }

    /// The pooled error trace across all chains.
    pub fn pooled_trace(&self) -> Trace {
        self.traces
            .iter()
            .flat_map(|t| t.samples().iter().copied())
            .collect()
    }

    /// Renders the inferred classification-error distribution as an ASCII
    /// histogram — the right-hand panel of the paper's Fig. 1 ③
    /// ("distribution of classification error produced by BDLFI"), with
    /// the golden-run error marked.
    pub fn render_distribution(&self) -> String {
        let pooled = self.pooled_trace();
        let hi = pooled.quantile(1.0).max(self.golden_error) * 1.05 + 1e-6;
        let mut out = pooled.render_histogram(0.0, hi.clamp(0.02, 1.0), 12, 40);
        out.push_str(&format!(
            "golden-run error: {:.3} | faulty mean: {:.3}\n",
            self.golden_error, self.mean_error
        ));
        out
    }

    /// Saves the report as JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written or serialisation
    /// fails.
    pub fn save_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer_pretty(std::io::BufWriter::new(file), self)
            .map_err(std::io::Error::other)
    }

    /// Loads a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load_json(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BDLFI campaign: {} chains x {} samples ({} total)",
            self.traces.len(),
            self.traces.first().map_or(0, Trace::len),
            self.total_samples()
        )?;
        writeln!(
            f,
            "  golden error      : {:6.2} %",
            self.golden_error * 100.0
        )?;
        writeln!(
            f,
            "  faulty error      : {:6.2} %  (mean; q05 {:5.2} %, q95 {:5.2} %)",
            self.mean_error * 100.0,
            self.summary.q05 * 100.0,
            self.summary.q95 * 100.0
        )?;
        writeln!(f, "  mean bit flips    : {:8.2}", self.mean_flips)?;
        writeln!(
            f,
            "  mixing            : R-hat {:.4}, ESS {:.0}, MCSE {:.5}",
            self.completeness.rhat, self.completeness.ess, self.completeness.mcse
        )?;
        if self.run_meta.tasks > 0 {
            writeln!(
                f,
                "  engine            : {} workers, {:.1} s, {:.2} chains/s",
                self.run_meta.workers, self.run_meta.elapsed_secs, self.run_meta.tasks_per_sec
            )?;
        }
        if let Some(iess) = self.importance_ess {
            writeln!(f, "  importance ESS    : {iess:.0}")?;
        }
        write!(
            f,
            "  completeness      : {}",
            if self.completeness.certified {
                "CERTIFIED"
            } else {
                "not certified"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::KernelChoice;
    use crate::completeness::CompletenessCriteria;
    use bdlfi_bayes::ChainConfig;

    fn dummy_report() -> CampaignReport {
        let t = Trace::from_samples(vec![0.1, 0.2, 0.3, 0.2]);
        CampaignReport {
            summary: t.summary(),
            traces: vec![t],
            acceptance_rates: vec![1.0],
            completeness: CompletenessReport {
                rhat: 1.0,
                ess: 4.0,
                mcse: 0.04,
                certified: false,
            },
            golden_error: 0.05,
            mean_error: 0.2,
            importance_ess: None,
            mean_flips: 3.5,
            config: CampaignConfig {
                chains: 1,
                chain: ChainConfig {
                    burn_in: 0,
                    samples: 4,
                    thin: 1,
                },
                kernel: KernelChoice::Prior,
                seed: 0,
                criteria: CompletenessCriteria::default(),
                workers: 0,
            },
            run_meta: RunMeta::default(),
        }
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = dummy_report().to_string();
        assert!(s.contains("golden error"));
        assert!(s.contains("5.00 %"));
        assert!(s.contains("not certified"));
    }

    #[test]
    fn error_increase_in_percentage_points() {
        assert!((dummy_report().error_increase_pct() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip() {
        // Unique per process: concurrent test invocations must not collide.
        let dir = std::env::temp_dir().join(format!("bdlfi_report_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let rep = dummy_report();
        rep.save_json(&path).unwrap();
        let back = CampaignReport::load_json(&path).unwrap();
        assert_eq!(back.mean_error, rep.mean_error);
        assert_eq!(back.traces[0].samples(), rep.traces[0].samples());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distribution_rendering_mentions_golden() {
        let r = dummy_report();
        let s = r.render_distribution();
        assert!(s.contains("golden-run error"));
        assert!(s.lines().count() >= 13);
        assert_eq!(r.pooled_trace().len(), 4);
    }

    #[test]
    fn total_samples_sums_chains() {
        let mut rep = dummy_report();
        rep.traces.push(Trace::from_samples(vec![0.0; 6]));
        assert_eq!(rep.total_samples(), 10);
    }
}
