//! Protection-domain analysis — the paper's engineering takeaway from the
//! boundary finding: "by analyzing the probability of errors near the
//! boundaries, we can set a threshold on the regions of the feature space
//! that need more protection and verification of correctness."
//!
//! Given a [`BoundaryMap`], this module finds the golden-margin threshold
//! below which inputs should be treated as *protection-required*: runs on
//! those inputs get the expensive mitigations (re-execution, ensembling,
//! range checks), everything else runs fast.

use crate::boundary::{boundary_map_controlled, BoundaryConfig, BoundaryMap};
use crate::checkpoint::fingerprint;
use crate::engine::{CheckpointSpec, EngineError, RunControl};
use bdlfi_faults::{FaultModel, SiteSpec};
use bdlfi_nn::Sequential;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A protection recommendation derived from a boundary map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtectionPlan {
    /// Inputs whose golden softmax margin is below this threshold should
    /// be protected.
    pub margin_threshold: f64,
    /// Fraction of the analysed input space that falls under protection.
    pub protected_fraction: f64,
    /// Mean fault-induced error probability inside the protected region.
    pub protected_error: f64,
    /// Mean fault-induced error probability outside it.
    pub unprotected_error: f64,
    /// The target the plan was derived for.
    pub target_error: f64,
}

impl ProtectionPlan {
    /// The risk concentration the plan achieves: how much likelier an
    /// error is inside the protected region than outside.
    pub fn concentration(&self) -> f64 {
        self.protected_error / self.unprotected_error.max(1e-12)
    }
}

/// A boundary map together with the protection plan derived from it —
/// the end-to-end "map the feature space, then decide what to protect"
/// study, evaluated through the shared `EvalEngine`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtectionStudy {
    /// The fault-induced error-probability map the plan was derived from
    /// (its `run_meta` records the engine execution stats).
    pub map: BoundaryMap,
    /// The derived plan, or `None` if no margin threshold reaches the
    /// target.
    pub plan: Option<ProtectionPlan>,
}

/// Maps the feature space under the fault model (through the shared
/// evaluation engine — see [`boundary_map`]) and derives the protection
/// plan for `target_error` in one call.
///
/// # Panics
///
/// Panics on the same conditions as [`boundary_map`] and
/// [`plan_protection`].
pub fn run_protection_study(
    model: &Sequential,
    spec: &SiteSpec,
    fault_model: Arc<dyn FaultModel>,
    cfg: &BoundaryConfig,
    target_error: f64,
) -> ProtectionStudy {
    match run_protection_study_controlled(
        model,
        spec,
        fault_model,
        cfg,
        target_error,
        &RunControl::default(),
        None,
    ) {
        Ok(study) => study,
        Err(e) => panic!("protection study failed: {e}"),
    }
}

/// [`run_protection_study`] with cooperative cancellation and an optional
/// checkpoint journal (journaled at the underlying boundary-map
/// granularity — one entry per fault sample).
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_protection_study`].
pub fn run_protection_study_controlled(
    model: &Sequential,
    spec: &SiteSpec,
    fault_model: Arc<dyn FaultModel>,
    cfg: &BoundaryConfig,
    target_error: f64,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<ProtectionStudy, EngineError> {
    // Bind this study's own journal fingerprint before delegating: a
    // protection-study journal must not be resume-compatible with a plain
    // boundary-map journal even though the sampled tasks coincide — the
    // study derives a protection plan from the finished map, so the two
    // runs make different claims about the same bytes.
    let ckpt = ckpt.cloned().map(|mut spec| {
        if spec.fingerprint.is_empty() {
            spec.fingerprint = fingerprint(
                "protection_study",
                &(cfg.fingerprint_form(), target_error.to_bits()),
            );
        }
        spec
    });
    let map = boundary_map_controlled(model, spec, fault_model, cfg, ctl, ckpt.as_ref())?;
    let plan = plan_protection(&map, target_error);
    Ok(ProtectionStudy { map, plan })
}

/// Derives the smallest protection region (by margin thresholding) whose
/// *unprotected* remainder has mean error probability at most
/// `target_error`.
///
/// Returns `None` if even protecting everything but the single
/// highest-margin point cannot reach the target.
///
/// # Panics
///
/// Panics if `target_error` is not in `(0, 1)`.
pub fn plan_protection(map: &BoundaryMap, target_error: f64) -> Option<ProtectionPlan> {
    assert!(
        target_error > 0.0 && target_error < 1.0,
        "target error must be in (0, 1)"
    );
    let n = map.error_prob.len();
    // Sort points by margin ascending: protection regions are prefixes of
    // this order (protect the lowest-margin points first).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| map.margin[a].partial_cmp(&map.margin[b]).unwrap());

    // Suffix means of error probability over the unprotected remainder.
    let mut suffix_sum = vec![0.0f64; n + 1];
    for i in (0..n).rev() {
        suffix_sum[i] = suffix_sum[i + 1] + map.error_prob[order[i]];
    }

    for protected in 0..n {
        let remaining = n - protected;
        let unprotected_mean = suffix_sum[protected] / remaining as f64;
        if unprotected_mean <= target_error {
            let protected_mean = if protected == 0 {
                0.0
            } else {
                (suffix_sum[0] - suffix_sum[protected]) / protected as f64
            };
            let threshold = if protected == 0 {
                0.0
            } else {
                map.margin[order[protected - 1]]
            };
            return Some(ProtectionPlan {
                margin_threshold: threshold,
                protected_fraction: protected as f64 / n as f64,
                protected_error: protected_mean,
                unprotected_error: unprotected_mean,
                target_error,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic map where error probability is exactly a decreasing
    /// function of margin: the ideal case for margin thresholding.
    fn synthetic_map(n: usize) -> BoundaryMap {
        let res = n;
        let margin: Vec<f64> = (0..n * n).map(|i| i as f64 / (n * n) as f64).collect();
        let error_prob: Vec<f64> = margin.iter().map(|m| 0.5 * (1.0 - m)).collect();
        BoundaryMap {
            resolution: res,
            x_range: (-1.0, 1.0),
            y_range: (-1.0, 1.0),
            error_prob,
            golden_pred: vec![0; n * n],
            margin,
            margin_correlation: -1.0,
            run_meta: crate::engine::RunMeta::default(),
        }
    }

    #[test]
    fn loose_target_needs_no_protection() {
        let map = synthetic_map(8);
        let plan = plan_protection(&map, 0.5).unwrap();
        assert_eq!(plan.protected_fraction, 0.0);
        assert_eq!(plan.margin_threshold, 0.0);
    }

    #[test]
    fn tighter_targets_protect_more() {
        let map = synthetic_map(8);
        let loose = plan_protection(&map, 0.3).unwrap();
        let tight = plan_protection(&map, 0.1).unwrap();
        assert!(tight.protected_fraction > loose.protected_fraction);
        assert!(tight.margin_threshold > loose.margin_threshold);
        // Unprotected remainder meets its target in both plans.
        assert!(loose.unprotected_error <= 0.3);
        assert!(tight.unprotected_error <= 0.1);
    }

    #[test]
    fn protection_concentrates_risk() {
        let map = synthetic_map(10);
        let plan = plan_protection(&map, 0.15).unwrap();
        assert!(plan.protected_error > plan.unprotected_error);
        assert!(plan.concentration() > 1.5);
    }

    #[test]
    fn impossible_targets_return_none() {
        let mut map = synthetic_map(4);
        // Uniformly bad map: no margin threshold helps below 0.4.
        for e in &mut map.error_prob {
            *e = 0.5;
        }
        assert!(plan_protection(&map, 0.4).is_none());
    }

    #[test]
    #[should_panic(expected = "target error must be in")]
    fn degenerate_target_rejected() {
        plan_protection(&synthetic_map(4), 0.0);
    }

    #[test]
    fn protection_study_composes_map_and_plan_through_the_engine() {
        use bdlfi_faults::BernoulliBitFlip;
        use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(44);
        let data = bdlfi_data::gaussian_blobs(200, 3, 0.5, &mut rng);
        let mut model = mlp(2, &[16], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 15,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, data.inputs(), data.labels(), &mut rng);

        let cfg = BoundaryConfig {
            resolution: 8,
            fault_samples: 30,
            seed: 4,
            ..BoundaryConfig::default()
        };
        let study = run_protection_study(
            &model,
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::new(2e-3)),
            &cfg,
            0.9,
        );
        assert_eq!(study.map.error_prob.len(), 64);
        assert_eq!(study.map.run_meta.tasks, 30);
        // A target this loose is always reachable.
        let plan = study.plan.expect("loose target must yield a plan");
        assert!(plan.unprotected_error <= 0.9);
    }
}
