//! The unified fault-evaluation engine: one worker pool, one seed
//! discipline, one streaming-result contract for every campaign driver.
//!
//! The paper's pipeline is "evaluate many fault configurations, then
//! reason statistically about the results", and point (3) of its case for
//! BDLFI is that those evaluations need only *inference*, so they
//! parallelise trivially. Before this module existed, every driver —
//! MCMC campaigns, sweeps, layerwise studies, boundary maps, the
//! traditional-FI baselines — hand-rolled its own model cloning, RNG
//! seeding, threading and result collection. [`EvalEngine`] consolidates
//! all of that:
//!
//! * a **bounded worker pool** (at most
//!   [`std::thread::available_parallelism`] scoped threads) with a chunked
//!   atomic task queue, so expensive tasks do not serialise the batch;
//! * **per-worker state** built once per worker by an `init` closure —
//!   drivers hand each worker a cloned [`crate::FaultyModel`] (the clone
//!   shares the golden prefix-activation cache, evaluation data and fault
//!   model behind `Arc`s, so a worker costs one network's weights);
//! * a **deterministic seed discipline**: task `i` receives an RNG seeded
//!   with [`seed_stream`]`(engine_seed, i)`, so results are a pure
//!   function of `(seed, task_id)` and therefore bit-identical at any
//!   worker count — the determinism contract the equivalence tests pin;
//! * an **ordered streaming sink** ([`EvalSink`]): results are delivered
//!   to the sink in task order as they complete (a small reorder buffer
//!   holds out-of-order finishers), enabling incremental aggregation and
//!   progress counting without `Mutex<Vec<_>>` plumbing in drivers;
//! * [`RunMeta`] throughput accounting (tasks, workers, elapsed seconds,
//!   tasks/sec) embedded in every driver report for cross-run comparison.

use bdlfi_bayes::seed_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Execution metadata of one engine run, embedded in every driver report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunMeta {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Worker threads the pool ran with.
    pub workers: usize,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Throughput: tasks (fault configurations, chains, …) per second.
    pub tasks_per_sec: f64,
    /// The engine seed the per-task RNG streams were derived from.
    pub seed: u64,
}

// The vendored serde derive cannot mark struct fields optional, so RunMeta
// implements the traits by hand: reports serialized before they carried a
// `run_meta` field deserialize with `RunMeta::default()` in its place.
impl Serialize for RunMeta {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("tasks".to_string(), self.tasks.to_json_value()),
            ("workers".to_string(), self.workers.to_json_value()),
            (
                "elapsed_secs".to_string(),
                self.elapsed_secs.to_json_value(),
            ),
            (
                "tasks_per_sec".to_string(),
                self.tasks_per_sec.to_json_value(),
            ),
            ("seed".to_string(), self.seed.to_json_value()),
        ])
    }
}

impl Deserialize for RunMeta {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::DeError::expected("object", "RunMeta"))?;
        Ok(RunMeta {
            tasks: serde::from_field(entries, "tasks", "RunMeta")?,
            workers: serde::from_field(entries, "workers", "RunMeta")?,
            elapsed_secs: serde::from_field(entries, "elapsed_secs", "RunMeta")?,
            tasks_per_sec: serde::from_field(entries, "tasks_per_sec", "RunMeta")?,
            seed: serde::from_field(entries, "seed", "RunMeta")?,
        })
    }

    fn missing_field_default() -> Option<Self> {
        Some(RunMeta::default())
    }
}

impl RunMeta {
    /// Pools this run's accounting with a later run over the same pool —
    /// used by segmented drivers (adaptive campaigns) that issue several
    /// engine runs per report.
    #[must_use]
    pub fn merged_with(self, later: RunMeta) -> RunMeta {
        let tasks = self.tasks + later.tasks;
        let elapsed_secs = self.elapsed_secs + later.elapsed_secs;
        RunMeta {
            tasks,
            workers: self.workers.max(later.workers),
            elapsed_secs,
            tasks_per_sec: if elapsed_secs > 0.0 {
                tasks as f64 / elapsed_secs
            } else {
                0.0
            },
            seed: self.seed,
        }
    }
}

/// Receives task results *in task order* as they complete.
///
/// The engine guarantees `accept(0, _)`, `accept(1, _)`, … exactly once
/// each, in order, regardless of which workers finish first — so sinks can
/// aggregate incrementally (running means, per-bit counters, progress
/// bars) without buffering or locking of their own.
pub trait EvalSink<T> {
    /// Consumes the result of task `task_id`.
    fn accept(&mut self, task_id: usize, value: T);
}

/// The simplest sink: collects every result into a `Vec` in task order.
#[derive(Debug)]
pub struct CollectSink<T> {
    items: Vec<T>,
}

impl<T> CollectSink<T> {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        CollectSink { items: Vec::new() }
    }

    /// The collected results, in task order.
    #[must_use]
    pub fn into_inner(self) -> Vec<T> {
        self.items
    }
}

impl<T> Default for CollectSink<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EvalSink<T> for CollectSink<T> {
    fn accept(&mut self, task_id: usize, value: T) {
        debug_assert_eq!(task_id, self.items.len(), "sink delivery out of order");
        self.items.push(value);
    }
}

/// Per-task context handed to the task closure: the task's index and its
/// private, deterministically derived RNG stream.
pub struct TaskCtx {
    /// Index of this task in `0..tasks`.
    pub task_id: usize,
    /// RNG seeded with `seed_stream(engine_seed, task_id)` — never shared
    /// between tasks, so results cannot depend on execution interleaving.
    pub rng: StdRng,
}

/// The shared evaluation executor. See the module docs for the contract.
#[derive(Debug, Clone, Copy)]
pub struct EvalEngine {
    seed: u64,
    workers: usize,
}

/// Reorder buffer + sink behind one lock: workers insert completions and
/// drain the contiguous prefix to the sink.
struct Delivery<'s, T, S: ?Sized> {
    next: usize,
    pending: BTreeMap<usize, T>,
    sink: &'s mut S,
}

impl EvalEngine {
    /// An engine whose per-task RNG streams derive from `seed`, using all
    /// available cores.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        EvalEngine { seed, workers: 0 }
    }

    /// An engine with an explicit worker-thread count (`0` = all available
    /// cores). Results are identical for every worker count; this knob
    /// exists for the determinism tests and for serial baselines.
    #[must_use]
    pub fn with_workers(seed: u64, workers: usize) -> Self {
        EvalEngine { seed, workers }
    }

    /// The seed the per-task streams derive from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker count a run over `tasks` tasks would use.
    #[must_use]
    pub fn workers_for(&self, tasks: usize) -> usize {
        let cap = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        cap.min(tasks).max(1)
    }

    /// Runs `tasks` tasks on the pool and streams results into `sink` in
    /// task order.
    ///
    /// `init` builds each worker's private state once (typically a cloned
    /// `FaultyModel` or network); `task` is then called for every task the
    /// worker claims, with that state and the task's [`TaskCtx`]. For the
    /// worker-count-invariance guarantee to hold, `task` must leave the
    /// worker state as it found it (fault evaluations restore weights via
    /// the XOR involution, so this is the natural driver behaviour).
    ///
    /// # Panics
    ///
    /// Propagates panics from `init`, `task` or the sink.
    pub fn run<W, T, I, F, S>(&self, tasks: usize, init: I, task: F, sink: &mut S) -> RunMeta
    where
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &mut TaskCtx) -> T + Sync,
        S: EvalSink<T> + Send + ?Sized,
    {
        let started = Instant::now();
        let workers = self.workers_for(tasks);
        if tasks == 0 {
            return self.meta(0, workers, started);
        }

        if workers == 1 {
            // Serial fast path — bit-identical to the pooled path because
            // every task owns its seed stream.
            let mut state = init();
            for i in 0..tasks {
                let mut ctx = self.ctx(i);
                let value = task(&mut state, &mut ctx);
                sink.accept(i, value);
            }
            return self.meta(tasks, 1, started);
        }

        // Chunked atomic queue: big enough chunks to amortise contention,
        // small enough that long tasks do not serialise the batch.
        let chunk = (tasks / (workers * 4)).max(1);
        let next = AtomicUsize::new(0);
        let delivery = Mutex::new(Delivery {
            next: 0,
            pending: BTreeMap::new(),
            sink,
        });

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let delivery = &delivery;
                let init = &init;
                let task = &task;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= tasks {
                            return;
                        }
                        for i in start..(start + chunk).min(tasks) {
                            let mut ctx = self.ctx(i);
                            let value = task(&mut state, &mut ctx);
                            let mut d = delivery.lock().expect("engine sink poisoned");
                            d.pending.insert(i, value);
                            loop {
                                let id = d.next;
                                let Some(v) = d.pending.remove(&id) else {
                                    break;
                                };
                                d.sink.accept(id, v);
                                d.next += 1;
                            }
                        }
                    }
                });
            }
        });

        let d = delivery.into_inner().expect("engine sink poisoned");
        assert_eq!(
            d.next, tasks,
            "engine delivered {} of {tasks} tasks",
            d.next
        );
        self.meta(tasks, workers, started)
    }

    /// Maps owned `items` through `f` on the pool, returning outputs in
    /// input order. Item `i` runs as task `i` (same seed discipline as
    /// [`EvalEngine::run`]); this is the fan-out primitive for drivers
    /// whose tasks carry distinct payloads (per-layer campaigns, sweep
    /// points, MCMC chain workers moved through a segment).
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> (Vec<T>, RunMeta)
    where
        I: Send,
        T: Send,
        F: Fn(&mut TaskCtx, I) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let mut sink = CollectSink::new();
        let meta = self.run(
            slots.len(),
            || (),
            |(), ctx| {
                let item = slots[ctx.task_id]
                    .lock()
                    .expect("engine item slot poisoned")
                    .take()
                    .expect("engine task claimed twice");
                f(ctx, item)
            },
            &mut sink,
        );
        (sink.into_inner(), meta)
    }

    fn ctx(&self, task_id: usize) -> TaskCtx {
        TaskCtx {
            task_id,
            rng: StdRng::seed_from_u64(seed_stream(self.seed, task_id as u64)),
        }
    }

    fn meta(&self, tasks: usize, workers: usize, started: Instant) -> RunMeta {
        let elapsed_secs = started.elapsed().as_secs_f64();
        RunMeta {
            tasks,
            workers,
            elapsed_secs,
            tasks_per_sec: if elapsed_secs > 0.0 {
                tasks as f64 / elapsed_secs
            } else {
                0.0
            },
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Records the arrival order of task ids.
    struct OrderSink(Vec<usize>);
    impl EvalSink<u64> for OrderSink {
        fn accept(&mut self, task_id: usize, _value: u64) {
            self.0.push(task_id);
        }
    }

    fn draws(workers: usize, tasks: usize, seed: u64) -> Vec<u64> {
        let engine = EvalEngine::with_workers(seed, workers);
        let mut sink = CollectSink::new();
        engine.run(tasks, || (), |(), ctx| ctx.rng.random::<u64>(), &mut sink);
        sink.into_inner()
    }

    #[test]
    fn sink_receives_results_in_task_order() {
        for workers in [1, 2, 5] {
            let engine = EvalEngine::with_workers(0, workers);
            let mut sink = OrderSink(Vec::new());
            engine.run(137, || (), |(), ctx| ctx.task_id as u64, &mut sink);
            assert_eq!(sink.0, (0..137).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn results_are_invariant_to_worker_count() {
        let serial = draws(1, 100, 42);
        for workers in [2, 3, 8] {
            assert_eq!(draws(workers, 100, 42), serial, "workers={workers}");
        }
    }

    #[test]
    fn tasks_get_disjoint_rng_streams() {
        let d = draws(4, 256, 7);
        let unique: std::collections::HashSet<_> = d.iter().collect();
        assert_eq!(unique.len(), d.len());
    }

    #[test]
    fn different_seeds_give_different_streams() {
        assert_ne!(draws(2, 32, 1), draws(2, 32, 2));
        assert_eq!(draws(2, 32, 1), draws(2, 32, 1));
    }

    #[test]
    fn init_runs_once_per_worker_and_state_persists() {
        let inits = AtomicUsize::new(0);
        let engine = EvalEngine::with_workers(0, 3);
        let mut sink = CollectSink::new();
        engine.run(
            64,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize // per-worker task counter
            },
            |count, _ctx| {
                *count += 1;
                *count
            },
            &mut sink,
        );
        let inits = inits.load(Ordering::SeqCst);
        assert!(inits <= 3, "{inits} inits for 3 workers");
        // Every task ran against a persistent worker state: a worker that
        // processed k tasks delivered exactly the values 1..=k, so the
        // pooled multiset has non-increasing occurrence counts, starting
        // from one `1` per active worker. (A worker may legitimately see
        // zero tasks if another drains the queue first.)
        let values = sink.into_inner();
        assert_eq!(values.len(), 64);
        let max = *values.iter().max().expect("non-empty");
        let mut counts = vec![0usize; max + 1];
        for &v in &values {
            counts[v] += 1;
        }
        let active = counts[1];
        assert!(
            (1..=inits).contains(&active),
            "{active} active workers for {inits} inits"
        );
        for v in 1..max {
            assert!(
                counts[v] >= counts[v + 1],
                "counter gap at {v}: {} < {}",
                counts[v],
                counts[v + 1]
            );
        }
    }

    #[test]
    fn map_preserves_input_order_and_consumes_each_item_once() {
        let engine = EvalEngine::with_workers(9, 4);
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let (out, meta) = engine.map(items, |ctx, s| format!("{s}@{}", ctx.task_id));
        assert_eq!(out.len(), 50);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("item-{i}@{i}"));
        }
        assert_eq!(meta.tasks, 50);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let engine = EvalEngine::new(0);
        let mut sink = CollectSink::<u64>::new();
        let meta = engine.run(0, || (), |(), _| 0u64, &mut sink);
        assert_eq!(meta.tasks, 0);
        assert!(sink.into_inner().is_empty());
    }

    #[test]
    fn worker_count_is_bounded_by_tasks_and_request() {
        let engine = EvalEngine::with_workers(0, 8);
        assert_eq!(engine.workers_for(3), 3);
        assert_eq!(engine.workers_for(100), 8);
        let auto = EvalEngine::new(0);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(auto.workers_for(1_000_000), cores);
    }

    #[test]
    #[should_panic]
    fn task_panics_propagate() {
        let engine = EvalEngine::with_workers(0, 2);
        let mut sink = CollectSink::new();
        engine.run(
            8,
            || (),
            |(), ctx| {
                assert!(ctx.task_id != 5, "boom");
                ctx.task_id
            },
            &mut sink,
        );
    }

    #[test]
    fn meta_reports_throughput() {
        let engine = EvalEngine::with_workers(3, 2);
        let mut sink = CollectSink::new();
        let meta = engine.run(32, || (), |(), ctx| ctx.task_id, &mut sink);
        assert_eq!(meta.tasks, 32);
        assert_eq!(meta.workers, 2);
        assert_eq!(meta.seed, 3);
        assert!(meta.elapsed_secs >= 0.0);
        assert!(meta.tasks_per_sec > 0.0);
        let merged = meta.merged_with(meta);
        assert_eq!(merged.tasks, 64);
        assert_eq!(merged.seed, 3);
    }
}
