//! The unified fault-evaluation engine: one worker pool, one seed
//! discipline, one streaming-result contract for every campaign driver.
//!
//! The paper's pipeline is "evaluate many fault configurations, then
//! reason statistically about the results", and point (3) of its case for
//! BDLFI is that those evaluations need only *inference*, so they
//! parallelise trivially. Before this module existed, every driver —
//! MCMC campaigns, sweeps, layerwise studies, boundary maps, the
//! traditional-FI baselines — hand-rolled its own model cloning, RNG
//! seeding, threading and result collection. [`EvalEngine`] consolidates
//! all of that:
//!
//! * a **bounded worker pool** (at most
//!   [`std::thread::available_parallelism`] scoped threads) with a chunked
//!   atomic task queue, so expensive tasks do not serialise the batch;
//! * **per-worker state** built once per worker by an `init` closure —
//!   drivers hand each worker a cloned [`crate::FaultyModel`] (the clone
//!   shares the golden prefix-activation cache, evaluation data and fault
//!   model behind `Arc`s, so a worker costs one network's weights);
//! * a **deterministic seed discipline**: task `i` receives an RNG seeded
//!   with [`seed_stream`]`(engine_seed, i)`, so results are a pure
//!   function of `(seed, task_id)` and therefore bit-identical at any
//!   worker count — the determinism contract the equivalence tests pin;
//! * an **ordered streaming sink** ([`EvalSink`]): results are delivered
//!   to the sink in task order as they complete (a small reorder buffer
//!   holds out-of-order finishers), enabling incremental aggregation and
//!   progress counting without `Mutex<Vec<_>>` plumbing in drivers;
//! * [`RunMeta`] throughput accounting (tasks, workers, elapsed seconds,
//!   tasks/sec) embedded in every driver report for cross-run comparison.

use crate::checkpoint::{CheckpointError, CheckpointHeader, CheckpointWriter, ShardInfo};
use bdlfi_bayes::seed_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Why an engine run did not complete normally. Every variant is
/// *recoverable*: an interrupted or failed campaign leaves its journal (if
/// any) synced, so the caller can report, retry, or resume instead of
/// aborting the process.
#[derive(Debug)]
pub enum EngineError {
    /// Cooperative cancellation: the stop flag was raised (or the
    /// `stop_after` watermark reached) and the engine drained cleanly.
    /// `completed` results were delivered (and journaled, when
    /// checkpointing) — resuming runs only the remaining tasks.
    Interrupted {
        /// Results delivered to the sink before the stop, in task order.
        completed: usize,
        /// The full task count of the run.
        tasks: usize,
    },
    /// A task closure panicked; the run drained and no further tasks ran.
    TaskPanicked {
        /// The task whose closure panicked.
        task_id: usize,
        /// The panic payload, when it carried a message.
        detail: String,
    },
    /// An engine-internal lock was poisoned (a panic elsewhere corrupted
    /// shared state).
    Poisoned(&'static str),
    /// The checkpoint journal could not be written, read, or resumed from.
    Checkpoint(CheckpointError),
    /// A task reported a driver-level failure (e.g. a nested engine run
    /// was interrupted or its sink failed).
    Task {
        /// The task that failed.
        task_id: usize,
        /// The failure, boxed to keep the variant small.
        source: Box<EngineError>,
    },
    /// [`RunMeta::try_merged_with`] pooled accounting from runs over
    /// different engine seeds — the metas describe different campaigns.
    MetaSeedMismatch {
        /// The seed of the meta being merged into.
        expected: u64,
        /// The seed of the meta being merged.
        found: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Interrupted { completed, tasks } => {
                write!(f, "run interrupted after {completed} of {tasks} tasks")
            }
            EngineError::TaskPanicked { task_id, detail } => {
                write!(f, "task {task_id} panicked: {detail}")
            }
            EngineError::Poisoned(what) => write!(f, "engine poisoned: {what}"),
            EngineError::Checkpoint(e) => write!(f, "{e}"),
            EngineError::Task { task_id, source } => {
                write!(f, "task {task_id} failed: {source}")
            }
            EngineError::MetaSeedMismatch { expected, found } => {
                write!(
                    f,
                    "cannot pool run accounting across engine seeds: {expected} vs {found}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Checkpoint(e) => Some(e),
            EngineError::Task { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

/// Cooperative cancellation for an engine run (and, transitively, the
/// campaign driver above it): a shared stop flag a signal handler or
/// supervisor can raise, plus a deterministic `stop_after` watermark for
/// tests. The engine checks between tasks and drains cleanly — delivered
/// results stay delivered (and journaled), and the run returns
/// [`EngineError::Interrupted`].
#[derive(Clone, Default)]
pub struct RunControl {
    /// Raise to request a stop at the next task boundary.
    pub stop: Option<Arc<AtomicBool>>,
    /// Stop once this many results (including replayed ones) have been
    /// delivered — a deterministic kill switch for resume tests.
    pub stop_after: Option<usize>,
    /// Observer notified of every delivered result of a checkpointed run
    /// (replayed entries on resume, then live completions, in task
    /// order). `None` — the default — costs nothing: values are only
    /// serialized for observation when an observer is attached.
    pub observer: Option<Arc<dyn RunObserver>>,
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("stop", &self.stop)
            .field("stop_after", &self.stop_after)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl RunControl {
    /// A control that never stops.
    #[must_use]
    pub fn new() -> Self {
        RunControl::default()
    }

    /// A control wired to a shared stop flag.
    #[must_use]
    pub fn with_stop(flag: Arc<AtomicBool>) -> Self {
        RunControl {
            stop: Some(flag),
            ..RunControl::default()
        }
    }

    /// A control that stops after `n` delivered results.
    #[must_use]
    pub fn stop_after(n: usize) -> Self {
        RunControl {
            stop_after: Some(n),
            ..RunControl::default()
        }
    }

    /// The same control with a streaming observer attached.
    #[must_use]
    pub fn observing(mut self, observer: Arc<dyn RunObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }
}

/// Observes a checkpointed run from outside the sink: called once per
/// delivered result — replayed journal entries first on resume, then live
/// completions, in task order — with the value as the JSON it is (or
/// would be) journaled as. This is the streaming hook the campaign server
/// hangs job-event feeds and live diagnostics off; drivers keep their
/// private [`CollectSink`]s untouched.
///
/// Calls happen inside the engine's ordered delivery path, so
/// implementations must be quick and must never panic or block
/// indefinitely (push into a queue, notify a condvar).
pub trait RunObserver: Send + Sync {
    /// Result `task_id` of a `tasks`-task run became durable with `value`.
    /// For open-ended (segmented) runs `tasks` is the segment budget.
    fn on_result(&self, task_id: usize, tasks: usize, value: &serde::Value);
}

/// Where (and how) a checkpointed run journals its results.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// The journal file.
    pub path: PathBuf,
    /// [`crate::checkpoint::fingerprint`] of the driver + config, binding
    /// the journal to one campaign identity.
    pub fingerprint: String,
    /// Resume from an existing journal (replay + continue) instead of
    /// creating a fresh one.
    pub resume: bool,
    /// Fsync the journal once every this many appends.
    pub sync_every: usize,
    /// With `resume`, reopen an already-complete journal for pure replay
    /// (zero live tasks) instead of raising
    /// [`CheckpointError::AlreadyComplete`] — the finalize path that
    /// assembles a report from a merged shard journal.
    pub allow_complete: bool,
}

impl CheckpointSpec {
    /// A fresh-journal spec with the default sync batch (32 appends).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, fingerprint: String) -> Self {
        CheckpointSpec {
            path: path.into(),
            fingerprint,
            resume: false,
            sync_every: 32,
            allow_complete: false,
        }
    }

    /// The same spec, resuming from the existing journal.
    #[must_use]
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// The same spec, resuming and accepting an already-complete journal:
    /// every result replays, no task runs, and the driver assembles its
    /// report exactly as an uninterrupted run would.
    #[must_use]
    pub fn finalizing(mut self) -> Self {
        self.resume = true;
        self.allow_complete = true;
        self
    }
}

/// Execution metadata of one engine run, embedded in every driver report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunMeta {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Worker threads the pool ran with.
    pub workers: usize,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Throughput: tasks (fault configurations, chains, …) per second.
    pub tasks_per_sec: f64,
    /// The engine seed the per-task RNG streams were derived from.
    pub seed: u64,
    /// When the run resumed from a checkpoint journal: how many task
    /// results were replayed rather than recomputed.
    pub resumed_from: Option<usize>,
    /// Evaluations served by the sparse-delta path during this run.
    pub delta_hits: u64,
    /// Evaluations routed to the exact fallback (incremental dense path)
    /// during this run.
    pub delta_fallbacks: u64,
    /// When resuming: the journal ended in a torn final line (the
    /// expected artifact of a kill between batched fsyncs) that was
    /// truncated away before the resume continued.
    pub truncated_tail: bool,
}

// The vendored serde derive cannot mark struct fields optional, so RunMeta
// implements the traits by hand: reports serialized before they carried a
// `run_meta` field deserialize with `RunMeta::default()` in its place.
impl Serialize for RunMeta {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("tasks".to_string(), self.tasks.to_json_value()),
            ("workers".to_string(), self.workers.to_json_value()),
            (
                "elapsed_secs".to_string(),
                self.elapsed_secs.to_json_value(),
            ),
            (
                "tasks_per_sec".to_string(),
                self.tasks_per_sec.to_json_value(),
            ),
            ("seed".to_string(), self.seed.to_json_value()),
            (
                "resumed_from".to_string(),
                self.resumed_from.to_json_value(),
            ),
            ("delta_hits".to_string(), self.delta_hits.to_json_value()),
            (
                "delta_fallbacks".to_string(),
                self.delta_fallbacks.to_json_value(),
            ),
            (
                "truncated_tail".to_string(),
                self.truncated_tail.to_json_value(),
            ),
        ])
    }
}

impl Deserialize for RunMeta {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::DeError::expected("object", "RunMeta"))?;
        Ok(RunMeta {
            tasks: serde::from_field(entries, "tasks", "RunMeta")?,
            workers: serde::from_field(entries, "workers", "RunMeta")?,
            elapsed_secs: serde::from_field(entries, "elapsed_secs", "RunMeta")?,
            tasks_per_sec: serde::from_field(entries, "tasks_per_sec", "RunMeta")?,
            seed: serde::from_field(entries, "seed", "RunMeta")?,
            resumed_from: serde::from_field(entries, "resumed_from", "RunMeta")?,
            // Added after reports already existed in the wild: absent means
            // the producing run predates the sparse-delta path.
            delta_hits: opt_counter(entries, "delta_hits")?,
            delta_fallbacks: opt_counter(entries, "delta_fallbacks")?,
            // Also late additions: absent means the run predates torn-tail
            // recovery (so nothing was ever truncated).
            truncated_tail: opt_flag(entries, "truncated_tail")?,
        })
    }

    fn missing_field_default() -> Option<Self> {
        Some(RunMeta::default())
    }
}

/// Reads a counter field that older reports do not carry: absent means 0.
/// (The vendored serde errors on missing non-`Option` fields, so the
/// back-compat default has to live here.)
fn opt_counter(entries: &[(String, serde::Value)], name: &str) -> Result<u64, serde::DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => u64::from_json_value(v),
        None => Ok(0),
    }
}

/// Like [`opt_counter`] for boolean flags: absent means `false`.
fn opt_flag(entries: &[(String, serde::Value)], name: &str) -> Result<bool, serde::DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => bool::from_json_value(v),
        None => Ok(false),
    }
}

impl RunMeta {
    /// Pools this run's accounting with a later run over the same engine
    /// seed — used by segmented drivers (adaptive campaigns) that issue
    /// several engine runs per report, and by the campaign server's
    /// per-job accounting across resume attempts.
    ///
    /// **Serial-segments assumption:** `tasks_per_sec` is recomputed from
    /// the *summed* wall-clock, which is only meaningful when the merged
    /// segments ran back to back (as the adaptive driver's do, and as a
    /// job's interrupt/resume attempts do). Segments that overlapped in
    /// time — e.g. a daemon running two runs concurrently — would
    /// double-count wall-clock and understate throughput; do not pool
    /// those with this method.
    ///
    /// Both metas must describe runs over the same engine seed: anything
    /// else is pooling accounting across different campaigns. That is a
    /// debug assertion here; server request paths use
    /// [`RunMeta::try_merged_with`], which surfaces it as a typed error
    /// instead.
    #[must_use]
    pub fn merged_with(self, later: RunMeta) -> RunMeta {
        debug_assert_eq!(
            self.seed, later.seed,
            "RunMeta::merged_with across engine seeds ({} vs {})",
            self.seed, later.seed
        );
        let tasks = self.tasks + later.tasks;
        let elapsed_secs = self.elapsed_secs + later.elapsed_secs;
        RunMeta {
            tasks,
            workers: self.workers.max(later.workers),
            elapsed_secs,
            tasks_per_sec: if elapsed_secs > 0.0 {
                tasks as f64 / elapsed_secs
            } else {
                0.0
            },
            seed: self.seed,
            // Summing (None counts as 0) makes the merge commutative and
            // associative, so an N-way shard merge is deterministic
            // regardless of arrival order. A single interrupt-then-resume
            // pair still pools to the resume's replay count, since the
            // interrupted attempt has `resumed_from: None`.
            resumed_from: match (self.resumed_from, later.resumed_from) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or(0) + b.unwrap_or(0)),
            },
            delta_hits: self.delta_hits + later.delta_hits,
            delta_fallbacks: self.delta_fallbacks + later.delta_fallbacks,
            truncated_tail: self.truncated_tail || later.truncated_tail,
        }
    }

    /// [`RunMeta::merged_with`] with the seed check surfaced as a typed
    /// [`EngineError::MetaSeedMismatch`] instead of a debug assertion —
    /// the form the campaign server uses on request paths, where bad
    /// accounting must become an error response, never a crash.
    ///
    /// # Errors
    ///
    /// [`EngineError::MetaSeedMismatch`] when the two metas come from
    /// runs over different engine seeds.
    pub fn try_merged_with(self, later: RunMeta) -> Result<RunMeta, EngineError> {
        if self.seed != later.seed {
            return Err(EngineError::MetaSeedMismatch {
                expected: self.seed,
                found: later.seed,
            });
        }
        Ok(self.merged_with(later))
    }

    /// Pools the accounting of N runs over the same engine seed — the
    /// shard-merge form of [`RunMeta::try_merged_with`]. Every pooled
    /// field is commutative and associative (sums, maxes, OR), so the
    /// result is identical for every arrival order of the shards.
    /// Returns `None` for an empty iterator.
    ///
    /// # Errors
    ///
    /// [`EngineError::MetaSeedMismatch`] when any two metas come from
    /// runs over different engine seeds.
    pub fn try_merged_many(
        metas: impl IntoIterator<Item = RunMeta>,
    ) -> Result<Option<RunMeta>, EngineError> {
        let mut iter = metas.into_iter();
        let Some(first) = iter.next() else {
            return Ok(None);
        };
        iter.try_fold(first, RunMeta::try_merged_with).map(Some)
    }
}

/// Receives task results *in task order* as they complete.
///
/// The engine guarantees `accept(0, _)`, `accept(1, _)`, … exactly once
/// each, in order, regardless of which workers finish first — so sinks can
/// aggregate incrementally (running means, per-bit counters, progress
/// bars) without buffering or locking of their own.
pub trait EvalSink<T> {
    /// Consumes the result of task `task_id`.
    ///
    /// # Errors
    ///
    /// A sink may fail recoverably (e.g. streaming results to a file that
    /// ran out of space); the engine drains and surfaces the error instead
    /// of panicking.
    fn accept(&mut self, task_id: usize, value: T) -> Result<(), EngineError>;
}

/// The simplest sink: collects every result into a `Vec` in task order.
#[derive(Debug)]
pub struct CollectSink<T> {
    items: Vec<T>,
}

impl<T> CollectSink<T> {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        CollectSink { items: Vec::new() }
    }

    /// The collected results, in task order.
    #[must_use]
    pub fn into_inner(self) -> Vec<T> {
        self.items
    }
}

impl<T> Default for CollectSink<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EvalSink<T> for CollectSink<T> {
    fn accept(&mut self, task_id: usize, value: T) -> Result<(), EngineError> {
        debug_assert_eq!(task_id, self.items.len(), "sink delivery out of order");
        self.items.push(value);
        Ok(())
    }
}

/// A sink that discards every result. Shard runners use it: a shard's
/// deliverable is its journal, and the report is assembled later by the
/// merge-and-finalize path, so nothing needs collecting in-process.
#[derive(Debug, Default)]
pub struct NullSink;

impl<T> EvalSink<T> for NullSink {
    fn accept(&mut self, _task_id: usize, _value: T) -> Result<(), EngineError> {
        Ok(())
    }
}

/// Per-task context handed to the task closure: the task's index and its
/// private, deterministically derived RNG stream.
pub struct TaskCtx {
    /// Index of this task in `0..tasks`.
    pub task_id: usize,
    /// RNG seeded with `seed_stream(engine_seed, task_id)` — never shared
    /// between tasks, so results cannot depend on execution interleaving.
    pub rng: StdRng,
}

/// The shared evaluation executor. See the module docs for the contract.
#[derive(Debug, Clone, Copy)]
pub struct EvalEngine {
    seed: u64,
    workers: usize,
}

/// Receives each delivered result before the sink — the hook the
/// checkpoint writer plugs into. Deliveries arrive in task order, so the
/// journal is always a contiguous result prefix.
trait Journal<T> {
    fn record(&mut self, task_id: usize, value: &T) -> Result<(), CheckpointError>;
    fn sync(&mut self) -> Result<(), CheckpointError>;
}

/// The no-op journal plain (non-checkpointed) runs use.
struct NoJournal;

impl<T> Journal<T> for NoJournal {
    fn record(&mut self, _task_id: usize, _value: &T) -> Result<(), CheckpointError> {
        Ok(())
    }
    fn sync(&mut self) -> Result<(), CheckpointError> {
        Ok(())
    }
}

impl<T: Serialize> Journal<T> for CheckpointWriter {
    fn record(&mut self, task_id: usize, value: &T) -> Result<(), CheckpointError> {
        self.append(task_id, value)
    }
    fn sync(&mut self) -> Result<(), CheckpointError> {
        CheckpointWriter::sync(self)
    }
}

/// Journal wrapper that feeds every recorded result to a [`RunObserver`]
/// before delegating — the adapter that lets streaming consumers (the
/// campaign server's job event feeds) see results the moment they enter
/// the ordered delivery path, without touching the drivers' private sinks.
struct Observed<'o, J> {
    inner: J,
    observer: Option<&'o Arc<dyn RunObserver>>,
    tasks: usize,
}

impl<T: Serialize, J: Journal<T>> Journal<T> for Observed<'_, J> {
    fn record(&mut self, task_id: usize, value: &T) -> Result<(), CheckpointError> {
        if let Some(obs) = self.observer {
            obs.on_result(task_id, self.tasks, &value.to_json_value());
        }
        self.inner.record(task_id, value)
    }
    fn sync(&mut self) -> Result<(), CheckpointError> {
        self.inner.sync()
    }
}

/// Reorder buffer + journal + sink behind one lock: workers insert
/// completions and drain the contiguous prefix (journal first, then sink).
struct Delivery<'s, T, S: ?Sized, J> {
    next: usize,
    pending: BTreeMap<usize, T>,
    sink: &'s mut S,
    journal: &'s mut J,
    error: Option<EngineError>,
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl EvalEngine {
    /// An engine whose per-task RNG streams derive from `seed`, using all
    /// available cores.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        EvalEngine { seed, workers: 0 }
    }

    /// An engine with an explicit worker-thread count (`0` = all available
    /// cores). Results are identical for every worker count; this knob
    /// exists for the determinism tests and for serial baselines.
    #[must_use]
    pub fn with_workers(seed: u64, workers: usize) -> Self {
        EvalEngine { seed, workers }
    }

    /// The seed the per-task streams derive from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker count a run over `tasks` tasks would use.
    #[must_use]
    pub fn workers_for(&self, tasks: usize) -> usize {
        let cap = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        };
        cap.min(tasks).max(1)
    }

    /// Runs `tasks` tasks on the pool and streams results into `sink` in
    /// task order.
    ///
    /// `init` builds each worker's private state once (typically a cloned
    /// `FaultyModel` or network); `task` is then called for every task the
    /// worker claims, with that state and the task's [`TaskCtx`]. For the
    /// worker-count-invariance guarantee to hold, `task` must leave the
    /// worker state as it found it (fault evaluations restore weights via
    /// the XOR involution, so this is the natural driver behaviour).
    ///
    /// # Panics
    ///
    /// Propagates panics from `init`, `task` or the sink (as well as any
    /// [`EngineError`] a sink returns — plain runs have no recovery
    /// story; use [`EvalEngine::run_checkpointed`] for fallible runs).
    pub fn run<W, T, I, F, S>(&self, tasks: usize, init: I, task: F, sink: &mut S) -> RunMeta
    where
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &mut TaskCtx) -> T + Sync,
        S: EvalSink<T> + Send + ?Sized,
    {
        let started = Instant::now();
        match self.run_inner(
            0,
            tasks,
            0,
            &init,
            &|w: &mut W, ctx: &mut TaskCtx| Ok(task(w, ctx)),
            sink,
            &mut NoJournal,
            &RunControl::default(),
            started,
        ) {
            Ok(meta) => meta,
            Err(EngineError::TaskPanicked { task_id, detail }) => {
                // bdlfi-lint: allow(BD010) -- `run` is the documented panicking convenience wrapper (see `# Panics`); fallible callers use `run_checkpointed`
                panic!("task {task_id} panicked: {detail}")
            }
            // bdlfi-lint: allow(BD010) -- same documented `# Panics` API boundary as above
            Err(e) => panic!("engine run failed: {e}"),
        }
    }

    /// [`EvalEngine::run`] with cooperative cancellation and an optional
    /// durable checkpoint journal.
    ///
    /// With a [`CheckpointSpec`], every delivered result is appended to a
    /// crash-safe JSONL journal *in task order* (fsync'd in batches and on
    /// stop). On `resume`, the journal's fingerprint/seed/task-count are
    /// verified, the journaled results are replayed into `sink` (marked in
    /// [`RunMeta::resumed_from`]) and only the remaining tasks execute —
    /// bit-identical to an uninterrupted run, because each task is a pure
    /// function of `(engine_seed, task_id)`.
    ///
    /// `task` returns a `Result` so nested engine runs (drivers that run a
    /// campaign per task) can surface their own interruptions/failures;
    /// the first error drains the pool and is returned.
    ///
    /// # Errors
    ///
    /// [`EngineError::Interrupted`] when `ctl` stopped the run (delivered
    /// results are journaled; resume to finish), plus every failure mode
    /// of the journal, the sink, and the tasks.
    #[allow(clippy::missing_panics_doc)] // replay delivers < tasks entries
    pub fn run_checkpointed<W, T, I, F, S>(
        &self,
        tasks: usize,
        init: I,
        task: F,
        sink: &mut S,
        ctl: &RunControl,
        ckpt: Option<&CheckpointSpec>,
    ) -> Result<RunMeta, EngineError>
    where
        T: Send + Serialize + Deserialize,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &mut TaskCtx) -> Result<T, EngineError> + Sync,
        S: EvalSink<T> + Send + ?Sized,
    {
        let started = Instant::now();
        let Some(spec) = ckpt else {
            let mut journal = Observed {
                inner: NoJournal,
                observer: ctl.observer.as_ref(),
                tasks,
            };
            return self.run_inner(0, tasks, 0, &init, &task, sink, &mut journal, ctl, started);
        };
        self.run_journaled(
            0, tasks, tasks, None, &init, &task, sink, ctl, spec, started,
        )
    }

    /// Runs one shard of a sharded campaign: tasks
    /// `shard.start..shard.start + len` execute with their **global** task
    /// ids (so every task draws the same seed stream it would in an
    /// unsharded run), journaled to a mandatory shard journal whose header
    /// carries `shard`. Resume semantics — replay, torn-tail truncation,
    /// [`RunMeta::resumed_from`] — are exactly those of
    /// [`EvalEngine::run_checkpointed`], scoped to the shard's range.
    /// [`RunMeta::tasks`] is the shard length; observers see `shard.total`
    /// as the task count.
    ///
    /// # Errors
    ///
    /// As [`EvalEngine::run_checkpointed`]. `Interrupted::completed`
    /// counts this shard's delivered results.
    #[allow(clippy::too_many_arguments)]
    pub fn run_shard_checkpointed<W, T, I, F, S>(
        &self,
        shard: ShardInfo,
        len: usize,
        init: I,
        task: F,
        sink: &mut S,
        ctl: &RunControl,
        ckpt: &CheckpointSpec,
    ) -> Result<RunMeta, EngineError>
    where
        T: Send + Serialize + Deserialize,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &mut TaskCtx) -> Result<T, EngineError> + Sync,
        S: EvalSink<T> + Send + ?Sized,
    {
        let started = Instant::now();
        self.run_journaled(
            shard.start,
            shard.start + len,
            shard.total,
            Some(shard),
            &init,
            &task,
            sink,
            ctl,
            ckpt,
            started,
        )
    }

    /// The journaled half of both checkpointed entry points: create or
    /// resume the journal for tasks `lo..hi` (headered with `shard` when
    /// sharded), replay its entries, then execute the remainder.
    #[allow(clippy::too_many_arguments)]
    fn run_journaled<W, T, I, F, S>(
        &self,
        lo: usize,
        hi: usize,
        total: usize,
        shard: Option<ShardInfo>,
        init: &I,
        task: &F,
        sink: &mut S,
        ctl: &RunControl,
        spec: &CheckpointSpec,
        started: Instant,
    ) -> Result<RunMeta, EngineError>
    where
        T: Send + Serialize + Deserialize,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &mut TaskCtx) -> Result<T, EngineError> + Sync,
        S: EvalSink<T> + Send + ?Sized,
    {
        let header = CheckpointHeader {
            fingerprint: spec.fingerprint.clone(),
            seed: self.seed,
            tasks: hi - lo,
            shard,
        };
        let (writer, replay) = if spec.resume {
            let (writer, replay) = CheckpointWriter::resume_with(
                &spec.path,
                &header,
                spec.sync_every,
                spec.allow_complete,
            )?;
            (writer, Some(replay))
        } else {
            (
                CheckpointWriter::create(&spec.path, &header, spec.sync_every)?,
                None,
            )
        };
        let truncated_tail = replay.as_ref().is_some_and(|r| r.truncated_tail);
        let replayed = replay.map(|r| r.values).unwrap_or_default();
        let start = lo + replayed.len();
        assert!(
            start < hi || hi == lo || spec.allow_complete,
            "resume rejects complete journals"
        );
        for (i, v) in replayed.iter().enumerate() {
            if let Some(obs) = &ctl.observer {
                obs.on_result(lo + i, total, v);
            }
            let value = T::from_json_value(v).map_err(|e| CheckpointError::Corrupt {
                line: i + 2,
                detail: format!("journaled value does not deserialize: {e}"),
            })?;
            sink.accept(lo + i, value)?;
        }
        let mut journal = Observed {
            inner: writer,
            observer: ctl.observer.as_ref(),
            tasks: total,
        };
        let mut meta =
            self.run_inner(lo, hi, start, init, task, sink, &mut journal, ctl, started)?;
        if start > lo {
            meta.resumed_from = Some(start - lo);
        }
        meta.truncated_tail = truncated_tail;
        Ok(meta)
    }

    /// The one execution path under both `run` flavours: tasks
    /// `start..hi` of the run's range `lo..hi` execute (the journal
    /// already covers `lo..start`), results are delivered in task order to
    /// `journal` then `sink`, and `ctl` is consulted at every task
    /// boundary. Unsharded runs have `lo == 0`; shard runs offset the
    /// range so every task keeps its global id (and seed stream), while
    /// all counts reported outward — `Interrupted::completed`,
    /// [`RunMeta::tasks`], the `stop_after` watermark — stay relative to
    /// the range.
    #[allow(clippy::too_many_arguments)]
    fn run_inner<W, T, I, F, S, J>(
        &self,
        lo: usize,
        hi: usize,
        start: usize,
        init: &I,
        task: &F,
        sink: &mut S,
        journal: &mut J,
        ctl: &RunControl,
        started: Instant,
    ) -> Result<RunMeta, EngineError>
    where
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, &mut TaskCtx) -> Result<T, EngineError> + Sync,
        S: EvalSink<T> + Send + ?Sized,
        J: Journal<T> + Send,
    {
        let workers = self.workers_for(hi - start);
        if hi == start {
            journal.sync()?;
            return Ok(self.meta(hi - lo, workers, started));
        }
        let stop_at = lo.saturating_add(ctl.stop_after.unwrap_or(usize::MAX));

        if workers == 1 {
            // Serial fast path — bit-identical to the pooled path because
            // every task owns its seed stream.
            let mut state = init();
            for i in start..hi {
                if ctl.stop_requested() || i >= stop_at {
                    journal.sync()?;
                    return Err(EngineError::Interrupted {
                        completed: i - lo,
                        tasks: hi - lo,
                    });
                }
                let mut ctx = self.ctx(i);
                let value = match catch_unwind(AssertUnwindSafe(|| task(&mut state, &mut ctx))) {
                    Ok(Ok(v)) => v,
                    Ok(Err(e)) => {
                        journal.sync()?;
                        return Err(EngineError::Task {
                            task_id: i,
                            source: Box::new(e),
                        });
                    }
                    Err(payload) => {
                        journal.sync()?;
                        return Err(EngineError::TaskPanicked {
                            task_id: i,
                            detail: panic_detail(payload),
                        });
                    }
                };
                journal.record(i, &value)?;
                sink.accept(i, value)?;
            }
            journal.sync()?;
            return Ok(self.meta(hi - lo, 1, started));
        }

        // Chunked atomic queue: big enough chunks to amortise contention,
        // small enough that long tasks do not serialise the batch.
        let chunk = ((hi - start) / (workers * 4)).max(1);
        let next = AtomicUsize::new(start);
        // Raised on stop/error: workers stop claiming and drain out.
        let abort = AtomicBool::new(false);
        // Distinguishes a cooperative stop from an error drain.
        let interrupted = AtomicBool::new(false);
        let delivery = Mutex::new(Delivery {
            next: start,
            pending: BTreeMap::new(),
            sink,
            journal,
            error: None,
        });

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let abort = &abort;
                let interrupted = &interrupted;
                let delivery = &delivery;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            return;
                        }
                        let claim = next.fetch_add(chunk, Ordering::Relaxed);
                        if claim >= hi {
                            return;
                        }
                        for i in claim..(claim + chunk).min(hi) {
                            if abort.load(Ordering::Relaxed) {
                                return;
                            }
                            if ctl.stop_requested() {
                                interrupted.store(true, Ordering::Relaxed);
                                abort.store(true, Ordering::Relaxed);
                                return;
                            }
                            let mut ctx = self.ctx(i);
                            let outcome =
                                catch_unwind(AssertUnwindSafe(|| task(&mut state, &mut ctx)));
                            let Ok(mut d) = delivery.lock() else {
                                abort.store(true, Ordering::Relaxed);
                                return;
                            };
                            match outcome {
                                Ok(Ok(v)) => {
                                    d.pending.insert(i, v);
                                }
                                Ok(Err(e)) => {
                                    d.error.get_or_insert(EngineError::Task {
                                        task_id: i,
                                        source: Box::new(e),
                                    });
                                    abort.store(true, Ordering::Relaxed);
                                    return;
                                }
                                Err(payload) => {
                                    d.error.get_or_insert(EngineError::TaskPanicked {
                                        task_id: i,
                                        detail: panic_detail(payload),
                                    });
                                    abort.store(true, Ordering::Relaxed);
                                    return;
                                }
                            }
                            // Drain the contiguous prefix: journal, then
                            // sink, stopping at the watermark.
                            while d.error.is_none() {
                                if d.next >= stop_at {
                                    interrupted.store(true, Ordering::Relaxed);
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                                let id = d.next;
                                let Some(v) = d.pending.remove(&id) else {
                                    break;
                                };
                                if let Err(e) = d.journal.record(id, &v) {
                                    d.error = Some(e.into());
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                                if let Err(e) = d.sink.accept(id, v) {
                                    d.error = Some(e);
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                                d.next += 1;
                            }
                        }
                    }
                });
            }
        });

        let d = delivery
            .into_inner()
            .map_err(|_| EngineError::Poisoned("engine delivery lock"))?;
        let completed = d.next - lo;
        let sync_result = d.journal.sync();
        if let Some(e) = d.error {
            return Err(e);
        }
        sync_result?;
        if interrupted.load(Ordering::Relaxed) {
            return Err(EngineError::Interrupted {
                completed,
                tasks: hi - lo,
            });
        }
        assert_eq!(
            completed,
            hi - lo,
            "engine delivered {completed} of {} tasks",
            hi - lo
        );
        Ok(self.meta(hi - lo, workers, started))
    }

    /// Maps owned `items` through `f` on the pool, returning outputs in
    /// input order. Item `i` runs as task `i` (same seed discipline as
    /// [`EvalEngine::run`]); this is the fan-out primitive for drivers
    /// whose tasks carry distinct payloads (per-layer campaigns, sweep
    /// points, MCMC chain workers moved through a segment).
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> (Vec<T>, RunMeta)
    where
        I: Send,
        T: Send,
        F: Fn(&mut TaskCtx, I) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let mut sink = CollectSink::new();
        let meta = self.run(
            slots.len(),
            || (),
            |(), ctx| {
                // A poisoned slot only means another worker panicked while
                // holding the lock; the item inside is still intact, so
                // recover it rather than cascading the panic.
                // bdlfi-lint: allow(BD010) -- in-bounds by construction: `slots` has one entry per task id the dispatcher hands out
                let mut slot = slots[ctx.task_id]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let item = slot
                    .take()
                    // bdlfi-lint: allow(BD010) -- unreachable by construction: run_inner's atomic counter hands out each task id exactly once
                    .expect("engine task claimed twice");
                f(ctx, item)
            },
            &mut sink,
        );
        (sink.into_inner(), meta)
    }

    fn ctx(&self, task_id: usize) -> TaskCtx {
        TaskCtx {
            task_id,
            rng: StdRng::seed_from_u64(seed_stream(self.seed, task_id as u64)),
        }
    }

    fn meta(&self, tasks: usize, workers: usize, started: Instant) -> RunMeta {
        let elapsed_secs = started.elapsed().as_secs_f64();
        RunMeta {
            tasks,
            workers,
            elapsed_secs,
            tasks_per_sec: if elapsed_secs > 0.0 {
                tasks as f64 / elapsed_secs
            } else {
                0.0
            },
            seed: self.seed,
            resumed_from: None,
            delta_hits: 0,
            delta_fallbacks: 0,
            truncated_tail: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// Records the arrival order of task ids.
    struct OrderSink(Vec<usize>);
    impl EvalSink<u64> for OrderSink {
        fn accept(&mut self, task_id: usize, _value: u64) -> Result<(), EngineError> {
            self.0.push(task_id);
            Ok(())
        }
    }

    fn draws(workers: usize, tasks: usize, seed: u64) -> Vec<u64> {
        let engine = EvalEngine::with_workers(seed, workers);
        let mut sink = CollectSink::new();
        engine.run(tasks, || (), |(), ctx| ctx.rng.random::<u64>(), &mut sink);
        sink.into_inner()
    }

    #[test]
    fn sink_receives_results_in_task_order() {
        for workers in [1, 2, 5] {
            let engine = EvalEngine::with_workers(0, workers);
            let mut sink = OrderSink(Vec::new());
            engine.run(137, || (), |(), ctx| ctx.task_id as u64, &mut sink);
            assert_eq!(sink.0, (0..137).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn results_are_invariant_to_worker_count() {
        let serial = draws(1, 100, 42);
        for workers in [2, 3, 8] {
            assert_eq!(draws(workers, 100, 42), serial, "workers={workers}");
        }
    }

    #[test]
    fn tasks_get_disjoint_rng_streams() {
        let d = draws(4, 256, 7);
        let unique: std::collections::HashSet<_> = d.iter().collect();
        assert_eq!(unique.len(), d.len());
    }

    #[test]
    fn different_seeds_give_different_streams() {
        assert_ne!(draws(2, 32, 1), draws(2, 32, 2));
        assert_eq!(draws(2, 32, 1), draws(2, 32, 1));
    }

    #[test]
    fn init_runs_once_per_worker_and_state_persists() {
        let inits = AtomicUsize::new(0);
        let engine = EvalEngine::with_workers(0, 3);
        let mut sink = CollectSink::new();
        engine.run(
            64,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize // per-worker task counter
            },
            |count, _ctx| {
                *count += 1;
                *count
            },
            &mut sink,
        );
        let inits = inits.load(Ordering::SeqCst);
        assert!(inits <= 3, "{inits} inits for 3 workers");
        // Every task ran against a persistent worker state: a worker that
        // processed k tasks delivered exactly the values 1..=k, so the
        // pooled multiset has non-increasing occurrence counts, starting
        // from one `1` per active worker. (A worker may legitimately see
        // zero tasks if another drains the queue first.)
        let values = sink.into_inner();
        assert_eq!(values.len(), 64);
        let max = *values.iter().max().expect("non-empty");
        let mut counts = vec![0usize; max + 1];
        for &v in &values {
            counts[v] += 1;
        }
        let active = counts[1];
        assert!(
            (1..=inits).contains(&active),
            "{active} active workers for {inits} inits"
        );
        for v in 1..max {
            assert!(
                counts[v] >= counts[v + 1],
                "counter gap at {v}: {} < {}",
                counts[v],
                counts[v + 1]
            );
        }
    }

    #[test]
    fn map_preserves_input_order_and_consumes_each_item_once() {
        let engine = EvalEngine::with_workers(9, 4);
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let (out, meta) = engine.map(items, |ctx, s| format!("{s}@{}", ctx.task_id));
        assert_eq!(out.len(), 50);
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("item-{i}@{i}"));
        }
        assert_eq!(meta.tasks, 50);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let engine = EvalEngine::new(0);
        let mut sink = CollectSink::<u64>::new();
        let meta = engine.run(0, || (), |(), _| 0u64, &mut sink);
        assert_eq!(meta.tasks, 0);
        assert!(sink.into_inner().is_empty());
    }

    #[test]
    fn worker_count_is_bounded_by_tasks_and_request() {
        let engine = EvalEngine::with_workers(0, 8);
        assert_eq!(engine.workers_for(3), 3);
        assert_eq!(engine.workers_for(100), 8);
        let auto = EvalEngine::new(0);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(auto.workers_for(1_000_000), cores);
    }

    #[test]
    #[should_panic]
    fn task_panics_propagate() {
        let engine = EvalEngine::with_workers(0, 2);
        let mut sink = CollectSink::new();
        engine.run(
            8,
            || (),
            |(), ctx| {
                assert!(ctx.task_id != 5, "boom");
                ctx.task_id
            },
            &mut sink,
        );
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bdlfi_engine_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stop_after_interrupts_and_resume_is_bit_identical() {
        let reference = draws(1, 64, 11);
        for workers in [1, 4] {
            let dir = ckpt_dir(&format!("resume_{workers}"));
            let spec = CheckpointSpec::new(dir.join("j.jsonl"), "fp".to_string());
            let engine = EvalEngine::with_workers(11, workers);

            let mut sink = CollectSink::new();
            let err = engine
                .run_checkpointed(
                    64,
                    || (),
                    |(), ctx| Ok(ctx.rng.random::<u64>()),
                    &mut sink,
                    &RunControl::stop_after(20),
                    Some(&spec),
                )
                .unwrap_err();
            let completed = match err {
                EngineError::Interrupted { completed, tasks } => {
                    assert_eq!(tasks, 64);
                    completed
                }
                other => panic!("expected Interrupted, got {other}"),
            };
            assert!(completed >= 20, "stopped before the watermark");
            assert!(completed < 64, "never stopped");
            // The sink saw exactly the journaled prefix.
            assert_eq!(sink.into_inner().as_slice(), &reference[..completed]);

            let mut sink = CollectSink::new();
            let meta = engine
                .run_checkpointed(
                    64,
                    || (),
                    |(), ctx| Ok(ctx.rng.random::<u64>()),
                    &mut sink,
                    &RunControl::new(),
                    Some(&spec.clone().resuming()),
                )
                .unwrap();
            assert_eq!(meta.resumed_from, Some(completed));
            assert_eq!(sink.into_inner(), reference, "workers={workers}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn stop_flag_interrupts_promptly() {
        let flag = Arc::new(AtomicBool::new(true)); // raised before the run
        let engine = EvalEngine::with_workers(0, 2);
        let mut sink = CollectSink::new();
        let err = engine
            .run_checkpointed(
                32,
                || (),
                |(), ctx| Ok(ctx.task_id),
                &mut sink,
                &RunControl::with_stop(flag),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Interrupted { .. }), "{err}");
    }

    #[test]
    fn task_errors_surface_without_panicking() {
        let engine = EvalEngine::with_workers(0, 2);
        let mut sink = CollectSink::new();
        let err = engine
            .run_checkpointed(
                16,
                || (),
                |(), ctx| {
                    if ctx.task_id == 7 {
                        Err(EngineError::Poisoned("simulated"))
                    } else {
                        Ok(ctx.task_id)
                    }
                },
                &mut sink,
                &RunControl::new(),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Task { task_id: 7, .. }), "{err}");
    }

    #[test]
    fn checkpointed_panic_is_a_typed_error() {
        let engine = EvalEngine::with_workers(0, 2);
        let mut sink = CollectSink::new();
        let err = engine
            .run_checkpointed(
                8,
                || (),
                |(), ctx| {
                    assert!(ctx.task_id != 5, "boom");
                    Ok(ctx.task_id)
                },
                &mut sink,
                &RunControl::new(),
                None,
            )
            .unwrap_err();
        assert!(
            matches!(err, EngineError::TaskPanicked { task_id: 5, .. }),
            "{err}"
        );
    }

    #[test]
    fn run_meta_roundtrips_resumed_from() {
        let meta = RunMeta {
            tasks: 4,
            workers: 2,
            elapsed_secs: 1.0,
            tasks_per_sec: 4.0,
            seed: 3,
            resumed_from: Some(2),
            delta_hits: 7,
            delta_fallbacks: 1,
            truncated_tail: true,
        };
        let back = RunMeta::from_json_value(&meta.to_json_value()).unwrap();
        assert_eq!(back, meta);
        // Reports serialized before the field existed deserialize to None.
        let legacy = serde::Value::Object(vec![
            ("tasks".to_string(), 4usize.to_json_value()),
            ("workers".to_string(), 2usize.to_json_value()),
            ("elapsed_secs".to_string(), 1.0f64.to_json_value()),
            ("tasks_per_sec".to_string(), 4.0f64.to_json_value()),
            ("seed".to_string(), 3u64.to_json_value()),
        ]);
        let from_legacy = RunMeta::from_json_value(&legacy).unwrap();
        assert_eq!(from_legacy.resumed_from, None);
        // Counter fields added later default to zero on legacy reports.
        assert_eq!(from_legacy.delta_hits, 0);
        assert_eq!(from_legacy.delta_fallbacks, 0);
        assert!(!from_legacy.truncated_tail);
    }

    #[test]
    fn meta_reports_throughput() {
        let engine = EvalEngine::with_workers(3, 2);
        let mut sink = CollectSink::new();
        let meta = engine.run(32, || (), |(), ctx| ctx.task_id, &mut sink);
        assert_eq!(meta.tasks, 32);
        assert_eq!(meta.workers, 2);
        assert_eq!(meta.seed, 3);
        assert!(meta.elapsed_secs >= 0.0);
        assert!(meta.tasks_per_sec > 0.0);
        let merged = meta.merged_with(meta);
        assert_eq!(merged.tasks, 64);
        assert_eq!(merged.seed, 3);
    }
}
