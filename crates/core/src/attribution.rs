//! Fault attribution: *which* memory locations cause the errors?
//!
//! The paper's tempered exploration mode (Section I's "algorithmic
//! acceleration", exercised in experiment E6) parks the Markov chain on
//! error-causing fault configurations. This module turns those visits into
//! an actionable ranking: per parameter site and per bit field, how often
//! does the error-conditioned posterior implicate it? High-frequency sites
//! are where selective hardening (ECC, duplication, range checks) buys the
//! most reliability — the engineering decision the paper's methodology
//! exists to inform.

use crate::checkpoint::fingerprint;
use crate::engine::{CheckpointSpec, CollectSink, EngineError, EvalEngine, RunControl};
use crate::faulty_model::FaultyModel;
use bdlfi_bayes::{mh_step, seed_stream};
use bdlfi_faults::{BitRange, FaultConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Attribution share of one parameter site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteAttribution {
    /// Parameter path.
    pub path: String,
    /// Number of injectable elements at the site.
    pub elements: usize,
    /// Fraction of error-conditioned samples in which this site carried at
    /// least one flipped bit.
    pub hit_share: f64,
    /// Mean flipped bits at this site over error-conditioned samples.
    pub mean_flips: f64,
}

/// The outcome of a fault-attribution run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Sites ordered by descending hit share.
    pub sites: Vec<SiteAttribution>,
    /// Fraction of error-conditioned flips per bit position (index 0 =
    /// mantissa LSB, 31 = sign).
    pub bit_histogram: [f64; 32],
    /// Number of error-conditioned samples collected.
    pub samples: usize,
    /// Fraction of chain steps that were error-conditioned (diagnostic:
    /// low values mean β was too small for the prior barrier).
    pub hit_rate: f64,
}

impl AttributionReport {
    /// The `n` most implicated sites.
    pub fn top_sites(&self, n: usize) -> &[SiteAttribution] {
        &self.sites[..n.min(self.sites.len())]
    }

    /// Fraction of error-conditioned flips landing in the exponent field —
    /// the headline number for selective-protection decisions.
    pub fn exponent_share(&self) -> f64 {
        (23..31).map(|b| self.bit_histogram[b]).sum()
    }
}

/// Runs indicator-tempered exploration chains and aggregates which sites
/// and bit positions the error-conditioned posterior implicates.
///
/// The sample budget is split over several independent restarts (the
/// tempered target is highly multimodal — one error-causing bit per mode —
/// and a single local chain would report only the first mode it finds).
///
/// `beta` defaults (when `None`) to `ln((1−p)/p) + 2` computed from the
/// expected-flip rate of the fault model — just above the prior barrier, so
/// local moves can climb into the error region.
///
/// # Panics
///
/// Panics if `samples == 0` or the model exposes no parameter sites.
pub fn attribute_faults(
    fm: &FaultyModel,
    samples: usize,
    beta: Option<f64>,
    seed: u64,
) -> AttributionReport {
    match attribute_faults_controlled(fm, samples, beta, seed, &RunControl::default(), None) {
        Ok(report) => report,
        Err(e) => panic!("attribution failed: {e}"),
    }
}

/// [`attribute_faults`] with cooperative cancellation and an optional
/// checkpoint journal (one entry per completed restart chain).
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`attribute_faults`].
pub fn attribute_faults_controlled(
    fm: &FaultyModel,
    samples: usize,
    beta: Option<f64>,
    seed: u64,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<AttributionReport, EngineError> {
    assert!(samples > 0, "attribution needs at least one sample");
    let restarts = 8.min(samples);
    let per_chain = samples.div_ceil(restarts);
    // Restarts are independent chains — fan them out through the engine
    // (restart `r` draws from seed-stream lanes 2r and 2r+1) and merge the
    // reports in restart order, so the result is worker-count invariant.
    let engine = EvalEngine::new(seed);
    let ckpt = ckpt.cloned().map(|mut s| {
        if s.fingerprint.is_empty() {
            s.fingerprint = fingerprint(
                "attribution",
                &(samples, beta.unwrap_or(f64::NAN), seed, fm.golden_error()),
            );
        }
        s
    });
    let mut sink = CollectSink::new();
    engine.run_checkpointed(
        restarts,
        || (),
        |(), ctx| {
            Ok(attribute_single_chain(
                fm,
                per_chain,
                beta,
                seed,
                ctx.task_id,
            ))
        },
        &mut sink,
        ctl,
        ckpt.as_ref(),
    )?;
    Ok(sink
        .into_inner()
        .into_iter()
        .reduce(merge_reports)
        .expect("at least one restart"))
}

/// Pools two attribution reports, weighting by their sample counts.
fn merge_reports(a: AttributionReport, b: AttributionReport) -> AttributionReport {
    let (na, nb) = (a.samples as f64, b.samples as f64);
    let total = (na + nb).max(1.0);
    let mut sites: Vec<SiteAttribution> = a
        .sites
        .iter()
        .map(|sa| {
            let sb = b
                .sites
                .iter()
                .find(|s| s.path == sa.path)
                .expect("same site set across restarts");
            SiteAttribution {
                path: sa.path.clone(),
                elements: sa.elements,
                hit_share: (sa.hit_share * na + sb.hit_share * nb) / total,
                mean_flips: (sa.mean_flips * na + sb.mean_flips * nb) / total,
            }
        })
        .collect();
    sites.sort_by(|x, y| y.hit_share.partial_cmp(&x.hit_share).unwrap());
    let mut bit_histogram = [0.0f64; 32];
    for (i, h) in bit_histogram.iter_mut().enumerate() {
        *h = (a.bit_histogram[i] * na + b.bit_histogram[i] * nb) / total;
    }
    // Renormalise (restarts with zero hits contribute nothing).
    let s: f64 = bit_histogram.iter().sum();
    if s > 0.0 {
        for h in &mut bit_histogram {
            *h /= s;
        }
    }
    AttributionReport {
        sites,
        bit_histogram,
        samples: a.samples + b.samples,
        hit_rate: (a.hit_rate * na + b.hit_rate * nb) / total,
    }
}

fn attribute_single_chain(
    fm: &FaultyModel,
    samples: usize,
    beta: Option<f64>,
    seed: u64,
    restart: usize,
) -> AttributionReport {
    assert!(samples > 0, "attribution needs at least one sample");
    let sites = fm.sites().params.clone();
    assert!(!sites.is_empty(), "attribution needs parameter sites");

    // Default β from the per-bit rate implied by the fault model.
    let total_bits: f64 = sites.iter().map(|s| s.len as f64 * 32.0).sum();
    let p_est = (fm
        .fault_model()
        .expected_flips(sites.iter().map(|s| s.len).sum::<usize>())
        / total_bits)
        .clamp(1e-12, 0.5);
    let beta = beta.unwrap_or(((1.0 - p_est) / p_est).ln() + 2.0);

    let golden = fm.golden_error();

    // Indicator-tempered chain (exploration mode of E6). Two seed-stream
    // lanes per restart: proposals and transient activation faults.
    let mut model = fm.clone();
    let mut rng = StdRng::seed_from_u64(seed_stream(seed, 2 * restart as u64));
    let mut act_rng = StdRng::seed_from_u64(seed_stream(seed, 2 * restart as u64 + 1));
    let sites_arc = Arc::new(sites.clone());
    let proposal =
        crate::proposals::BitToggleProposal::new(Arc::clone(&sites_arc), BitRange::all());
    let fault_model = Arc::clone(fm.fault_model());

    let mut state = FaultConfig::clean();

    let mut hit_samples = 0usize;
    let mut steps = 0usize;
    let mut site_hits: HashMap<String, (u64, u64)> = HashMap::new(); // (samples with hits, total flips)
    let mut bit_counts = [0u64; 32];
    let mut total_flip_count = 0u64;

    {
        use std::cell::RefCell;
        let model = RefCell::new(&mut model);
        let act_rng = RefCell::new(&mut act_rng);
        let memo: RefCell<Option<(FaultConfig, f64)>> = RefCell::new(None);
        // One evaluation per distinct state, memoised across target and
        // recording.
        let eval = |c: &FaultConfig| -> f64 {
            if let Some((cached, err)) = memo.borrow().as_ref() {
                if cached == c {
                    return *err;
                }
            }
            let err = model.borrow_mut().eval_error(c, *act_rng.borrow_mut());
            *memo.borrow_mut() = Some((c.clone(), err));
            err
        };

        let mut log_target = |c: &FaultConfig| -> f64 {
            let prior = c
                .log_prob(&sites_arc, fault_model.as_ref())
                .expect("fault model must define a density");
            let hit = eval(c) > golden + 1e-12;
            prior + if hit { beta } else { 0.0 }
        };
        let mut lp = log_target(&state);

        // Burn-in to climb into the error region, then record.
        let burn = (samples / 2).max(50);
        for i in 0..burn + samples {
            mh_step(&mut state, &mut lp, &proposal, &mut log_target, &mut rng);
            steps += 1;
            if i < burn {
                continue;
            }
            // Record only error-conditioned states.
            let err = eval(&state);
            if err <= golden + 1e-12 {
                continue;
            }
            hit_samples += 1;
            for path in state.affected_paths() {
                let mask = state.mask(path);
                let entry = site_hits.entry(path.to_string()).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += u64::from(mask.bit_count());
                for &(_, pattern) in mask.entries() {
                    for bit in 0..32u8 {
                        if pattern & (1 << bit) != 0 {
                            bit_counts[bit as usize] += 1;
                            total_flip_count += 1;
                        }
                    }
                }
            }
        }
    }

    let mut out: Vec<SiteAttribution> = sites
        .iter()
        .map(|s| {
            let (hits, flips) = site_hits.get(&s.path).copied().unwrap_or((0, 0));
            SiteAttribution {
                path: s.path.clone(),
                elements: s.len,
                hit_share: hits as f64 / hit_samples.max(1) as f64,
                mean_flips: flips as f64 / hit_samples.max(1) as f64,
            }
        })
        .collect();
    out.sort_by(|a, b| b.hit_share.partial_cmp(&a.hit_share).unwrap());

    let mut bit_histogram = [0.0f64; 32];
    if total_flip_count > 0 {
        for (h, &c) in bit_histogram.iter_mut().zip(bit_counts.iter()) {
            *h = c as f64 / total_flip_count as f64;
        }
    }

    AttributionReport {
        sites: out,
        bit_histogram,
        samples: hit_samples,
        hit_rate: hit_samples as f64 / steps.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
    use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};

    fn trained_fm(p: f64) -> FaultyModel {
        let mut rng = StdRng::seed_from_u64(77);
        let data = gaussian_blobs(200, 3, 0.8, &mut rng);
        let mut model = mlp(2, &[16], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 20,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, data.inputs(), data.labels(), &mut rng);
        FaultyModel::new(
            model,
            Arc::new(data),
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::new(p)),
        )
    }

    #[test]
    fn attribution_finds_error_causing_sites() {
        let fm = trained_fm(2e-5);
        let report = attribute_faults(&fm, 150, None, 3);
        assert!(report.samples > 30, "too few hits: {}", report.samples);
        assert!(report.hit_rate > 0.1, "hit rate {}", report.hit_rate);
        // Site shares are ordered and bounded.
        for w in report.sites.windows(2) {
            assert!(w[0].hit_share >= w[1].hit_share);
        }
        assert!(report.sites[0].hit_share > 0.0);
        // The histogram is a distribution over bit positions.
        let total: f64 = report.bit_histogram.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "histogram sums to {total}");
    }

    #[test]
    fn errors_are_attributed_to_exponent_bits() {
        let fm = trained_fm(2e-5);
        let report = attribute_faults(&fm, 150, None, 4);
        // Error-conditioned flips concentrate in the exponent field (8 of
        // 32 positions -> uniform share would be 0.25).
        assert!(
            report.exponent_share() > 0.5,
            "exponent share {}",
            report.exponent_share()
        );
    }

    #[test]
    fn top_sites_is_bounded() {
        let fm = trained_fm(2e-5);
        let report = attribute_faults(&fm, 60, None, 5);
        assert_eq!(report.top_sites(2).len(), 2);
        assert_eq!(report.top_sites(100).len(), report.sites.len());
    }
}
