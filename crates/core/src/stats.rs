//! Small statistics helpers used by the analyses: correlation measures and
//! a two-segment piecewise-linear fit (knee detection).

/// Pearson correlation coefficient.
///
/// Returns `NaN` for fewer than 2 points or zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal-length slices");
    let n = x.len();
    if n < 2 {
        return f64::NAN;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation (Pearson on mid-ranks; ties averaged).
///
/// Returns `NaN` for fewer than 2 points or constant inputs.
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman requires equal-length slices");
    pearson(&ranks(x), &ranks(y))
}

/// Mid-ranks of a slice (1-based; ties share the average rank).
fn ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Result of a two-segment piecewise-linear fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KneeFit {
    /// Index of the breakpoint (the knee belongs to both segments).
    pub knee_index: usize,
    /// The x-coordinate of the knee.
    pub knee_x: f64,
    /// Total squared error of the two-segment fit.
    pub sse: f64,
    /// Slope of the left segment.
    pub left_slope: f64,
    /// Slope of the right segment.
    pub right_slope: f64,
}

/// Fits two least-squares line segments with a shared breakpoint chosen to
/// minimise total squared error — used to locate the "knee" of the paper's
/// Figs. 2/4 error-vs-`p` curves, where the flat low-`p` regime meets the
/// steep high-`p` regime.
///
/// # Panics
///
/// Panics if fewer than 4 points are supplied or the lengths differ.
pub fn fit_knee(x: &[f64], y: &[f64]) -> KneeFit {
    assert_eq!(x.len(), y.len(), "fit_knee requires equal-length slices");
    let n = x.len();
    assert!(n >= 4, "knee fitting needs at least 4 points");

    let sse_of = |xs: &[f64], ys: &[f64]| -> (f64, f64) {
        // Least-squares line; returns (sse, slope).
        let m = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / m;
        let my = ys.iter().sum::<f64>() / m;
        let sxx: f64 = xs.iter().map(|v| (v - mx).powi(2)).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(a, b)| (a - mx) * (b - my)).sum();
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let intercept = my - slope * mx;
        let sse: f64 = xs
            .iter()
            .zip(ys)
            .map(|(a, b)| (b - (slope * a + intercept)).powi(2))
            .sum();
        (sse, slope)
    };

    let mut best: Option<KneeFit> = None;
    // Breakpoints 1..=n-2 give both segments at least two points (the left
    // segment holds k+1 points, the right n-k) — a symmetric floor, so a
    // knee in the last interior position is a candidate too.
    for k in 1..n - 1 {
        // Left segment [0..=k], right segment [k..n): knee shared.
        let (sse_l, slope_l) = sse_of(&x[..=k], &y[..=k]);
        let (sse_r, slope_r) = sse_of(&x[k..], &y[k..]);
        let total = sse_l + sse_r;
        if best.is_none_or(|b| total < b.sse) {
            best = Some(KneeFit {
                knee_index: k,
                knee_x: x[k],
                sse: total,
                left_slope: slope_l,
                right_slope: slope_r,
            });
        }
    }
    best.expect("at least one breakpoint candidate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_linear_data_is_one() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone nonlinear relation: Spearman 1, Pearson < 1.
        let x: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 0.999);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let r = ranks(&x);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let y = [1.0, 1.0, 2.0, 2.0];
        let s = spearman(&x, &y);
        assert!(s > 0.7 && s <= 1.0);
    }

    #[test]
    fn uncorrelated_data_scores_near_zero() {
        // Deterministic "uncorrelated" pattern.
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        assert!(spearman(&x, &y).abs() < 0.2);
    }

    #[test]
    fn knee_found_in_hockey_stick() {
        // Flat until x = 5, then slope 2 — knee at index 5.
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v <= 5.0 { 1.0 } else { 1.0 + 2.0 * (v - 5.0) })
            .collect();
        let fit = fit_knee(&x, &y);
        assert!(
            (4..=6).contains(&fit.knee_index),
            "knee at {}",
            fit.knee_index
        );
        assert!(fit.left_slope.abs() < 0.3);
        assert!(fit.right_slope > 1.5);
    }

    #[test]
    fn knee_fit_sse_is_small_for_exact_piecewise_data() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v <= 4.0 { 0.0 } else { v - 4.0 })
            .collect();
        let fit = fit_knee(&x, &y);
        assert!(fit.sse < 1e-9, "sse {}", fit.sse);
    }

    #[test]
    fn knee_in_last_interior_position_is_found() {
        // Flat everywhere except the final point: the ideal breakpoint is
        // k = n-2, which the old asymmetric loop (1..n-2) excluded.
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| if v <= 6.0 { 1.0 } else { 1.0 + 5.0 * (v - 6.0) })
            .collect();
        let fit = fit_knee(&x, &y);
        assert_eq!(fit.knee_index, 6, "knee at {}", fit.knee_index);
        assert!(fit.sse < 1e-9, "sse {}", fit.sse);
        assert!(fit.left_slope.abs() < 1e-9);
        assert!((fit.right_slope - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn knee_requires_enough_points() {
        fit_knee(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0]);
    }
}
