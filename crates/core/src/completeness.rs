//! Campaign completeness certification via MCMC mixing.
//!
//! The paper's headline advantage over traditional fault injection:
//! "the ability to quantify 'completeness' of an injection campaign (i.e.,
//! when further injections do not change the measured hypothesis) using
//! MCMC-mixing". A campaign is *certified* when the chains agree
//! (split-R̂), carry enough information (ESS) and pin the estimate down
//! (Monte Carlo standard error).

use bdlfi_bayes::{ess_slices, mcse_slices, split_rhat_slices, Trace};
use serde::{Deserialize, Serialize};

/// Thresholds a campaign must meet to be certified complete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletenessCriteria {
    /// Maximum acceptable split-R̂ (conventionally 1.01).
    pub max_rhat: f64,
    /// Minimum effective sample size across chains.
    pub min_ess: f64,
    /// Maximum Monte Carlo standard error of the pooled mean, in the units
    /// of the statistic (classification error is a fraction in `[0, 1]`).
    pub max_mcse: f64,
}

impl Default for CompletenessCriteria {
    fn default() -> Self {
        CompletenessCriteria {
            max_rhat: 1.01,
            min_ess: 400.0,
            max_mcse: 0.01,
        }
    }
}

/// The mixing evidence for one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletenessReport {
    /// Split-R̂ across chains.
    pub rhat: f64,
    /// Effective sample size across chains.
    pub ess: f64,
    /// Monte Carlo standard error of the pooled mean.
    pub mcse: f64,
    /// Whether all criteria are met.
    pub certified: bool,
}

/// Assesses a set of chains against the criteria.
///
/// Single-chain campaigns can still certify on ESS and MCSE; a `NaN` R̂
/// (undefined, e.g. too few samples) fails certification, but an R̂ of
/// exactly 1.0 from constant traces passes (a statistic that never moves
/// is maximally converged).
pub fn assess(chains: &[Trace], criteria: &CompletenessCriteria) -> CompletenessReport {
    let slices: Vec<&[f64]> = chains.iter().map(Trace::samples).collect();
    assess_slices(&slices, criteria)
}

/// [`assess`] on borrowed sample slices — lets growing-prefix scans avoid
/// cloning each prefix into a fresh [`Trace`].
pub fn assess_slices(chains: &[&[f64]], criteria: &CompletenessCriteria) -> CompletenessReport {
    let rhat = split_rhat_slices(chains);
    let e = ess_slices(chains);
    let m = mcse_slices(chains);
    // Constant traces have zero variance: mcse = 0, which certifies.
    let rhat_ok = rhat.is_finite() && rhat <= criteria.max_rhat;
    let ess_ok = e.is_finite() && e >= criteria.min_ess;
    let mcse_ok = m.is_finite() && m <= criteria.max_mcse;
    CompletenessReport {
        rhat,
        ess: e,
        mcse: m,
        certified: rhat_ok && ess_ok && mcse_ok,
    }
}

/// The number of recorded samples per chain after which the campaign first
/// certifies, assessed on growing prefixes in steps of `step` — the E5
/// experiment ("injections needed before the hypothesis stops moving").
///
/// Returns `None` if the full traces never certify.
///
/// # Panics
///
/// Panics if `step == 0`.
pub fn samples_to_certify(
    chains: &[Trace],
    criteria: &CompletenessCriteria,
    step: usize,
) -> Option<usize> {
    assert!(step > 0, "step must be positive");
    let n = chains.iter().map(Trace::len).min().unwrap_or(0);
    let mut k = step;
    while k <= n {
        // Borrow each prefix instead of cloning it into a fresh Trace —
        // the scan is O(n·k_certify) in samples touched, not O(n²) allocated.
        let prefixes: Vec<&[f64]> = chains.iter().map(|c| &c.samples()[..k]).collect();
        if assess_slices(&prefixes, criteria).certified {
            return Some(k);
        }
        k += step;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_bayes::dist::{Distribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn iid_chains(n_chains: usize, n: usize, sigma: f64) -> Vec<Trace> {
        (0..n_chains)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(s as u64);
                let d = Normal::new(0.5, sigma);
                (0..n).map(|_| d.sample(&mut rng)).collect()
            })
            .collect()
    }

    #[test]
    fn good_chains_certify() {
        let chains = iid_chains(4, 4000, 0.05);
        let rep = assess(&chains, &CompletenessCriteria::default());
        assert!(rep.certified, "{rep:?}");
        assert!(rep.rhat < 1.01);
        assert!(rep.ess > 1000.0);
    }

    #[test]
    fn disagreeing_chains_fail() {
        let mut chains = iid_chains(2, 2000, 0.05);
        // Shift one chain: R-hat blows up.
        let shifted: Trace = chains[0].samples().iter().map(|x| x + 1.0).collect();
        chains[0] = shifted;
        let rep = assess(&chains, &CompletenessCriteria::default());
        assert!(!rep.certified);
        assert!(rep.rhat > 1.01);
    }

    #[test]
    fn short_chains_fail_on_ess() {
        let chains = iid_chains(2, 50, 0.05);
        let rep = assess(&chains, &CompletenessCriteria::default());
        assert!(!rep.certified);
        assert!(rep.ess < 400.0);
    }

    #[test]
    fn noisy_chains_fail_on_mcse() {
        // Huge variance: even many samples leave a wide standard error.
        let chains = iid_chains(4, 1000, 5.0);
        let rep = assess(&chains, &CompletenessCriteria::default());
        assert!(rep.mcse > 0.01);
        assert!(!rep.certified);
    }

    #[test]
    fn samples_to_certify_increases_with_noise() {
        let crit = CompletenessCriteria {
            max_rhat: 1.05,
            min_ess: 100.0,
            max_mcse: 0.01,
        };
        let quiet = iid_chains(4, 4000, 0.05);
        let loud = iid_chains(4, 4000, 0.3);
        let a = samples_to_certify(&quiet, &crit, 50).expect("quiet certifies");
        let b = samples_to_certify(&loud, &crit, 50).expect("loud certifies");
        assert!(a < b, "quiet {a} vs loud {b}");
    }

    #[test]
    fn borrowed_prefix_scan_matches_cloning_reference() {
        // The certified step must be unchanged by the move from cloned
        // prefix Traces to borrowed slices.
        let crit = CompletenessCriteria {
            max_rhat: 1.05,
            min_ess: 100.0,
            max_mcse: 0.01,
        };
        for chains in [iid_chains(4, 4000, 0.05), iid_chains(4, 4000, 0.3)] {
            let step = 50;
            let fast = samples_to_certify(&chains, &crit, step);
            let reference = {
                let n = chains.iter().map(Trace::len).min().unwrap_or(0);
                let mut found = None;
                let mut k = step;
                while k <= n {
                    let prefixes: Vec<Trace> = chains
                        .iter()
                        .map(|c| Trace::from_samples(c.samples()[..k].to_vec()))
                        .collect();
                    if assess(&prefixes, &crit).certified {
                        found = Some(k);
                        break;
                    }
                    k += step;
                }
                found
            };
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn never_certifying_returns_none() {
        let chains = iid_chains(2, 100, 10.0);
        assert_eq!(
            samples_to_certify(&chains, &CompletenessCriteria::default(), 10),
            None
        );
    }
}
