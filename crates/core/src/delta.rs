//! Sparse-delta forward evaluation: rank-k fault corrections instead of
//! dense suffix re-inference.
//!
//! The incremental path (PR 1) already skips every layer *before* a fault;
//! this module also skips most of the work *after* it. A fault confined to
//! a dense layer's weight column `j` (or bias element `j`) perturbs only
//! output column `j` of that layer, so the faulty layer output is the
//! cached golden output with the touched columns recomputed — a few dot
//! products via [`Dense::forward_cols`] instead of a full GEMM. The
//! correction is then propagated through the suffix layer by layer,
//! tracking which *examples* still deviate from the golden boundary:
//! a row whose recomputed activation bit-matches the cached golden
//! activation (the ReLU gated the delta off, or the faulted input feature
//! was zero) is dropped from the dirty set, and subsequent layers run only
//! on the surviving sub-batch.
//!
//! # Why this is exact
//!
//! No floating-point corrections are ever *added*: every value the
//! evaluator emits is either the cached golden value or a recomputation
//! through the very kernels the dense path uses. Two structural facts make
//! the recomputations bit-identical to a full pass:
//!
//! * **Column independence** — the blocked GEMM reduces each output
//!   element over `k` in a fixed order that depends neither on which rows
//!   nor on which columns share the call, so a column-subset product
//!   equals the corresponding columns of the full product bit for bit
//!   (integer accumulation in the int8 path is exact outright).
//! * **Row independence** — every layer computes each example
//!   independently of the rest of its batch (the [`bdlfi_nn::PrefixCache`]
//!   guarantee), so forwarding only the dirty rows reproduces exactly what
//!   those rows would be in the full batch.
//!
//! # Densification and fallback
//!
//! When the dirty-row fraction exceeds [`DENSIFY_THRESHOLD`], support
//! tracking stops paying for its comparisons: the evaluator scatters the
//! dirty rows into the golden boundary and finishes with one dense
//! `forward_from` — still exact, just no longer sparse. And whenever a
//! configuration falls outside the provably-confined cases — transient
//! activation/input sites, faults in conv/block/batch-norm layers (channel
//! fan-out), quantized `out_zp` faults (the output zero-point reaches
//! every column through the shared requantizer), unknown mask paths — the
//! planner refuses (`None`) and the caller falls back to the exact
//! incremental path. Per-channel `w_scale` faults on dense stages *are*
//! confined: scale element `e` feeds only column `e`'s requantizer. [`DeltaStats`] counts both outcomes so reports show how often the
//! fast path fired.

use bdlfi_faults::FaultConfig;
use bdlfi_nn::layers::Dense;
use bdlfi_nn::{ForwardCtx, Mode, PrefixCache, Sequential};
use bdlfi_quant::{QPrefixCache, QuantModel};
use bdlfi_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Dirty-row fraction above which the evaluator densifies: scatters the
/// surviving corrections into the golden boundary and finishes with one
/// dense suffix pass. Benched on the `perf_smoke` layerwise scenario —
/// above ~3/4 dirty rows the per-layer comparisons cost more than the
/// GEMM work they save.
pub const DENSIFY_THRESHOLD: f64 = 0.75;

/// Shared hit/fallback counters for the sparse-delta path.
///
/// One instance lives behind an `Arc` in each workload; chain clones share
/// it, so a campaign's counters aggregate across workers. Drivers snapshot
/// the counters around an engine run and stamp the difference into
/// [`crate::engine::RunMeta`].
#[derive(Debug, Default)]
pub struct DeltaStats {
    hits: AtomicU64,
    fallbacks: AtomicU64,
}

impl DeltaStats {
    /// Records one evaluation served by the sparse-delta path.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one evaluation routed to the exact fallback.
    pub fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Current `(hits, fallbacks)` totals.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.fallbacks.load(Ordering::Relaxed),
        )
    }
}

/// The per-layer operations the generic delta loop needs from a model.
/// Implemented for the f32 [`Sequential`] and the int8 [`QuantModel`], so
/// both paths share one propagation loop (and cannot drift apart).
trait DeltaModel {
    fn depth(&self) -> usize;
    /// Column-subset recompute of the (planned dense) layer `l`.
    fn forward_cols(&self, l: usize, input: &Tensor, cols: &[usize]) -> Tensor;
    /// One full-width layer step on a sub-batch.
    fn forward_one(&mut self, l: usize, input: &Tensor) -> Tensor;
    /// Dense suffix pass from layer `start` (the densification exit).
    fn forward_from(&mut self, start: usize, input: &Tensor) -> Tensor;
}

/// Read access to the cached golden boundaries, per batch and layer.
trait DeltaCache {
    fn num_batches(&self) -> usize;
    fn examples(&self) -> usize;
    fn classes(&self) -> usize;
    fn boundary(&self, b: usize, l: usize) -> &Tensor;
}

struct F32Substrate<'m>(&'m mut Sequential);

impl DeltaModel for F32Substrate<'_> {
    fn depth(&self) -> usize {
        self.0.len()
    }

    fn forward_cols(&self, l: usize, input: &Tensor, cols: &[usize]) -> Tensor {
        let (_, layer) = self.0.layer_at(l);
        layer
            .as_any()
            .and_then(|a| a.downcast_ref::<Dense>())
            // bdlfi-lint: allow(BD010) -- planner invariant: only dense layers are ever marked column-dirty
            .expect("planner only marks dense layers dirty")
            .forward_cols(input, cols)
    }

    fn forward_one(&mut self, l: usize, input: &Tensor) -> Tensor {
        self.0
            .forward_one(l, input, &mut ForwardCtx::new(Mode::Eval))
    }

    fn forward_from(&mut self, start: usize, input: &Tensor) -> Tensor {
        self.0
            .forward_from(start, input, &mut ForwardCtx::new(Mode::Eval))
    }
}

struct QuantSubstrate<'m>(&'m mut QuantModel);

impl DeltaModel for QuantSubstrate<'_> {
    fn depth(&self) -> usize {
        self.0.len()
    }

    fn forward_cols(&self, l: usize, input: &Tensor, cols: &[usize]) -> Tensor {
        let (_, op) = self.0.op_at(l);
        op.as_dense()
            // bdlfi-lint: allow(BD010) -- planner invariant: only qdense stages are ever marked column-dirty
            .expect("planner only marks qdense stages dirty")
            .forward_cols(input, cols)
    }

    fn forward_one(&mut self, l: usize, input: &Tensor) -> Tensor {
        self.0.forward_one(l, input)
    }

    fn forward_from(&mut self, start: usize, input: &Tensor) -> Tensor {
        self.0.forward_from(start, input)
    }
}

impl DeltaCache for PrefixCache {
    fn num_batches(&self) -> usize {
        PrefixCache::num_batches(self)
    }

    fn examples(&self) -> usize {
        PrefixCache::examples(self)
    }

    fn classes(&self) -> usize {
        PrefixCache::classes(self)
    }

    fn boundary(&self, b: usize, l: usize) -> &Tensor {
        PrefixCache::boundary(self, b, l)
    }
}

impl DeltaCache for QPrefixCache {
    fn num_batches(&self) -> usize {
        QPrefixCache::num_batches(self)
    }

    fn examples(&self) -> usize {
        QPrefixCache::examples(self)
    }

    fn classes(&self) -> usize {
        QPrefixCache::classes(self)
    }

    fn boundary(&self, b: usize, l: usize) -> &Tensor {
        QPrefixCache::boundary(self, b, l)
    }
}

/// Evaluates a fault configuration on the f32 model through the
/// sparse-delta path, or returns `None` when the configuration is not
/// provably column-confined — the caller must then fall back to the exact
/// incremental path ([`PrefixCache::predict_from`]).
///
/// The model must already have `cfg` applied (faults XORed in), exactly as
/// on the incremental path. A `Some` result is bit-identical to the dense
/// re-inference of the faulted model.
pub fn forward_delta_f32(
    model: &mut Sequential,
    cache: &PrefixCache,
    cfg: &FaultConfig,
    densify_threshold: f64,
) -> Option<Tensor> {
    let dirty = plan_f32(model, cfg)?;
    Some(run_delta(
        &mut F32Substrate(model),
        cache,
        &dirty,
        densify_threshold,
    ))
}

/// The int8 twin of [`forward_delta_f32`]: evaluates a fault configuration
/// on the quantized model through the sparse-delta path, or returns `None`
/// when it is not provably column-confined (conv/block stages, `out_zp`
/// faults, unknown paths) — the caller must then fall back to the exact
/// incremental path ([`QPrefixCache::predict_from`]). Dense weight bytes,
/// bias words and per-channel `w_scale` elements all confine to a column.
///
/// The model must already have `cfg` applied.
pub fn forward_delta_quant(
    model: &mut QuantModel,
    cache: &QPrefixCache,
    cfg: &FaultConfig,
    densify_threshold: f64,
) -> Option<Tensor> {
    let dirty = plan_quant(model, cfg)?;
    Some(run_delta(
        &mut QuantSubstrate(model),
        cache,
        &dirty,
        densify_threshold,
    ))
}

/// Maps a configuration to `{dense layer index -> sorted dirty output
/// columns}` — or `None` when any mask falls outside the column-confined
/// cases (non-dense layer, transient site, unknown path).
fn plan_f32(model: &Sequential, cfg: &FaultConfig) -> Option<BTreeMap<usize, Vec<usize>>> {
    let mut dirty: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for path in cfg.affected_paths() {
        let li = model.layer_index_of_param(path)?;
        let (name, layer) = model.layer_at(li);
        let dense = layer.as_any()?.downcast_ref::<Dense>()?;
        let field = path.strip_prefix(name).and_then(|r| r.strip_prefix('.'))?;
        push_cols(
            dirty.entry(li).or_default(),
            field,
            cfg.mask(path).entries(),
            dense.out_dim(),
        )?;
    }
    for cols in dirty.values_mut() {
        cols.sort_unstable();
        cols.dedup();
    }
    Some(dirty)
}

/// The quantized planner: dense stages confine weight-byte and bias-word
/// faults to one column each; everything else falls back.
fn plan_quant(model: &QuantModel, cfg: &FaultConfig) -> Option<BTreeMap<usize, Vec<usize>>> {
    let mut dirty: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for path in cfg.affected_paths() {
        let li = model.op_index_of_site(path)?;
        let (name, op) = model.op_at(li);
        let qd = op.as_dense()?;
        let field = path.strip_prefix(name).and_then(|r| r.strip_prefix('.'))?;
        push_cols(
            dirty.entry(li).or_default(),
            field,
            cfg.mask(path).entries(),
            qd.out_dim(),
        )?;
    }
    for cols in dirty.values_mut() {
        cols.sort_unstable();
        cols.dedup();
    }
    Some(dirty)
}

/// Appends the output columns a mask on `field` perturbs: a weight flip at
/// flat index `e` of an `(in, out)` matrix lands in column `e % out`; a
/// bias flip at index `e` — or a per-channel `w_scale` flip at index `e`,
/// since dense weight scales are per output column and only column `e`'s
/// requantizer reads scale `e` — lands in column `e`. Any other field
/// (`out_zp`, `in_scale`, …) reaches every column — refuse.
fn push_cols(
    cols: &mut Vec<usize>,
    field: &str,
    entries: &[(usize, u32)],
    out: usize,
) -> Option<()> {
    match field {
        "weight" => cols.extend(entries.iter().map(|&(e, _)| e % out)),
        "bias" | "w_scale" => {
            for &(e, _) in entries {
                if e >= out {
                    return None;
                }
                cols.push(e);
            }
        }
        _ => return None,
    }
    Some(())
}

/// Bitwise slice equality — the support-tracking criterion. Numeric `==`
/// would conflate `0.0` with `-0.0` and drop NaN rows; only bit equality
/// lets a "clean" row safely reuse the cached golden value.
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The shared propagation loop: walks every batch from the first dirty
/// layer, recomputing touched columns at dirty dense layers, forwarding
/// only deviating rows through clean layers, and densifying when the dirty
/// fraction passes the threshold. Exact by construction (see module docs).
fn run_delta<M: DeltaModel, C: DeltaCache>(
    model: &mut M,
    cache: &C,
    dirty: &BTreeMap<usize, Vec<usize>>,
    densify_threshold: f64,
) -> Tensor {
    let mut out = Vec::with_capacity(cache.examples() * cache.classes());
    for b in 0..cache.num_batches() {
        let logits = delta_batch(model, cache, b, dirty, densify_threshold);
        out.extend_from_slice(logits.data());
    }
    Tensor::from_vec(out, [cache.examples(), cache.classes()])
}

fn delta_batch<M: DeltaModel, C: DeltaCache>(
    model: &mut M,
    cache: &C,
    b: usize,
    dirty: &BTreeMap<usize, Vec<usize>>,
    densify_threshold: f64,
) -> Tensor {
    let depth = model.depth();
    let n = cache.boundary(b, 0).dim(0);
    let start = dirty.keys().next().copied().unwrap_or(depth);
    // The dirty set at the current boundary: batch row indices (sorted)
    // and their activations, flattened row-major.
    let mut rows: Vec<usize> = Vec::new();
    let mut acts: Vec<f32> = Vec::new();
    for l in start..depth {
        let is_dirty_layer = dirty.contains_key(&l);
        if rows.is_empty() && !is_dirty_layer {
            continue;
        }
        let golden_out = cache.boundary(b, l + 1);
        let width = golden_out.len() / n;
        let mut new_rows = Vec::new();
        let mut new_acts = Vec::new();
        if let Some(cols) = dirty.get(&l) {
            // Dirty dense layer: previously-clean rows differ from golden
            // only in `cols` (recomputed from the golden input); rows that
            // already deviated need the full width.
            let golden_in = cache.boundary(b, l);
            let y_sub = model.forward_cols(l, golden_in, cols);
            let y_dirty = (!rows.is_empty()).then(|| {
                let x = sub_batch(&acts, &rows, golden_in, n);
                model.forward_one(l, &x)
            });
            let mut di = 0usize;
            for r in 0..n {
                let golden_row = &golden_out.data()[r * width..(r + 1) * width];
                if rows.get(di) == Some(&r) {
                    // bdlfi-lint: allow(BD010) -- invariant: a row listed in `rows` was recomputed by the branch above
                    let y = y_dirty.as_ref().expect("dirty rows imply a recompute");
                    let row = &y.data()[di * width..(di + 1) * width];
                    di += 1;
                    if !bits_eq(row, golden_row) {
                        new_rows.push(r);
                        new_acts.extend_from_slice(row);
                    }
                } else {
                    let sub_row = &y_sub.data()[r * cols.len()..(r + 1) * cols.len()];
                    let changed = cols
                        .iter()
                        .zip(sub_row)
                        .any(|(&c, v)| v.to_bits() != golden_row[c].to_bits());
                    if changed {
                        new_rows.push(r);
                        let base = new_acts.len();
                        new_acts.extend_from_slice(golden_row);
                        for (&c, &v) in cols.iter().zip(sub_row) {
                            new_acts[base + c] = v;
                        }
                    }
                }
            }
        } else {
            // Clean layer: forward only the deviating rows; a row whose
            // output bit-matches the golden boundary re-joins the cached
            // majority (ReLU gating kills most deltas here).
            let golden_in = cache.boundary(b, l);
            let x = sub_batch(&acts, &rows, golden_in, n);
            let y = model.forward_one(l, &x);
            for (di, &r) in rows.iter().enumerate() {
                let row = &y.data()[di * width..(di + 1) * width];
                let golden_row = &golden_out.data()[r * width..(r + 1) * width];
                if !bits_eq(row, golden_row) {
                    new_rows.push(r);
                    new_acts.extend_from_slice(row);
                }
            }
        }
        rows = new_rows;
        acts = new_acts;
        if rows.len() as f64 > densify_threshold * n as f64 {
            // Support grew too wide for per-row tracking: scatter into the
            // golden boundary and finish with one dense suffix pass.
            let mut full = golden_out.data().to_vec();
            for (i, &r) in rows.iter().enumerate() {
                full[r * width..(r + 1) * width].copy_from_slice(&acts[i * width..(i + 1) * width]);
            }
            let full = Tensor::from_vec(full, golden_out.dims().to_vec());
            return model.forward_from(l + 1, &full);
        }
    }
    // Assemble the batch logits: cached golden rows plus the survivors.
    let golden_logits = cache.boundary(b, depth);
    let width = golden_logits.len() / n;
    let mut out = golden_logits.data().to_vec();
    for (i, &r) in rows.iter().enumerate() {
        out[r * width..(r + 1) * width].copy_from_slice(&acts[i * width..(i + 1) * width]);
    }
    Tensor::from_vec(out, golden_logits.dims().to_vec())
}

/// Gathers the dirty rows into a sub-batch tensor shaped like `boundary`
/// with the batch axis shrunk to `rows.len()`.
fn sub_batch(acts: &[f32], rows: &[usize], boundary: &Tensor, n: usize) -> Tensor {
    debug_assert_eq!(acts.len(), rows.len() * (boundary.len() / n));
    let mut dims = boundary.dims().to_vec();
    dims[0] = rows.len();
    Tensor::from_vec(acts.to_vec(), dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_faults::FaultMask;
    use bdlfi_nn::{mlp, predict_all};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    fn flip_cfg(path: &str, element: usize, bit: u8) -> FaultConfig {
        let mut cfg = FaultConfig::clean();
        let mut mask = FaultMask::empty();
        mask.push_bit(element, bit);
        cfg.set_mask(path, mask);
        cfg
    }

    #[test]
    fn delta_matches_dense_reinference_bitwise() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(3, &[16, 16, 16], 4, &mut rng);
        let x = Tensor::rand_normal([50, 3], 0.0, 1.0, &mut rng);
        let cache = PrefixCache::build(&mut m, &x, 16);

        for (path, element, bit) in [
            ("fc1.weight", 5usize, 20u8),
            ("fc2.weight", 40, 30),
            ("fc2.bias", 3, 22),
            ("fc4.weight", 10, 18),
            ("fc4.bias", 2, 30),
        ] {
            let cfg = flip_cfg(path, element, bit);
            cfg.apply(&mut m);
            let delta = forward_delta_f32(&mut m, &cache, &cfg, DENSIFY_THRESHOLD)
                .expect("weight/bias flips are column-confined");
            let cold = predict_all(&mut m, &x, 16);
            cfg.apply(&mut m);
            assert_eq!(bits(&delta), bits(&cold), "{path}[{element}] bit {bit}");
        }
    }

    #[test]
    fn multi_layer_configs_and_low_threshold_densify_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = mlp(2, &[12, 12], 3, &mut rng);
        let x = Tensor::rand_normal([30, 2], 0.0, 1.0, &mut rng);
        let cache = PrefixCache::build(&mut m, &x, 8);

        let mut cfg = FaultConfig::clean();
        let mut w1 = FaultMask::empty();
        w1.push_bit(3, 25);
        w1.push_bit(17, 21);
        cfg.set_mask("fc1.weight", w1);
        let mut b2 = FaultMask::empty();
        b2.push_bit(5, 23);
        cfg.set_mask("fc2.bias", b2);

        cfg.apply(&mut m);
        let cold = predict_all(&mut m, &x, 8);
        // Threshold 0.0 forces densification at the first boundary; both
        // must still be bit-identical to the dense run.
        for threshold in [DENSIFY_THRESHOLD, 0.0] {
            let delta =
                forward_delta_f32(&mut m, &cache, &cfg, threshold).expect("column-confined config");
            assert_eq!(bits(&delta), bits(&cold), "threshold {threshold}");
        }
        cfg.apply(&mut m);
    }

    #[test]
    fn clean_config_returns_golden_logits() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = mlp(2, &[8], 2, &mut rng);
        let x = Tensor::rand_normal([10, 2], 0.0, 1.0, &mut rng);
        let cache = PrefixCache::build(&mut m, &x, 4);
        let delta = forward_delta_f32(&mut m, &cache, &FaultConfig::clean(), DENSIFY_THRESHOLD)
            .expect("clean config is trivially confined");
        assert_eq!(bits(&delta), bits(&cache.golden_logits()));
    }

    #[test]
    fn unknown_paths_and_non_dense_layers_refuse() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = mlp(2, &[8], 2, &mut rng);
        // Unknown layer path → fallback.
        assert!(plan_f32(&m, &flip_cfg("nope.weight", 0, 1)).is_none());
        // A relu layer owns no params, so any path naming it is unknown;
        // exercise the dense-downcast refusal through a conv model instead.
        use bdlfi_nn::{resnet18, ResNetConfig};
        let rm = resnet18(
            ResNetConfig {
                in_channels: 3,
                base_width: 2,
                classes: 4,
            },
            &mut rng,
        );
        assert!(plan_f32(&rm, &flip_cfg("conv1.weight", 0, 1)).is_none());
        assert!(plan_f32(&rm, &flip_cfg("layer1_0.conv1.weight", 0, 1)).is_none());
    }

    #[test]
    fn saturating_high_bit_flips_stay_exact() {
        // Bit 30 flips blow a weight up to ~1e38: downstream activations
        // saturate to inf/NaN. The delta path recomputes (never adds), so
        // it must still agree bitwise with the dense run.
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = mlp(2, &[10, 10], 3, &mut rng);
        let x = Tensor::rand_normal([20, 2], 0.0, 1.0, &mut rng);
        let cache = PrefixCache::build(&mut m, &x, 8);
        let cfg = flip_cfg("fc1.weight", 7, 30);
        cfg.apply(&mut m);
        let delta = forward_delta_f32(&mut m, &cache, &cfg, DENSIFY_THRESHOLD)
            .expect("column-confined config");
        let cold = predict_all(&mut m, &x, 8);
        cfg.apply(&mut m);
        assert_eq!(bits(&delta), bits(&cold));
    }

    #[test]
    fn quant_delta_matches_integer_reinference_bitwise() {
        use bdlfi_quant::{quantize_model, CalibConfig};
        let mut rng = StdRng::seed_from_u64(5);
        let m = mlp(4, &[8, 6], 3, &mut rng);
        let calib = Tensor::rand_normal([32, 4], 0.0, 1.0, &mut rng);
        let mut qm = quantize_model(&m, &calib, &CalibConfig::default());
        let x = Tensor::rand_normal([20, 4], 0.0, 1.0, &mut rng);
        let cache = QPrefixCache::build(&mut qm, &x, 8);
        for (path, element, bit) in [
            ("fc1.weight", 3usize, 6u8),
            ("fc2.weight", 20, 3),
            ("fc2.bias", 1, 12),
            ("fc3.bias", 2, 20),
            // Per-channel weight scales: element e feeds only column e's
            // requantizer. Bit 30 blows the scale up to ~1e38 — the
            // recompute must still bit-match the dense integer pass.
            ("fc1.w_scale", 2, 12),
            ("fc2.w_scale", 4, 30),
        ] {
            let cfg = flip_cfg(path, element, bit);
            qm.apply(&cfg);
            let delta = forward_delta_quant(&mut qm, &cache, &cfg, DENSIFY_THRESHOLD)
                .expect("weight-byte/bias-word/w-scale faults are column-confined");
            let cold = qm.predict_all(&x, 8);
            qm.apply(&cfg);
            assert_eq!(bits(&delta), bits(&cold), "{path}[{element}] bit {bit}");
        }
    }

    #[test]
    fn quant_zero_point_faults_refuse_but_w_scale_plans() {
        use bdlfi_quant::{quantize_model, CalibConfig};
        let mut rng = StdRng::seed_from_u64(6);
        let m = mlp(4, &[8], 3, &mut rng);
        let calib = Tensor::rand_normal([32, 4], 0.0, 1.0, &mut rng);
        let qm = quantize_model(&m, &calib, &CalibConfig::default());
        // The output zero-point fans out to every column through the shared
        // requantizer — the planner must refuse.
        assert!(plan_quant(&qm, &flip_cfg("fc1.out_zp", 0, 1)).is_none());
        assert!(plan_quant(&qm, &flip_cfg("nope.weight", 0, 1)).is_none());
        // A per-channel weight scale feeds exactly one column's requantizer:
        // scale element e plans as dirty column e.
        let dirty = plan_quant(&qm, &flip_cfg("fc1.w_scale", 5, 12)).expect("w_scale is confined");
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty.values().next().unwrap(), &vec![5]);
        // An out-of-range scale index (defensive: can't arise from sites)
        // still refuses rather than planning a bogus column.
        assert!(plan_quant(&qm, &flip_cfg("fc1.w_scale", 8, 1)).is_none());
    }

    #[test]
    fn delta_stats_count_and_share() {
        let stats = std::sync::Arc::new(DeltaStats::default());
        let clone = std::sync::Arc::clone(&stats);
        clone.record_hit();
        clone.record_hit();
        stats.record_fallback();
        assert_eq!(stats.counters(), (2, 1));
    }
}
