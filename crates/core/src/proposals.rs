//! MCMC proposals over joint fault configurations.
//!
//! The Markov chain state is a [`FaultConfig`]; these proposals implement
//! the moves BDLFI mixes between: exact refreshes from the fault prior and
//! local bit-toggle moves that explore the neighbourhood of error-causing
//! configurations (useful under tempered targets).

use bdlfi_bayes::Proposal;
use bdlfi_faults::{BitRange, FaultConfig, FaultModel, ParamSite};
use rand::{Rng, RngExt};
use std::sync::Arc;

/// Independence proposal drawing whole configurations from the fault
/// prior. With the prior as target this is exact iid sampling (acceptance
/// probability 1).
pub struct PriorProposal {
    sites: Arc<Vec<ParamSite>>,
    fault_model: Arc<dyn FaultModel>,
}

impl PriorProposal {
    /// Creates the proposal over the given sites.
    pub fn new(sites: Arc<Vec<ParamSite>>, fault_model: Arc<dyn FaultModel>) -> Self {
        PriorProposal { sites, fault_model }
    }
}

impl Proposal<FaultConfig> for PriorProposal {
    fn propose(&self, current: &FaultConfig, rng: &mut dyn Rng) -> (FaultConfig, f64) {
        let candidate = FaultConfig::sample(&self.sites, self.fault_model.as_ref(), rng);
        let lp_current = current
            .log_prob(&self.sites, self.fault_model.as_ref())
            // bdlfi-lint: allow(BD010) -- `current` was sampled from this same model; a density it cannot score is unrepresentable
            .expect("fault model must define a density");
        let lp_candidate = candidate
            .log_prob(&self.sites, self.fault_model.as_ref())
            // bdlfi-lint: allow(BD010) -- same invariant as above, for the freshly drawn candidate
            .expect("fault model must define a density");
        (candidate, lp_current - lp_candidate)
    }
}

/// Symmetric local move: toggle `block` uniformly chosen `(site, element,
/// bit)` positions. A toggle either injects a new flip or heals an
/// existing one, so the proposal is its own inverse and the Hastings
/// ratio is zero.
///
/// The proposal is representation-aware: the requested [`BitRange`] is
/// clamped to each site's stored word width
/// ([`BitRange::clamp_to`]), so int8 sites toggle within their 8 stored
/// bits while f32 and i32 sites are unaffected. Positions are drawn
/// uniformly over the *injectable bit space*, matching the per-bit AVF
/// fault model's view of mixed-width site sets.
pub struct BitToggleProposal {
    sites: Arc<Vec<ParamSite>>,
    // Per-site bit range: the requested range clamped to the site's width.
    ranges: Vec<BitRange>,
    block: usize,
    // Cumulative injectable-bit counts for weighted site selection.
    cumulative: Vec<u64>,
    total_bits: u64,
}

impl BitToggleProposal {
    /// Creates a single-bit toggle proposal.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn new(sites: Arc<Vec<ParamSite>>, bits: BitRange) -> Self {
        Self::with_block(sites, bits, 1)
    }

    /// Creates a `block`-bit toggle proposal.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty, `block == 0`, or `bits` has no overlap
    /// with some site's stored word width.
    pub fn with_block(sites: Arc<Vec<ParamSite>>, bits: BitRange, block: usize) -> Self {
        assert!(
            !sites.is_empty(),
            "bit toggle proposal needs at least one site"
        );
        assert!(block > 0, "block size must be positive");
        let ranges: Vec<BitRange> = sites.iter().map(|s| bits.clamp_to(s.repr)).collect();
        let mut cumulative = Vec::with_capacity(sites.len());
        let mut acc = 0u64;
        for (s, r) in sites.iter().zip(&ranges) {
            acc += s.len as u64 * u64::from(r.len());
            cumulative.push(acc);
        }
        assert!(acc > 0, "sites must contain at least one element");
        BitToggleProposal {
            sites,
            ranges,
            block,
            cumulative,
            total_bits: acc,
        }
    }

    /// Draws one `(site, element, bit)` position uniformly over the
    /// injectable bit space.
    pub(crate) fn pick_position(&self, rng: &mut dyn Rng) -> (usize, usize, u8) {
        let flat = rng.random_range(0..self.total_bits);
        let site_idx = self.cumulative.partition_point(|&c| c <= flat);
        let before = if site_idx == 0 {
            0
        } else {
            self.cumulative[site_idx - 1]
        };
        let offset = flat - before;
        let width = u64::from(self.ranges[site_idx].len());
        let element = (offset / width) as usize;
        let bit = self.ranges[site_idx].nth((offset % width) as u8);
        (site_idx, element, bit)
    }
}

impl Proposal<FaultConfig> for BitToggleProposal {
    fn propose(&self, current: &FaultConfig, rng: &mut dyn Rng) -> (FaultConfig, f64) {
        let mut candidate = current.clone();
        for _ in 0..self.block {
            let (site_idx, element, bit) = self.pick_position(rng);
            let path = &self.sites[site_idx].path;
            let mut mask = candidate.mask(path);
            mask.push_bit(element, bit);
            candidate.set_mask(path, mask);
        }
        (candidate, 0.0)
    }
}

/// Gibbs move for the independent Bernoulli prior: pick one uniformly
/// chosen `(site, element, bit)` position and *resample* it from its exact
/// conditional `Bernoulli(p)` — set the flip with probability `p`, clear it
/// otherwise.
///
/// Under the untempered prior target this is an exact conditional update,
/// so Metropolis–Hastings accepts every move; under tempered targets it
/// becomes a well-behaved asymmetric proposal whose Hastings ratio this
/// implementation supplies.
pub struct GibbsBitProposal {
    toggle_space: BitToggleProposal,
    sites: Arc<Vec<ParamSite>>,
    p: f64,
}

impl GibbsBitProposal {
    /// Creates the proposal for flip probability `p` over the sites. The
    /// bit range is clamped per-site to each site's word width, exactly as
    /// in [`BitToggleProposal`].
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty, `p` is not in `(0, 1)` (the exact
    /// conditional is degenerate at 0 and 1), or `bits` has no overlap
    /// with some site's stored word width.
    pub fn new(sites: Arc<Vec<ParamSite>>, bits: BitRange, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "gibbs resampling needs p in (0, 1)");
        GibbsBitProposal {
            toggle_space: BitToggleProposal::new(Arc::clone(&sites), bits),
            sites,
            p,
        }
    }
}

impl Proposal<FaultConfig> for GibbsBitProposal {
    fn propose(&self, current: &FaultConfig, rng: &mut dyn Rng) -> (FaultConfig, f64) {
        let (site_idx, element, bit) = self.toggle_space.pick_position(rng);
        let path = &self.sites[site_idx].path;

        let mut mask = current.mask(path);
        let currently_set = mask
            .entries()
            .iter()
            .any(|&(e, m)| e == element && m & (1u32 << bit) != 0);
        let set_next = rng.random::<f64>() < self.p;

        if set_next == currently_set {
            // Resampled to the same value: the proposal is the identity.
            return (current.clone(), 0.0);
        }
        mask.push_bit(element, bit);
        let mut candidate = current.clone();
        candidate.set_mask(path, mask);

        // q(candidate | current) = P(resample to set_next),
        // q(current | candidate) = P(resample to currently_set).
        let q_fwd = if set_next { self.p } else { 1.0 - self.p };
        let q_bwd = if currently_set { self.p } else { 1.0 - self.p };
        (candidate, q_bwd.ln() - q_fwd.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_bayes::mh_step;
    use bdlfi_faults::BernoulliBitFlip;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sites() -> Arc<Vec<ParamSite>> {
        Arc::new(vec![
            ParamSite::new("a.weight", 10),
            ParamSite::new("b.weight", 30),
        ])
    }

    #[test]
    fn prior_proposal_with_prior_target_always_accepts() {
        let fm: Arc<dyn FaultModel> = Arc::new(BernoulliBitFlip::new(0.01));
        let sites = sites();
        let proposal = PriorProposal::new(Arc::clone(&sites), Arc::clone(&fm));
        let sites2 = Arc::clone(&sites);
        let fm2 = Arc::clone(&fm);
        let mut log_target = move |c: &FaultConfig| c.log_prob(&sites2, fm2.as_ref()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut state = FaultConfig::clean();
        let mut lp = log_target(&state);
        for _ in 0..200 {
            assert!(mh_step(
                &mut state,
                &mut lp,
                &proposal,
                &mut log_target,
                &mut rng
            ));
        }
    }

    #[test]
    fn bit_toggle_changes_exactly_block_bits() {
        let proposal = BitToggleProposal::with_block(sites(), BitRange::all(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        let current = FaultConfig::clean();
        let (cand, ratio) = proposal.propose(&current, &mut rng);
        assert_eq!(ratio, 0.0);
        // With distinct positions (overwhelmingly likely), 3 bits toggled.
        assert!(cand.total_flips() <= 3 && cand.total_flips() >= 1);
    }

    #[test]
    fn bit_toggle_can_heal_existing_faults() {
        let proposal = BitToggleProposal::new(
            Arc::new(vec![ParamSite::new("w", 1)]),
            BitRange::new(0, 1), // only bit 0 of element 0 exists
        );
        let mut rng = StdRng::seed_from_u64(2);
        let mut cfg = FaultConfig::clean();
        let mut mask = bdlfi_faults::FaultMask::empty();
        mask.push_bit(0, 0);
        cfg.set_mask("w", mask);
        let (cand, _) = proposal.propose(&cfg, &mut rng);
        assert!(cand.is_clean(), "toggling the only faulty bit must heal it");
    }

    #[test]
    fn toggle_chain_under_prior_matches_marginal() {
        // Target: Bernoulli(p) prior over 32 bits of 2 elements. The chain
        // of single-bit toggles should reach mean flip count ≈ 64 p.
        let p = 0.2;
        let fm: Arc<dyn FaultModel> = Arc::new(BernoulliBitFlip::new(p));
        let sites = Arc::new(vec![ParamSite::new("w", 2)]);
        let proposal = BitToggleProposal::new(Arc::clone(&sites), BitRange::all());
        let sites2 = Arc::clone(&sites);
        let mut log_target = move |c: &FaultConfig| c.log_prob(&sites2, fm.as_ref()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = FaultConfig::clean();
        let mut lp = log_target(&state);
        let mut total = 0.0;
        let n = 30_000;
        for i in 0..n + 2000 {
            mh_step(&mut state, &mut lp, &proposal, &mut log_target, &mut rng);
            if i >= 2000 {
                total += state.total_flips() as f64;
            }
        }
        let mean = total / n as f64;
        let expected = 64.0 * p;
        assert!(
            (mean - expected).abs() < 1.0,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn gibbs_always_accepts_under_prior_target() {
        let p = 0.15;
        let fm: Arc<dyn FaultModel> = Arc::new(BernoulliBitFlip::new(p));
        let sites = sites();
        let proposal = GibbsBitProposal::new(Arc::clone(&sites), BitRange::all(), p);
        let sites2 = Arc::clone(&sites);
        let mut log_target = move |c: &FaultConfig| c.log_prob(&sites2, fm.as_ref()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = FaultConfig::clean();
        let mut lp = log_target(&state);
        for _ in 0..500 {
            assert!(
                mh_step(&mut state, &mut lp, &proposal, &mut log_target, &mut rng),
                "exact conditional Gibbs move was rejected"
            );
        }
    }

    #[test]
    fn gibbs_chain_matches_marginal_flip_count() {
        let p = 0.25;
        let sites = Arc::new(vec![ParamSite::new("w", 1)]);
        let fm: Arc<dyn FaultModel> = Arc::new(BernoulliBitFlip::new(p));
        let proposal = GibbsBitProposal::new(Arc::clone(&sites), BitRange::all(), p);
        let sites2 = Arc::clone(&sites);
        let mut log_target = move |c: &FaultConfig| c.log_prob(&sites2, fm.as_ref()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut state = FaultConfig::clean();
        let mut lp = log_target(&state);
        let mut total = 0.0;
        let n = 20_000;
        for i in 0..n + 1000 {
            mh_step(&mut state, &mut lp, &proposal, &mut log_target, &mut rng);
            if i >= 1000 {
                total += state.total_flips() as f64;
            }
        }
        let mean = total / n as f64;
        let expected = 32.0 * p;
        assert!(
            (mean - expected).abs() < 0.5,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn gibbs_hastings_ratio_is_consistent() {
        let p = 0.1f64;
        let sites = Arc::new(vec![ParamSite::new("w", 1)]);
        let proposal = GibbsBitProposal::new(Arc::clone(&sites), BitRange::new(0, 1), p);
        let mut rng = StdRng::seed_from_u64(7);
        // From clean state the only non-identity move is setting the bit:
        // ratio = ln(1-p) - ln(p).
        let expected = (1.0 - p).ln() - p.ln();
        let mut saw_set = false;
        for _ in 0..200 {
            let (cand, ratio) = proposal.propose(&FaultConfig::clean(), &mut rng);
            if cand.total_flips() == 1 {
                assert!((ratio - expected).abs() < 1e-12);
                saw_set = true;
            } else {
                assert_eq!(ratio, 0.0);
            }
        }
        assert!(saw_set);
    }

    #[test]
    fn toggle_positions_respect_site_repr() {
        use bdlfi_faults::Repr;
        let sites = Arc::new(vec![
            ParamSite::with_repr("q.weight", 4, Repr::I8),
            ParamSite::with_repr("q.bias", 2, Repr::I32Accum),
        ]);
        let proposal = BitToggleProposal::new(Arc::clone(&sites), BitRange::all());
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_i8 = false;
        for _ in 0..500 {
            let (site_idx, element, bit) = proposal.pick_position(&mut rng);
            assert!(element < sites[site_idx].len);
            if sites[site_idx].repr == Repr::I8 {
                assert!(bit < 8, "int8 site drew bit {bit}");
                saw_i8 = true;
            } else {
                assert!(bit < 32);
            }
        }
        assert!(saw_i8);
    }

    #[test]
    fn site_selection_is_element_weighted() {
        let proposal = BitToggleProposal::new(sites(), BitRange::all());
        let mut rng = StdRng::seed_from_u64(4);
        let (mut a_count, mut b_count) = (0, 0);
        for _ in 0..2000 {
            let (cand, _) = proposal.propose(&FaultConfig::clean(), &mut rng);
            for path in cand.affected_paths() {
                if path.starts_with("a") {
                    a_count += 1;
                } else {
                    b_count += 1;
                }
            }
        }
        // b has 3x the elements of a.
        let ratio = b_count as f64 / a_count as f64;
        assert!((ratio - 3.0).abs() < 0.6, "ratio {ratio}");
    }
}
