//! Layer-by-layer campaigns — the paper's Fig. 3: inject into one layer at
//! a time and ask whether the injected layer's *depth* predicts the output
//! error. (The paper's finding: it does not, contradicting earlier
//! small-sample random-FI studies.)

use crate::campaign::{run_campaign, CampaignConfig};
use crate::checkpoint::fingerprint;
use crate::engine::{
    CheckpointSpec, CollectSink, EngineError, EvalEngine, NullSink, RunControl, RunMeta,
};
use crate::faulty_model::FaultyModel;
use crate::report::CampaignReport;
use crate::shard::{ShardError, ShardPlan};
use crate::stats::spearman;
use crate::workload::QuantFaultyModel;
use bdlfi_data::Dataset;
use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_nn::Sequential;
use bdlfi_quant::QuantModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the fault burden is allocated to each injected layer.
///
/// Layers of a deep network differ in parameter count by orders of
/// magnitude, so the choice matters:
///
/// * [`LayerBudget::PerBit`] applies the same per-bit AVF probability
///   everywhere — larger layers then absorb proportionally more flips, and
///   the measured per-layer error mixes *vulnerability* with *size*;
/// * [`LayerBudget::ExpectedFlips`] scales each layer's probability so the
///   expected number of flipped bits is equal — this isolates per-fault
///   vulnerability, which is what the classical per-layer studies (and the
///   paper's Fig. 3 depth question) are about.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerBudget {
    /// Identical per-bit flip probability for every layer.
    PerBit(f64),
    /// Identical expected flipped-bit count for every layer
    /// (`p_layer = flips / (32 · elements)`).
    ExpectedFlips(f64),
}

impl LayerBudget {
    /// The per-bit probability this budget induces for a layer with
    /// `elements` injectable f32 values.
    ///
    /// # Panics
    ///
    /// Panics if `elements == 0` under [`LayerBudget::ExpectedFlips`].
    pub fn probability_for(&self, elements: usize) -> f64 {
        self.probability_for_bits(elements as u64 * 32)
    }

    /// The per-bit probability this budget induces for a layer exposing
    /// `bits` injectable bits — the width-aware form, summing each site's
    /// `len × repr.width()` for mixed-representation (quantized) layers.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` under [`LayerBudget::ExpectedFlips`].
    pub fn probability_for_bits(&self, bits: u64) -> f64 {
        match *self {
            LayerBudget::PerBit(p) => p,
            LayerBudget::ExpectedFlips(flips) => {
                assert!(bits > 0, "cannot spread flips over an empty layer");
                (flips / bits as f64).min(1.0)
            }
        }
    }
}

/// The campaign outcome for one injected layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerResult {
    /// Depth index of the layer (0 = closest to the input).
    pub depth: usize,
    /// The layer's name (path prefix used for injection).
    pub layer: String,
    /// Number of injectable parameter elements under this layer.
    pub elements: usize,
    /// The per-bit flip probability this layer's campaign used.
    pub p: f64,
    /// Full campaign report.
    pub report: CampaignReport,
}

/// The outcome of a layer-by-layer study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerwiseResult {
    /// One entry per injected layer, in depth order.
    pub layers: Vec<LayerResult>,
    /// Golden-run classification error.
    pub golden_error: f64,
    /// Spearman rank correlation between layer depth and mean error —
    /// the paper's claim is that this is near zero.
    pub depth_correlation: f64,
    /// Engine execution metadata for the per-layer fan-out.
    pub run_meta: RunMeta,
}

/// Runs one BDLFI campaign per layer prefix, injecting only into that
/// layer's parameters, with the fault burden allocated by `budget`.
///
/// # Panics
///
/// Panics if `layers` is empty, the budget induces an invalid probability,
/// or a prefix does not exist in the model.
pub fn run_layerwise(
    model: &Sequential,
    eval: &Arc<Dataset>,
    layers: &[&str],
    budget: LayerBudget,
    cfg: &CampaignConfig,
) -> LayerwiseResult {
    match run_layerwise_controlled(
        model,
        eval,
        layers,
        budget,
        cfg,
        &RunControl::default(),
        None,
    ) {
        Ok(res) => res,
        Err(e) => panic!("layerwise study failed: {e}"),
    }
}

/// [`run_layerwise`] with cooperative cancellation and an optional
/// checkpoint journal (one entry per completed layer, in depth order).
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_layerwise`].
pub fn run_layerwise_controlled(
    model: &Sequential,
    eval: &Arc<Dataset>,
    layers: &[&str],
    budget: LayerBudget,
    cfg: &CampaignConfig,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<LayerwiseResult, EngineError> {
    assert!(
        !layers.is_empty(),
        "layerwise study needs at least one layer"
    );
    if let LayerBudget::PerBit(p) = budget {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0, 1]"
        );
    }

    // One campaign per layer, fanned out through the engine; each
    // campaign is deterministic in (cfg.seed, layer), so the study is
    // worker-count invariant. Task `i` covers `layers[i]` at depth `i`.
    let names: Vec<String> = layers.iter().map(|&l| l.to_string()).collect();
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let ckpt = ckpt.cloned().map(|mut s| {
        if s.fingerprint.is_empty() {
            s.fingerprint = fingerprint(
                "layerwise",
                &(cfg.fingerprint_form(), names.clone(), budget),
            );
        }
        s
    });
    let mut sink = CollectSink::new();
    let run_meta = engine.run_checkpointed(
        names.len(),
        || (),
        |(), ctx| {
            let depth = ctx.task_id;
            let layer = names[depth].clone();
            let spec = SiteSpec::LayerParams {
                prefix: layer.clone(),
            };
            // Resolve first to size the budget.
            let elements = bdlfi_faults::resolve_sites(model, &spec).total_param_elements();
            let p = budget.probability_for(elements);
            let fm = FaultyModel::new(
                model.clone(),
                Arc::clone(eval),
                &spec,
                Arc::new(BernoulliBitFlip::new(p)),
            );
            Ok(LayerResult {
                depth,
                layer,
                elements,
                p,
                report: run_campaign(&fm, cfg).journal_form(),
            })
        },
        &mut sink,
        ctl,
        ckpt.as_ref(),
    )?;
    let results = sink.into_inner();

    let golden_error = results[0].report.golden_error;
    let depths: Vec<f64> = results.iter().map(|r| r.depth as f64).collect();
    let errors: Vec<f64> = results.iter().map(|r| r.report.mean_error).collect();
    let depth_correlation = spearman(&depths, &errors);

    // Roll the per-layer campaigns' sparse-delta accounting up into the
    // outer meta so the study-level report shows the aggregate hit rate.
    let mut run_meta = run_meta;
    run_meta.delta_hits = results.iter().map(|r| r.report.run_meta.delta_hits).sum();
    run_meta.delta_fallbacks = results
        .iter()
        .map(|r| r.report.run_meta.delta_fallbacks)
        .sum();

    Ok(LayerwiseResult {
        layers: results,
        golden_error,
        depth_correlation,
        run_meta,
    })
}

/// [`run_layerwise`] over the *quantized* workload: one campaign per
/// stage prefix of the int8 model, with the fault burden sized by the
/// layer's injectable *bit* count (int8 weight bytes contribute 8 bits per
/// element, i32 biases 32).
///
/// # Panics
///
/// Panics if `layers` is empty, the budget induces an invalid probability,
/// or a prefix matches no quantized site.
pub fn run_layerwise_quant(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    layers: &[&str],
    budget: LayerBudget,
    cfg: &CampaignConfig,
) -> LayerwiseResult {
    match run_layerwise_quant_controlled(
        qm,
        eval,
        layers,
        budget,
        cfg,
        &RunControl::default(),
        None,
    ) {
        Ok(res) => res,
        Err(e) => panic!("quant layerwise study failed: {e}"),
    }
}

/// [`run_layerwise_quant`] with cooperative cancellation and an optional
/// checkpoint journal, in its own fingerprint namespace.
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_layerwise_quant`].
pub fn run_layerwise_quant_controlled(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    layers: &[&str],
    budget: LayerBudget,
    cfg: &CampaignConfig,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<LayerwiseResult, EngineError> {
    assert!(
        !layers.is_empty(),
        "layerwise study needs at least one layer"
    );
    if let LayerBudget::PerBit(p) = budget {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0, 1]"
        );
    }

    let names: Vec<String> = layers.iter().map(|&l| l.to_string()).collect();
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let ckpt = ckpt.cloned().map(|mut s| {
        if s.fingerprint.is_empty() {
            s.fingerprint = fingerprint(
                "layerwise_quant",
                &(cfg.fingerprint_form(), names.clone(), budget),
            );
        }
        s
    });
    let mut sink = CollectSink::new();
    let run_meta = engine.run_checkpointed(
        names.len(),
        || (),
        |(), ctx| {
            let depth = ctx.task_id;
            let layer = names[depth].clone();
            let spec = SiteSpec::LayerParams {
                prefix: layer.clone(),
            };
            // Size the budget by the layer's injectable bit space, which
            // mixes 8-bit and 32-bit sites.
            let sites = qm.sites_matching(&spec);
            let elements = sites.total_param_elements();
            let bits: u64 = sites.params.iter().map(|s| s.injectable_bits()).sum();
            let p = budget.probability_for_bits(bits);
            let qfm = QuantFaultyModel::new(
                qm.clone(),
                Arc::clone(eval),
                &spec,
                Arc::new(BernoulliBitFlip::new(p)),
            );
            Ok(LayerResult {
                depth,
                layer,
                elements,
                p,
                report: run_campaign(&qfm, cfg).journal_form(),
            })
        },
        &mut sink,
        ctl,
        ckpt.as_ref(),
    )?;
    let results = sink.into_inner();

    let golden_error = results[0].report.golden_error;
    let depths: Vec<f64> = results.iter().map(|r| r.depth as f64).collect();
    let errors: Vec<f64> = results.iter().map(|r| r.report.mean_error).collect();
    let depth_correlation = spearman(&depths, &errors);

    // Roll the per-layer campaigns' sparse-delta accounting up into the
    // outer meta so the study-level report shows the aggregate hit rate.
    let mut run_meta = run_meta;
    run_meta.delta_hits = results.iter().map(|r| r.report.run_meta.delta_hits).sum();
    run_meta.delta_fallbacks = results
        .iter()
        .map(|r| r.report.run_meta.delta_fallbacks)
        .sum();

    Ok(LayerwiseResult {
        layers: results,
        golden_error,
        depth_correlation,
        run_meta,
    })
}

/// Runs one shard of a layerwise study split `count` ways: the layers in
/// shard `index`'s contiguous sub-range of `0..layers.len()` (depth
/// order), journaled with global depth ids under the plan's per-shard
/// fingerprint. Merge the completed shards with
/// [`crate::shard::merge_shards`] and assemble the [`LayerwiseResult`]
/// via [`run_layerwise_controlled`] with [`CheckpointSpec::finalizing`].
///
/// `ckpt.fingerprint` names the **unsharded** layerwise fingerprint
/// (empty derives it, matching [`run_layerwise_controlled`]).
///
/// # Errors
///
/// [`ShardError::Plan`] / [`ShardError::IndexOutOfRange`] for an unusable
/// split; [`ShardError::Engine`] wrapping [`EngineError::Interrupted`] on
/// a cooperative stop; engine/journal failures otherwise.
///
/// # Panics
///
/// Same preconditions as [`run_layerwise`].
#[allow(clippy::too_many_arguments)]
pub fn run_layerwise_shard(
    model: &Sequential,
    eval: &Arc<Dataset>,
    layers: &[&str],
    budget: LayerBudget,
    cfg: &CampaignConfig,
    count: usize,
    index: usize,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> Result<RunMeta, ShardError> {
    assert!(
        !layers.is_empty(),
        "layerwise study needs at least one layer"
    );
    if let LayerBudget::PerBit(p) = budget {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0, 1]"
        );
    }
    let names: Vec<String> = layers.iter().map(|&l| l.to_string()).collect();
    let base = if ckpt.fingerprint.is_empty() {
        fingerprint(
            "layerwise",
            &(cfg.fingerprint_form(), names.clone(), budget),
        )
    } else {
        ckpt.fingerprint.clone()
    };
    let plan = ShardPlan::new(base, cfg.seed, names.len(), count)?;
    let shard_spec = CheckpointSpec {
        fingerprint: plan.shard_fingerprint(index),
        ..ckpt.clone()
    };
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let meta = engine.run_shard_checkpointed(
        plan.info(index)?,
        plan.range(index)?.len(),
        || (),
        |(), ctx| {
            let depth = ctx.task_id;
            let layer = names[depth].clone();
            let spec = SiteSpec::LayerParams {
                prefix: layer.clone(),
            };
            // Resolve first to size the budget.
            let elements = bdlfi_faults::resolve_sites(model, &spec).total_param_elements();
            let p = budget.probability_for(elements);
            let fm = FaultyModel::new(
                model.clone(),
                Arc::clone(eval),
                &spec,
                Arc::new(BernoulliBitFlip::new(p)),
            );
            Ok(LayerResult {
                depth,
                layer,
                elements,
                p,
                report: run_campaign(&fm, cfg).journal_form(),
            })
        },
        &mut NullSink,
        ctl,
        &shard_spec,
    )?;
    Ok(meta)
}

/// The quantized twin of [`run_layerwise_shard`], in the
/// `layerwise_quant` fingerprint namespace so f32 and int8 shards never
/// cross-merge.
///
/// # Errors
///
/// As [`run_layerwise_shard`].
///
/// # Panics
///
/// Same preconditions as [`run_layerwise_quant`].
#[allow(clippy::too_many_arguments)]
pub fn run_layerwise_quant_shard(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    layers: &[&str],
    budget: LayerBudget,
    cfg: &CampaignConfig,
    count: usize,
    index: usize,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> Result<RunMeta, ShardError> {
    assert!(
        !layers.is_empty(),
        "layerwise study needs at least one layer"
    );
    if let LayerBudget::PerBit(p) = budget {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0, 1]"
        );
    }
    let names: Vec<String> = layers.iter().map(|&l| l.to_string()).collect();
    let base = if ckpt.fingerprint.is_empty() {
        fingerprint(
            "layerwise_quant",
            &(cfg.fingerprint_form(), names.clone(), budget),
        )
    } else {
        ckpt.fingerprint.clone()
    };
    let plan = ShardPlan::new(base, cfg.seed, names.len(), count)?;
    let shard_spec = CheckpointSpec {
        fingerprint: plan.shard_fingerprint(index),
        ..ckpt.clone()
    };
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let meta = engine.run_shard_checkpointed(
        plan.info(index)?,
        plan.range(index)?.len(),
        || (),
        |(), ctx| {
            let depth = ctx.task_id;
            let layer = names[depth].clone();
            let spec = SiteSpec::LayerParams {
                prefix: layer.clone(),
            };
            // Size the budget by the layer's injectable bit space, which
            // mixes 8-bit and 32-bit sites.
            let sites = qm.sites_matching(&spec);
            let elements = sites.total_param_elements();
            let bits: u64 = sites.params.iter().map(|s| s.injectable_bits()).sum();
            let p = budget.probability_for_bits(bits);
            let qfm = QuantFaultyModel::new(
                qm.clone(),
                Arc::clone(eval),
                &spec,
                Arc::new(BernoulliBitFlip::new(p)),
            );
            Ok(LayerResult {
                depth,
                layer,
                elements,
                p,
                report: run_campaign(&qfm, cfg).journal_form(),
            })
        },
        &mut NullSink,
        ctl,
        &shard_spec,
    )?;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::KernelChoice;
    use crate::completeness::CompletenessCriteria;
    use bdlfi_bayes::ChainConfig;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            chains: 2,
            chain: ChainConfig {
                burn_in: 0,
                samples: 40,
                thin: 1,
            },
            kernel: KernelChoice::Prior,
            seed: 5,
            criteria: CompletenessCriteria {
                max_rhat: 2.0,
                min_ess: 10.0,
                max_mcse: 0.2,
            },
            workers: 0,
        }
    }

    #[test]
    fn layerwise_covers_each_layer_independently() {
        let mut rng = StdRng::seed_from_u64(21);
        let data = gaussian_blobs(200, 3, 0.6, &mut rng);
        let (train, test) = data.split(0.7, &mut rng);
        let mut model = mlp(2, &[16, 16], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 15,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);

        let res = run_layerwise(
            &model,
            &Arc::new(test),
            &["fc1", "fc2", "fc3"],
            LayerBudget::PerBit(1e-2),
            &quick_cfg(),
        );
        assert_eq!(res.layers.len(), 3);
        assert_eq!(res.layers[0].layer, "fc1");
        assert_eq!(res.layers[0].depth, 0);
        // Element counts match the MLP dimensions.
        assert_eq!(res.layers[0].elements, 2 * 16 + 16);
        assert_eq!(res.layers[1].elements, 16 * 16 + 16);
        assert_eq!(res.layers[2].elements, 16 * 3 + 3);
        // Correlation is defined (not NaN) and bounded.
        assert!(res.depth_correlation.abs() <= 1.0);
        // Every campaign shares the same golden error.
        for l in &res.layers {
            assert_eq!(l.report.golden_error, res.golden_error);
        }
    }

    #[test]
    fn expected_flips_budget_scales_probability_inversely_with_size() {
        let mut rng = StdRng::seed_from_u64(23);
        let data = gaussian_blobs(100, 2, 0.6, &mut rng);
        let model = mlp(2, &[32], 2, &mut rng);
        let res = run_layerwise(
            &model,
            &Arc::new(data),
            &["fc1", "fc2"],
            LayerBudget::ExpectedFlips(4.0),
            &quick_cfg(),
        );
        // fc1 has 2*32+32 = 96 elements; fc2 has 32*2+2 = 66.
        assert!((res.layers[0].p - 4.0 / (32.0 * 96.0)).abs() < 1e-12);
        assert!((res.layers[1].p - 4.0 / (32.0 * 66.0)).abs() < 1e-12);
        // Expected flips equalised: p * 32 * elements identical.
        let burden = |l: &LayerResult| l.p * 32.0 * l.elements as f64;
        assert!((burden(&res.layers[0]) - burden(&res.layers[1])).abs() < 1e-9);
        // Mean observed flips per sample should be near 4 for both.
        for l in &res.layers {
            assert!(
                (l.report.mean_flips - 4.0).abs() < 1.5,
                "{}: mean flips {}",
                l.layer,
                l.report.mean_flips
            );
        }
    }

    #[test]
    fn quant_layerwise_sizes_budget_by_bits() {
        use bdlfi_quant::{quantize_model, CalibConfig};
        let mut rng = StdRng::seed_from_u64(24);
        let data = gaussian_blobs(100, 2, 0.6, &mut rng);
        let model = mlp(2, &[32], 2, &mut rng);
        let qm = quantize_model(&model, data.inputs(), &CalibConfig::default());
        let res = run_layerwise_quant(
            &qm,
            &Arc::new(data),
            &["fc1", "fc2"],
            LayerBudget::ExpectedFlips(4.0),
            &quick_cfg(),
        );
        // fc1: 2*32 int8 weights (8 bits) + 32 i32 biases + 32 per-channel
        // w_scales (f32) + out_zp (i32) = 64*8 + 32*32 + 32*32 + 32 = 2592
        // bits.
        assert!(
            (res.layers[0].p - 4.0 / 2592.0).abs() < 1e-12,
            "{}",
            res.layers[0].p
        );
        // Mean observed flips per sample near the 4-flip budget.
        for l in &res.layers {
            assert!(
                (l.report.mean_flips - 4.0).abs() < 1.5,
                "{}: mean flips {}",
                l.layer,
                l.report.mean_flips
            );
        }
    }

    #[test]
    fn probability_saturates_at_one() {
        let b = LayerBudget::ExpectedFlips(1e12);
        assert_eq!(b.probability_for(3), 1.0);
        let b = LayerBudget::PerBit(0.25);
        assert_eq!(b.probability_for(1000), 0.25);
    }

    #[test]
    #[should_panic(expected = "no parameters under layer prefix")]
    fn unknown_layer_panics() {
        let mut rng = StdRng::seed_from_u64(22);
        let data = gaussian_blobs(50, 2, 0.5, &mut rng);
        let model = mlp(2, &[4], 2, &mut rng);
        run_layerwise(
            &model,
            &Arc::new(data),
            &["nope"],
            LayerBudget::PerBit(1e-3),
            &quick_cfg(),
        );
    }
}
