//! Crash-safe campaign journals: the persistence layer behind
//! checkpoint/resume.
//!
//! A long fault-injection campaign is thousands of independent,
//! deterministic tasks (every task is a pure function of
//! `(campaign_seed, task_id)` — the engine's seed discipline). That makes
//! a *result journal* a complete checkpoint: record each finished task's
//! result in task order, and an interrupted campaign resumes by replaying
//! the journal into its sink and computing only the remaining tasks. The
//! resumed report is bit-identical to an uninterrupted run.
//!
//! The journal is a JSONL file:
//!
//! ```text
//! {"magic":"bdlfi-checkpoint","version":1,"fingerprint":"9f…","seed":42,"tasks":128}
//! {"task":0,"value":…}
//! {"task":1,"value":…}
//! ```
//!
//! * The **header** binds the journal to one campaign: a [`fingerprint`]
//!   of the driver name + serialized config, the engine seed, and the task
//!   count (`0` for open-ended segment journals). It is written to a
//!   temporary file, fsync'd, and atomically renamed into place, so a
//!   journal either exists with a valid header or not at all.
//! * **Entries** are appended one line per completed task, in task order,
//!   and fsync'd in batches (plus once on stop/completion), bounding the
//!   work lost to a crash to the unsynced tail.
//! * The **reader** is strict: any malformed or out-of-order line is a
//!   typed [`CheckpointError::Corrupt`], a header that does not match the
//!   resuming campaign is a [`CheckpointError::Mismatch`], and resuming a
//!   journal that already covers every task is
//!   [`CheckpointError::AlreadyComplete`] — never a panic, never a silent
//!   partial report.

use serde::Serialize;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic string identifying a BDLFI checkpoint journal.
const MAGIC: &str = "bdlfi-checkpoint";
/// Current journal format version.
const VERSION: u64 = 1;

/// Why a journal could not be written, read, or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A journal line failed to parse or was out of order (1-based line).
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The journal header does not match the resuming campaign.
    Mismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value the resuming campaign expected.
        expected: String,
        /// The value found in the journal.
        found: String,
    },
    /// The journal already covers every task — there is nothing to resume.
    AlreadyComplete {
        /// The task count the journal covers.
        tasks: usize,
    },
    /// A header or entry could not be serialized for the journal.
    Encode {
        /// What failed to encode.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt { line, detail } => {
                write!(f, "corrupt checkpoint journal at line {line}: {detail}")
            }
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {field} mismatch: campaign has {expected}, journal has {found}"
            ),
            CheckpointError::AlreadyComplete { tasks } => {
                write!(
                    f,
                    "checkpoint already complete: all {tasks} tasks journaled"
                )
            }
            CheckpointError::Encode { detail } => {
                write!(f, "checkpoint serialization failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The identity a journal is bound to, stored in its header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// [`fingerprint`] of the driver name + campaign configuration.
    pub fingerprint: String,
    /// The engine seed the per-task RNG streams derive from.
    pub seed: u64,
    /// Total task count; `0` marks an open-ended (segment) journal, for
    /// which [`CheckpointError::AlreadyComplete`] is never raised.
    pub tasks: usize,
}

impl CheckpointHeader {
    fn to_json_line(&self) -> Result<String, CheckpointError> {
        let obj = serde::Value::Object(vec![
            ("magic".to_string(), MAGIC.to_string().to_json_value()),
            ("version".to_string(), VERSION.to_json_value()),
            ("fingerprint".to_string(), self.fingerprint.to_json_value()),
            ("seed".to_string(), self.seed.to_json_value()),
            ("tasks".to_string(), self.tasks.to_json_value()),
        ]);
        serde_json::to_string(&obj).map_err(|e| CheckpointError::Encode {
            detail: format!("journal header: {e}"),
        })
    }

    fn parse(line: &str) -> Result<Self, CheckpointError> {
        let corrupt = |detail: String| CheckpointError::Corrupt { line: 1, detail };
        let v: serde::Value =
            serde_json::from_str(line).map_err(|e| corrupt(format!("unparseable header: {e}")))?;
        let magic = v
            .get("magic")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| corrupt("header missing `magic`".to_string()))?;
        if magic != MAGIC {
            return Err(corrupt(format!(
                "not a checkpoint journal (magic `{magic}`)"
            )));
        }
        let version = v
            .get("version")
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| corrupt("header missing `version`".to_string()))?;
        if version != VERSION {
            return Err(CheckpointError::Mismatch {
                field: "version",
                expected: VERSION.to_string(),
                found: version.to_string(),
            });
        }
        let fingerprint = v
            .get("fingerprint")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| corrupt("header missing `fingerprint`".to_string()))?
            .to_string();
        let seed = v
            .get("seed")
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| corrupt("header missing `seed`".to_string()))?;
        let tasks =
            v.get("tasks")
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| corrupt("header missing `tasks`".to_string()))? as usize;
        Ok(CheckpointHeader {
            fingerprint,
            seed,
            tasks,
        })
    }

    fn verify_matches(&self, expected: &CheckpointHeader) -> Result<(), CheckpointError> {
        let mismatch = |field, expected: &dyn fmt::Display, found: &dyn fmt::Display| {
            Err(CheckpointError::Mismatch {
                field,
                expected: expected.to_string(),
                found: found.to_string(),
            })
        };
        if self.fingerprint != expected.fingerprint {
            return mismatch("fingerprint", &expected.fingerprint, &self.fingerprint);
        }
        if self.seed != expected.seed {
            return mismatch("seed", &expected.seed, &self.seed);
        }
        if self.tasks != expected.tasks {
            return mismatch("tasks", &expected.tasks, &self.tasks);
        }
        Ok(())
    }
}

/// FNV-1a 64-bit fingerprint of a driver name + its serialized
/// configuration — the identity check that stops a journal from being
/// replayed into a campaign with a different config, model or seed
/// derivation.
pub fn fingerprint<C: Serialize + ?Sized>(driver: &str, config: &C) -> String {
    let json = serde_json::to_string(config).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in driver.as_bytes().iter().chain(json.as_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Reads and strictly validates a journal: returns its header and the
/// journaled result values in task order.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read,
/// [`CheckpointError::Corrupt`] for any malformed, out-of-order or
/// truncated line.
pub fn read_journal(path: &Path) -> Result<(CheckpointHeader, Vec<serde::Value>), CheckpointError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header_line = lines.next().ok_or(CheckpointError::Corrupt {
        line: 1,
        detail: "empty journal (no header)".to_string(),
    })?;
    let header = CheckpointHeader::parse(header_line)?;

    let mut values = Vec::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2; // 1-based, after the header
        if line.is_empty() {
            return Err(CheckpointError::Corrupt {
                line: line_no,
                detail: "empty entry line".to_string(),
            });
        }
        let v: serde::Value = serde_json::from_str(line).map_err(|e| CheckpointError::Corrupt {
            line: line_no,
            detail: format!("unparseable entry (truncated write?): {e}"),
        })?;
        let task = v
            .get("task")
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| CheckpointError::Corrupt {
                line: line_no,
                detail: "entry missing `task`".to_string(),
            })? as usize;
        if task != idx {
            return Err(CheckpointError::Corrupt {
                line: line_no,
                detail: format!("entry for task {task} where task {idx} was expected"),
            });
        }
        let value = v.get("value").ok_or_else(|| CheckpointError::Corrupt {
            line: line_no,
            detail: "entry missing `value`".to_string(),
        })?;
        if header.tasks > 0 && task >= header.tasks {
            return Err(CheckpointError::Corrupt {
                line: line_no,
                detail: format!("entry for task {task} beyond task count {}", header.tasks),
            });
        }
        values.push(value.clone());
    }
    Ok((header, values))
}

/// Appends completed-task results to a journal, fsync'ing in batches.
///
/// Created via [`CheckpointWriter::create`] (fresh journal, atomic header
/// install) or [`CheckpointWriter::resume`] (validate + replay an existing
/// journal, then continue appending).
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
    entries: usize,
    unsynced: usize,
    sync_every: usize,
}

impl CheckpointWriter {
    /// Creates a fresh journal at `path`: the header is written to a
    /// sibling temporary file, fsync'd, and renamed into place, so a
    /// half-written header can never be observed at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn create(
        path: &Path,
        header: &CheckpointHeader,
        sync_every: usize,
    ) -> Result<Self, CheckpointError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = tmp_path(path);
        let mut file = File::create(&tmp)?;
        writeln!(file, "{}", header.to_json_line()?)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // The handle follows the inode across the rename, so appends after
        // this point land in the installed journal.
        Ok(CheckpointWriter {
            file,
            entries: 0,
            unsynced: 0,
            sync_every: sync_every.max(1),
        })
    }

    /// Opens an existing journal for appending: validates it strictly,
    /// checks its header against `expected`, and returns the journaled
    /// values (in task order) for replay.
    ///
    /// # Errors
    ///
    /// Everything [`read_journal`] raises, [`CheckpointError::Mismatch`]
    /// when the header disagrees with `expected`, and
    /// [`CheckpointError::AlreadyComplete`] when a closed-ended journal
    /// already covers all of its tasks.
    pub fn resume(
        path: &Path,
        expected: &CheckpointHeader,
        sync_every: usize,
    ) -> Result<(Self, Vec<serde::Value>), CheckpointError> {
        let (header, values) = read_journal(path)?;
        header.verify_matches(expected)?;
        if header.tasks > 0 && values.len() >= header.tasks {
            return Err(CheckpointError::AlreadyComplete {
                tasks: header.tasks,
            });
        }
        let file = OpenOptions::new().append(true).open(path)?;
        let writer = CheckpointWriter {
            file,
            entries: values.len(),
            unsynced: 0,
            sync_every: sync_every.max(1),
        };
        Ok((writer, values))
    }

    /// The number of entries the journal holds (replayed + appended).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Appends the result of `task_id`, which must be the next task in
    /// order. Fsyncs once every `sync_every` appends; call
    /// [`CheckpointWriter::sync`] to force the tail out (on stop or
    /// completion).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on write failure,
    /// [`CheckpointError::Corrupt`] if `task_id` is out of order (an
    /// engine-invariant violation surfaced as an error rather than a
    /// corrupted journal).
    pub fn append<T: Serialize + ?Sized>(
        &mut self,
        task_id: usize,
        value: &T,
    ) -> Result<(), CheckpointError> {
        if task_id != self.entries {
            return Err(CheckpointError::Corrupt {
                line: self.entries + 2,
                detail: format!(
                    "append of task {task_id} where task {} was expected",
                    self.entries
                ),
            });
        }
        let obj = serde::Value::Object(vec![
            ("task".to_string(), task_id.to_json_value()),
            ("value".to_string(), value.to_json_value()),
        ]);
        let line = serde_json::to_string(&obj).map_err(|e| CheckpointError::Encode {
            detail: format!("task {task_id} entry: {e}"),
        })?;
        writeln!(self.file, "{line}")?;
        self.entries += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces any unsynced appends to disk.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the fsync fails.
    pub fn sync(&mut self) -> Result<(), CheckpointError> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdlfi_ckpt_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header(tasks: usize) -> CheckpointHeader {
        CheckpointHeader {
            fingerprint: fingerprint("test-driver", &42u64),
            seed: 7,
            tasks,
        }
    }

    #[test]
    fn write_read_roundtrip_in_task_order() {
        let dir = unique_dir("roundtrip");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(3), 2).unwrap();
        for i in 0..3usize {
            w.append(i, &(i as u64 * 10)).unwrap();
        }
        w.sync().unwrap();
        let (h, values) = read_journal(&path).unwrap();
        assert_eq!(h, header(3));
        let back: Vec<u64> = values
            .iter()
            .map(|v| u64::from_json_value(v).unwrap())
            .collect();
        assert_eq!(back, vec![0, 10, 20]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_replays_and_continues() {
        let dir = unique_dir("resume");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);

        let (mut w, replayed) = CheckpointWriter::resume(&path, &header(4), 32).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(w.entries(), 2);
        w.append(2, &3u64).unwrap();
        w.append(3, &4u64).unwrap();
        w.sync().unwrap();
        let (_, values) = read_journal(&path).unwrap();
        assert_eq!(values.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_entry_is_a_typed_corrupt_error() {
        let dir = unique_dir("truncated");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);
        // Simulate a torn write: chop the last line mid-JSON.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();
        match CheckpointWriter::resume(&path, &header(4), 32) {
            Err(CheckpointError::Corrupt { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_entry_is_corrupt() {
        let dir = unique_dir("order");
        let path = dir.join("j.jsonl");
        let w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"task\":1,\"value\":5}\n");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(CheckpointError::Corrupt { line: 2, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_and_seed_mismatches_are_typed() {
        let dir = unique_dir("mismatch");
        let path = dir.join("j.jsonl");
        drop(CheckpointWriter::create(&path, &header(4), 32).unwrap());

        let mut other = header(4);
        other.fingerprint = fingerprint("test-driver", &43u64);
        assert!(matches!(
            CheckpointWriter::resume(&path, &other, 32),
            Err(CheckpointError::Mismatch {
                field: "fingerprint",
                ..
            })
        ));

        let mut other = header(4);
        other.seed = 8;
        assert!(matches!(
            CheckpointWriter::resume(&path, &other, 32),
            Err(CheckpointError::Mismatch { field: "seed", .. })
        ));

        let other = header(5);
        assert!(matches!(
            CheckpointWriter::resume(&path, &other, 32),
            Err(CheckpointError::Mismatch { field: "tasks", .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_after_complete_is_typed() {
        let dir = unique_dir("complete");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(2), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);
        assert!(matches!(
            CheckpointWriter::resume(&path, &header(2), 32),
            Err(CheckpointError::AlreadyComplete { tasks: 2 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_ended_journals_never_report_complete() {
        let dir = unique_dir("open");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(0), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.sync().unwrap();
        drop(w);
        let (_, replayed) = CheckpointWriter::resume(&path, &header(0), 32).unwrap();
        assert_eq!(replayed.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_is_an_io_error() {
        let dir = unique_dir("missing");
        assert!(matches!(
            read_journal(&dir.join("nope.jsonl")),
            Err(CheckpointError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let dir = unique_dir("append_order");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        assert!(matches!(
            w.append(2, &3u64),
            Err(CheckpointError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_depends_on_driver_and_config() {
        assert_ne!(fingerprint("a", &1u64), fingerprint("b", &1u64));
        assert_ne!(fingerprint("a", &1u64), fingerprint("a", &2u64));
        assert_eq!(fingerprint("a", &1u64), fingerprint("a", &1u64));
    }
}
