//! Crash-safe campaign journals: the persistence layer behind
//! checkpoint/resume.
//!
//! A long fault-injection campaign is thousands of independent,
//! deterministic tasks (every task is a pure function of
//! `(campaign_seed, task_id)` — the engine's seed discipline). That makes
//! a *result journal* a complete checkpoint: record each finished task's
//! result in task order, and an interrupted campaign resumes by replaying
//! the journal into its sink and computing only the remaining tasks. The
//! resumed report is bit-identical to an uninterrupted run.
//!
//! The journal is a JSONL file:
//!
//! ```text
//! {"magic":"bdlfi-checkpoint","version":1,"fingerprint":"9f…","seed":42,"tasks":128}
//! {"task":0,"value":…}
//! {"task":1,"value":…}
//! ```
//!
//! * The **header** binds the journal to one campaign: a [`fingerprint`]
//!   of the driver name + serialized config, the engine seed, and the task
//!   count (`0` for open-ended segment journals). It is written to a
//!   temporary file, fsync'd, and atomically renamed into place, so a
//!   journal either exists with a valid header or not at all.
//! * **Entries** are appended one line per completed task, in task order,
//!   and fsync'd in batches (plus once on stop/completion), bounding the
//!   work lost to a crash to the unsynced tail.
//! * The **reader** is strict about everything a crash cannot produce: any
//!   malformed interior line, invalid UTF-8 on a complete line, or
//!   out-of-order entry is a typed [`CheckpointError::Corrupt`], a header
//!   that does not match the resuming campaign is a
//!   [`CheckpointError::Mismatch`], and resuming a journal that already
//!   covers every task is [`CheckpointError::AlreadyComplete`] — never a
//!   panic, never a silent partial report.
//! * The one thing a crash *does* produce — a torn **final** line, the
//!   unsynced tail of an append cut short between batched fsyncs — is not
//!   corruption. The reader discards it, reports `truncated_tail: true` in
//!   [`JournalContents`], and [`CheckpointWriter::resume`] truncates the
//!   file back to the last complete entry before appending, so a killed
//!   process always auto-resumes its own journal.

use serde::Serialize;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// Magic string identifying a BDLFI checkpoint journal.
const MAGIC: &str = "bdlfi-checkpoint";
/// Current journal format version.
const VERSION: u64 = 1;

/// Why a journal could not be written, read, or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A journal line failed to parse or was out of order (1-based line).
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The journal header does not match the resuming campaign.
    Mismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value the resuming campaign expected.
        expected: String,
        /// The value found in the journal.
        found: String,
    },
    /// The journal already covers every task — there is nothing to resume.
    AlreadyComplete {
        /// The task count the journal covers.
        tasks: usize,
    },
    /// A header or entry could not be serialized for the journal.
    Encode {
        /// What failed to encode.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt { line, detail } => {
                write!(f, "corrupt checkpoint journal at line {line}: {detail}")
            }
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {field} mismatch: campaign has {expected}, journal has {found}"
            ),
            CheckpointError::AlreadyComplete { tasks } => {
                write!(
                    f,
                    "checkpoint already complete: all {tasks} tasks journaled"
                )
            }
            CheckpointError::Encode { detail } => {
                write!(f, "checkpoint serialization failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A shard journal's place in a sharded campaign, stored in the header.
///
/// A sharded run splits the driver's ordered task space `0..total` into
/// `count` contiguous ranges; shard `index` owns `start..start + tasks`
/// (its header's `tasks` field is the shard *length*). Entries in a shard
/// journal carry **global** task ids, so merging shards is raw
/// concatenation of their entry regions under an unsharded header — the
/// merged journal is byte-identical to a single-process journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// This shard's position in the plan, `0..count`.
    pub index: usize,
    /// Total number of shards in the plan.
    pub count: usize,
    /// First global task id this shard owns.
    pub start: usize,
    /// Total task count of the whole (unsharded) campaign.
    pub total: usize,
}

/// The identity a journal is bound to, stored in its header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// [`fingerprint`] of the driver name + campaign configuration.
    pub fingerprint: String,
    /// The engine seed the per-task RNG streams derive from.
    pub seed: u64,
    /// Total task count; `0` marks an open-ended (segment) journal, for
    /// which [`CheckpointError::AlreadyComplete`] is never raised. For a
    /// shard journal this is the shard *length*, not the campaign total.
    pub tasks: usize,
    /// `Some` marks a shard journal covering a sub-range of a sharded
    /// campaign; `None` (and absent from the header line, keeping old
    /// journals readable) is a whole-campaign journal.
    pub shard: Option<ShardInfo>,
}

impl CheckpointHeader {
    pub(crate) fn to_json_line(&self) -> Result<String, CheckpointError> {
        let mut fields = vec![
            ("magic".to_string(), MAGIC.to_string().to_json_value()),
            ("version".to_string(), VERSION.to_json_value()),
            ("fingerprint".to_string(), self.fingerprint.to_json_value()),
            ("seed".to_string(), self.seed.to_json_value()),
            ("tasks".to_string(), self.tasks.to_json_value()),
        ];
        if let Some(s) = &self.shard {
            fields.push((
                "shard".to_string(),
                serde::Value::Object(vec![
                    ("index".to_string(), s.index.to_json_value()),
                    ("count".to_string(), s.count.to_json_value()),
                    ("start".to_string(), s.start.to_json_value()),
                    ("total".to_string(), s.total.to_json_value()),
                ]),
            ));
        }
        serde_json::to_string(&serde::Value::Object(fields)).map_err(|e| CheckpointError::Encode {
            detail: format!("journal header: {e}"),
        })
    }

    /// First global task id of this journal's range (`0` unless sharded).
    #[must_use]
    pub fn base(&self) -> usize {
        self.shard.map_or(0, |s| s.start)
    }

    fn parse(line: &str) -> Result<Self, CheckpointError> {
        let corrupt = |detail: String| CheckpointError::Corrupt { line: 1, detail };
        let v: serde::Value =
            serde_json::from_str(line).map_err(|e| corrupt(format!("unparseable header: {e}")))?;
        let magic = v
            .get("magic")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| corrupt("header missing `magic`".to_string()))?;
        if magic != MAGIC {
            return Err(corrupt(format!(
                "not a checkpoint journal (magic `{magic}`)"
            )));
        }
        let version = v
            .get("version")
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| corrupt("header missing `version`".to_string()))?;
        if version != VERSION {
            return Err(CheckpointError::Mismatch {
                field: "version",
                expected: VERSION.to_string(),
                found: version.to_string(),
            });
        }
        let fingerprint = v
            .get("fingerprint")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| corrupt("header missing `fingerprint`".to_string()))?
            .to_string();
        let seed = v
            .get("seed")
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| corrupt("header missing `seed`".to_string()))?;
        let tasks =
            v.get("tasks")
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| corrupt("header missing `tasks`".to_string()))? as usize;
        let shard = match v.get("shard") {
            None => None,
            Some(s) => {
                let field = |name: &str| {
                    s.get(name)
                        .and_then(serde::Value::as_u64)
                        .ok_or_else(|| corrupt(format!("header shard info missing `{name}`")))
                };
                Some(ShardInfo {
                    index: field("index")? as usize,
                    count: field("count")? as usize,
                    start: field("start")? as usize,
                    total: field("total")? as usize,
                })
            }
        };
        Ok(CheckpointHeader {
            fingerprint,
            seed,
            tasks,
            shard,
        })
    }

    pub(crate) fn verify_matches(
        &self,
        expected: &CheckpointHeader,
    ) -> Result<(), CheckpointError> {
        let mismatch = |field, expected: &dyn fmt::Display, found: &dyn fmt::Display| {
            Err(CheckpointError::Mismatch {
                field,
                expected: expected.to_string(),
                found: found.to_string(),
            })
        };
        if self.fingerprint != expected.fingerprint {
            return mismatch("fingerprint", &expected.fingerprint, &self.fingerprint);
        }
        if self.seed != expected.seed {
            return mismatch("seed", &expected.seed, &self.seed);
        }
        if self.tasks != expected.tasks {
            return mismatch("tasks", &expected.tasks, &self.tasks);
        }
        if self.shard != expected.shard {
            let show = |s: &Option<ShardInfo>| match s {
                None => "unsharded".to_string(),
                Some(s) => format!(
                    "shard {}/{} starting at task {} of {}",
                    s.index, s.count, s.start, s.total
                ),
            };
            return mismatch("shard", &show(&expected.shard), &show(&self.shard));
        }
        Ok(())
    }
}

/// FNV-1a 64-bit fingerprint of a driver name + its serialized
/// configuration — the identity check that stops a journal from being
/// replayed into a campaign with a different config, model or seed
/// derivation.
pub fn fingerprint<C: Serialize + ?Sized>(driver: &str, config: &C) -> String {
    let json = serde_json::to_string(config).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in driver.as_bytes().iter().chain(json.as_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Everything [`read_journal`] recovers from a journal file.
#[derive(Debug)]
pub struct JournalContents {
    /// The validated header line.
    pub header: CheckpointHeader,
    /// The journaled result values, in task order. A torn final line is
    /// *not* included.
    pub values: Vec<serde::Value>,
    /// True when the file ended in a torn (newline-less) final line — the
    /// expected artifact of a crash between batched fsyncs. The torn bytes
    /// are discarded; `values` stops at the last complete entry.
    pub truncated_tail: bool,
    /// Byte length of the journal prefix ending at the last complete
    /// entry. Equal to the file length unless `truncated_tail` is set.
    pub complete_len: u64,
}

/// Reads and validates a journal line by line: returns its header, the
/// journaled result values in task order, and whether a torn final line
/// (crash artifact) was discarded.
///
/// A line is *complete* only when it is newline-terminated: appends write
/// the entry and its `\n` together, so truncation by a crash can only ever
/// leave the final line without one. A complete line that fails UTF-8
/// validation or JSON parsing, or is out of order, cannot come from a
/// crash and is hard [`CheckpointError::Corrupt`]. The header is installed
/// atomically (fsync + rename), so a torn header is also `Corrupt`.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the file cannot be read,
/// [`CheckpointError::Corrupt`] as described above.
pub fn read_journal(path: &Path) -> Result<JournalContents, CheckpointError> {
    let mut reader = std::io::BufReader::new(File::open(path)?);
    let mut buf = Vec::new();

    let n = reader.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Err(CheckpointError::Corrupt {
            line: 1,
            detail: "empty journal (no header)".to_string(),
        });
    }
    if buf.last() != Some(&b'\n') {
        return Err(CheckpointError::Corrupt {
            line: 1,
            detail: "unterminated header line".to_string(),
        });
    }
    let text = std::str::from_utf8(&buf[..n - 1]).map_err(|_| CheckpointError::Corrupt {
        line: 1,
        detail: "header is not valid UTF-8".to_string(),
    })?;
    let header = CheckpointHeader::parse(text)?;
    let mut complete_len = n as u64;

    let mut values = Vec::new();
    let mut line_no = 1usize;
    let mut truncated_tail = false;
    loop {
        buf.clear();
        let n = reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        if buf.last() != Some(&b'\n') {
            // A final line without its newline is the unsynced tail of an
            // append cut short by a crash; resume recomputes that task.
            truncated_tail = true;
            break;
        }
        values.push(parse_entry(&buf[..n - 1], line_no, values.len(), &header)?);
        complete_len += n as u64;
    }
    Ok(JournalContents {
        header,
        values,
        truncated_tail,
        complete_len,
    })
}

/// Validates one complete (newline-terminated) entry line.
fn parse_entry(
    bytes: &[u8],
    line_no: usize,
    idx: usize,
    header: &CheckpointHeader,
) -> Result<serde::Value, CheckpointError> {
    let corrupt = |detail: String| CheckpointError::Corrupt {
        line: line_no,
        detail,
    };
    if bytes.is_empty() {
        return Err(corrupt("empty entry line".to_string()));
    }
    let line = std::str::from_utf8(bytes)
        .map_err(|e| corrupt(format!("entry is not valid UTF-8: {e}")))?;
    let v: serde::Value =
        serde_json::from_str(line).map_err(|e| corrupt(format!("unparseable entry: {e}")))?;
    let task = v
        .get("task")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| corrupt("entry missing `task`".to_string()))? as usize;
    // Shard journals carry global task ids offset by the shard's start.
    let expected = header.base() + idx;
    if task != expected {
        return Err(corrupt(format!(
            "entry for task {task} where task {expected} was expected"
        )));
    }
    let value = v
        .get("value")
        .ok_or_else(|| corrupt("entry missing `value`".to_string()))?;
    if header.tasks > 0 && task >= header.base() + header.tasks {
        return Err(corrupt(format!(
            "entry for task {task} beyond task count {}",
            header.base() + header.tasks
        )));
    }
    Ok(value.clone())
}

/// What [`CheckpointWriter::resume`] recovered for replay.
#[derive(Debug)]
pub struct Replay {
    /// The journaled result values, in task order.
    pub values: Vec<serde::Value>,
    /// True when a torn final line was discarded and the journal truncated
    /// back to its last complete entry (kill-mid-append recovery).
    pub truncated_tail: bool,
}

/// Appends completed-task results to a journal, fsync'ing in batches.
///
/// Created via [`CheckpointWriter::create`] (fresh journal, atomic header
/// install) or [`CheckpointWriter::resume`] (validate + replay an existing
/// journal, then continue appending).
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
    base: usize,
    entries: usize,
    unsynced: usize,
    sync_every: usize,
}

impl CheckpointWriter {
    /// Creates a fresh journal at `path`: the header is written to a
    /// sibling temporary file, fsync'd, and renamed into place, so a
    /// half-written header can never be observed at `path`.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn create(
        path: &Path,
        header: &CheckpointHeader,
        sync_every: usize,
    ) -> Result<Self, CheckpointError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let tmp = tmp_path(path);
        let mut file = File::create(&tmp)?;
        writeln!(file, "{}", header.to_json_line()?)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // The handle follows the inode across the rename, so appends after
        // this point land in the installed journal.
        Ok(CheckpointWriter {
            file,
            base: header.base(),
            entries: 0,
            unsynced: 0,
            sync_every: sync_every.max(1),
        })
    }

    /// Opens an existing journal for appending: validates it, checks its
    /// header against `expected`, and returns the journaled values (in
    /// task order) for replay. A torn final line — the expected artifact
    /// of a crash between batched fsyncs — is truncated away (the file is
    /// cut back to the last complete entry before the append handle opens)
    /// and surfaced as [`Replay::truncated_tail`].
    ///
    /// # Errors
    ///
    /// Everything [`read_journal`] raises, [`CheckpointError::Mismatch`]
    /// when the header disagrees with `expected`, and
    /// [`CheckpointError::AlreadyComplete`] when a closed-ended journal
    /// already covers all of its tasks.
    pub fn resume(
        path: &Path,
        expected: &CheckpointHeader,
        sync_every: usize,
    ) -> Result<(Self, Replay), CheckpointError> {
        Self::resume_with(path, expected, sync_every, false)
    }

    /// [`CheckpointWriter::resume`] with the already-complete check under
    /// caller control: `allow_complete: true` reopens a finished journal
    /// for pure replay (zero tasks left to run) instead of raising
    /// [`CheckpointError::AlreadyComplete`] — the finalize path a merged
    /// shard journal is assembled into a report through.
    ///
    /// # Errors
    ///
    /// As [`CheckpointWriter::resume`], minus `AlreadyComplete` when
    /// `allow_complete` is set.
    pub fn resume_with(
        path: &Path,
        expected: &CheckpointHeader,
        sync_every: usize,
        allow_complete: bool,
    ) -> Result<(Self, Replay), CheckpointError> {
        let contents = read_journal(path)?;
        contents.header.verify_matches(expected)?;
        if !allow_complete
            && contents.header.tasks > 0
            && contents.values.len() >= contents.header.tasks
        {
            return Err(CheckpointError::AlreadyComplete {
                tasks: contents.header.tasks,
            });
        }
        if contents.truncated_tail {
            // Drop the torn bytes so the next append starts on a clean
            // line; fsync before appending so the truncation cannot be
            // reordered after new entries.
            let tail = OpenOptions::new().write(true).open(path)?;
            tail.set_len(contents.complete_len)?;
            tail.sync_data()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        let writer = CheckpointWriter {
            file,
            base: contents.header.base(),
            entries: contents.values.len(),
            unsynced: 0,
            sync_every: sync_every.max(1),
        };
        Ok((
            writer,
            Replay {
                values: contents.values,
                truncated_tail: contents.truncated_tail,
            },
        ))
    }

    /// The number of entries the journal holds (replayed + appended).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Appends the result of `task_id`, which must be the next task in
    /// order. Fsyncs once every `sync_every` appends; call
    /// [`CheckpointWriter::sync`] to force the tail out (on stop or
    /// completion).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on write failure,
    /// [`CheckpointError::Corrupt`] if `task_id` is out of order (an
    /// engine-invariant violation surfaced as an error rather than a
    /// corrupted journal).
    pub fn append<T: Serialize + ?Sized>(
        &mut self,
        task_id: usize,
        value: &T,
    ) -> Result<(), CheckpointError> {
        if task_id != self.base + self.entries {
            return Err(CheckpointError::Corrupt {
                line: self.entries + 2,
                detail: format!(
                    "append of task {task_id} where task {} was expected",
                    self.base + self.entries
                ),
            });
        }
        let obj = serde::Value::Object(vec![
            ("task".to_string(), task_id.to_json_value()),
            ("value".to_string(), value.to_json_value()),
        ]);
        let line = serde_json::to_string(&obj).map_err(|e| CheckpointError::Encode {
            detail: format!("task {task_id} entry: {e}"),
        })?;
        writeln!(self.file, "{line}")?;
        self.entries += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces any unsynced appends to disk.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the fsync fails.
    pub fn sync(&mut self) -> Result<(), CheckpointError> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdlfi_ckpt_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn header(tasks: usize) -> CheckpointHeader {
        CheckpointHeader {
            fingerprint: fingerprint("test-driver", &42u64),
            seed: 7,
            tasks,
            shard: None,
        }
    }

    fn shard_header(tasks: usize, shard: ShardInfo) -> CheckpointHeader {
        CheckpointHeader {
            shard: Some(shard),
            ..header(tasks)
        }
    }

    #[test]
    fn write_read_roundtrip_in_task_order() {
        let dir = unique_dir("roundtrip");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(3), 2).unwrap();
        for i in 0..3usize {
            w.append(i, &(i as u64 * 10)).unwrap();
        }
        w.sync().unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.header, header(3));
        assert!(!contents.truncated_tail);
        assert_eq!(
            contents.complete_len,
            std::fs::metadata(&path).unwrap().len()
        );
        let back: Vec<u64> = contents
            .values
            .iter()
            .map(|v| u64::from_json_value(v).unwrap())
            .collect();
        assert_eq!(back, vec![0, 10, 20]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_replays_and_continues() {
        let dir = unique_dir("resume");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);

        let (mut w, replay) = CheckpointWriter::resume(&path, &header(4), 32).unwrap();
        assert_eq!(replay.values.len(), 2);
        assert!(!replay.truncated_tail);
        assert_eq!(w.entries(), 2);
        w.append(2, &3u64).unwrap();
        w.append(3, &4u64).unwrap();
        w.sync().unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.values.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_final_line_is_truncated_and_resumed() {
        let dir = unique_dir("torn_tail");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);
        // Simulate a kill between batched fsyncs: chop the last line
        // mid-JSON. The reader must stop at the last complete entry.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 5]).unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(contents.truncated_tail);
        assert_eq!(contents.values.len(), 1);

        let (mut w, replay) = CheckpointWriter::resume(&path, &header(4), 32).unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(replay.values.len(), 1);
        assert_eq!(w.entries(), 1);
        // The torn bytes are gone: re-appending task 1 yields a journal
        // byte-identical to one that never tore.
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_multibyte_utf8_tail_is_truncated_not_io() {
        let dir = unique_dir("torn_utf8");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(3), 32).unwrap();
        w.append(0, &"plain".to_string()).unwrap();
        w.append(1, &"émod\u{00e9}".to_string()).unwrap();
        w.sync().unwrap();
        drop(w);
        // Cut inside the final entry's last multi-byte code point: the
        // file is no longer valid UTF-8, which used to surface as an
        // opaque Io error from read_to_string.
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.iter().any(|&b| b > 127), "fixture must be multi-byte");
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(contents.truncated_tail);
        assert_eq!(contents.values.len(), 1);
        let (w, replay) = CheckpointWriter::resume(&path, &header(3), 32).unwrap();
        assert!(replay.truncated_tail);
        assert_eq!(w.entries(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_torn_line_stays_corrupt() {
        let dir = unique_dir("interior");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);
        // Damage an interior line but keep its newline: truncation by a
        // crash cannot produce this, so it is hard corruption.
        let text = std::fs::read_to_string(&path).unwrap();
        let damaged = text.replacen("{\"task\":0", "{\"task#:0", 1);
        assert_ne!(damaged, text);
        std::fs::write(&path, damaged).unwrap();
        match read_journal(&path) {
            Err(CheckpointError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interior_invalid_utf8_line_is_corrupt_with_line_number() {
        let dir = unique_dir("interior_utf8");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte of the first entry line (line 2) to an invalid
        // UTF-8 sequence, newline intact.
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[header_end + 2] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_journal(&path) {
            Err(CheckpointError::Corrupt { line, detail }) => {
                assert_eq!(line, 2);
                assert!(detail.contains("UTF-8"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn complete_but_unparseable_final_line_stays_corrupt() {
        let dir = unique_dir("final_complete");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.sync().unwrap();
        drop(w);
        // A newline-terminated garbage line was fully written — that is
        // not a crash artifact and must not be silently dropped.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{broken\n");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(CheckpointError::Corrupt { line: 3, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_is_corrupt_not_truncated() {
        let dir = unique_dir("torn_header");
        let path = dir.join("j.jsonl");
        drop(CheckpointWriter::create(&path, &header(4), 32).unwrap());
        // The header is installed atomically, so a newline-less header
        // means real corruption, not a crash artifact.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end()).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(CheckpointError::Corrupt { line: 1, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_entry_is_corrupt() {
        let dir = unique_dir("order");
        let path = dir.join("j.jsonl");
        let w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"task\":1,\"value\":5}\n");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(CheckpointError::Corrupt { line: 2, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_and_seed_mismatches_are_typed() {
        let dir = unique_dir("mismatch");
        let path = dir.join("j.jsonl");
        drop(CheckpointWriter::create(&path, &header(4), 32).unwrap());

        let mut other = header(4);
        other.fingerprint = fingerprint("test-driver", &43u64);
        assert!(matches!(
            CheckpointWriter::resume(&path, &other, 32),
            Err(CheckpointError::Mismatch {
                field: "fingerprint",
                ..
            })
        ));

        let mut other = header(4);
        other.seed = 8;
        assert!(matches!(
            CheckpointWriter::resume(&path, &other, 32),
            Err(CheckpointError::Mismatch { field: "seed", .. })
        ));

        let other = header(5);
        assert!(matches!(
            CheckpointWriter::resume(&path, &other, 32),
            Err(CheckpointError::Mismatch { field: "tasks", .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_after_complete_is_typed() {
        let dir = unique_dir("complete");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(2), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);
        assert!(matches!(
            CheckpointWriter::resume(&path, &header(2), 32),
            Err(CheckpointError::AlreadyComplete { tasks: 2 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_ended_journals_never_report_complete() {
        let dir = unique_dir("open");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(0), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.sync().unwrap();
        drop(w);
        let (_, replay) = CheckpointWriter::resume(&path, &header(0), 32).unwrap();
        assert_eq!(replay.values.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_is_an_io_error() {
        let dir = unique_dir("missing");
        assert!(matches!(
            read_journal(&dir.join("nope.jsonl")),
            Err(CheckpointError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let dir = unique_dir("append_order");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(4), 32).unwrap();
        w.append(0, &1u64).unwrap();
        assert!(matches!(
            w.append(2, &3u64),
            Err(CheckpointError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_depends_on_driver_and_config() {
        assert_ne!(fingerprint("a", &1u64), fingerprint("b", &1u64));
        assert_ne!(fingerprint("a", &1u64), fingerprint("a", &2u64));
        assert_eq!(fingerprint("a", &1u64), fingerprint("a", &1u64));
    }

    #[test]
    fn shard_header_roundtrips_with_global_task_ids() {
        let dir = unique_dir("shard_roundtrip");
        let path = dir.join("s.jsonl");
        let info = ShardInfo {
            index: 1,
            count: 2,
            start: 5,
            total: 9,
        };
        let mut w = CheckpointWriter::create(&path, &shard_header(4, info), 32).unwrap();
        // Entries carry global ids: this shard owns 5..9.
        for i in 5..9usize {
            w.append(i, &(i as u64)).unwrap();
        }
        w.sync().unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.header.shard, Some(info));
        assert_eq!(contents.header.base(), 5);
        assert_eq!(contents.values.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_append_rejects_local_ids() {
        let dir = unique_dir("shard_local");
        let path = dir.join("s.jsonl");
        let info = ShardInfo {
            index: 1,
            count: 2,
            start: 5,
            total: 9,
        };
        let mut w = CheckpointWriter::create(&path, &shard_header(4, info), 32).unwrap();
        assert!(matches!(
            w.append(0, &1u64),
            Err(CheckpointError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_entry_beyond_range_is_corrupt() {
        let dir = unique_dir("shard_beyond");
        let path = dir.join("s.jsonl");
        let info = ShardInfo {
            index: 0,
            count: 2,
            start: 0,
            total: 4,
        };
        let w = CheckpointWriter::create(&path, &shard_header(2, info), 32).unwrap();
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str(
            "{\"task\":0,\"value\":1}\n{\"task\":1,\"value\":2}\n{\"task\":2,\"value\":3}\n",
        );
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(CheckpointError::Corrupt { line: 4, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_info_mismatch_is_typed() {
        let dir = unique_dir("shard_mismatch");
        let path = dir.join("s.jsonl");
        let info = ShardInfo {
            index: 0,
            count: 2,
            start: 0,
            total: 4,
        };
        drop(CheckpointWriter::create(&path, &shard_header(2, info), 32).unwrap());
        let other = ShardInfo { index: 1, ..info };
        assert!(matches!(
            CheckpointWriter::resume(&path, &shard_header(2, other), 32),
            Err(CheckpointError::Mismatch { field: "shard", .. })
        ));
        assert!(matches!(
            CheckpointWriter::resume(&path, &header(2), 32),
            Err(CheckpointError::Mismatch { field: "shard", .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_allow_complete_reopens_finished_journals() {
        let dir = unique_dir("allow_complete");
        let path = dir.join("j.jsonl");
        let mut w = CheckpointWriter::create(&path, &header(2), 32).unwrap();
        w.append(0, &1u64).unwrap();
        w.append(1, &2u64).unwrap();
        w.sync().unwrap();
        drop(w);
        let (w, replay) = CheckpointWriter::resume_with(&path, &header(2), 32, true).unwrap();
        assert_eq!(replay.values.len(), 2);
        assert_eq!(w.entries(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
