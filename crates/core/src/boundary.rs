//! Decision-boundary error-probability maps — the paper's Fig. 1 ③:
//! "log(Error) Probability Due to Faults" over the 2-D input space,
//! against the original classification boundary. The paper's finding:
//! *the effect of faults is most significant at the decision boundary.*

use crate::checkpoint::fingerprint;
use crate::engine::{CheckpointSpec, EngineError, EvalEngine, EvalSink, RunControl, RunMeta};
use crate::faulty_model::FaultyModel;
use crate::stats::spearman;
use bdlfi_bayes::BetaBernoulli;
use bdlfi_data::Dataset;
use bdlfi_faults::{FaultModel, SiteSpec};
use bdlfi_nn::Sequential;
use bdlfi_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a boundary-map study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryConfig {
    /// Horizontal extent of the input grid.
    pub x_range: (f32, f32),
    /// Vertical extent of the input grid.
    pub y_range: (f32, f32),
    /// Grid cells per axis (the map has `resolution²` points).
    pub resolution: usize,
    /// Number of fault configurations sampled from the prior.
    pub fault_samples: usize,
    /// RNG seed; fault sample `i` draws from `seed_stream(seed, i)`.
    pub seed: u64,
    /// Worker threads for fault evaluation (0 = all available cores).
    /// Maps are bit-identical at every worker count.
    pub workers: usize,
}

impl Default for BoundaryConfig {
    fn default() -> Self {
        BoundaryConfig {
            x_range: (-5.0, 5.0),
            y_range: (-5.0, 5.0),
            resolution: 40,
            fault_samples: 200,
            seed: 42,
            workers: 0,
        }
    }
}

impl BoundaryConfig {
    /// The config with execution-only fields pinned, for journal
    /// fingerprinting. Maps are bit-identical at every worker count, so
    /// `workers` is scheduling metadata, not map identity: a journal
    /// written at `workers: 1` must resume under any other worker count.
    #[must_use]
    pub fn fingerprint_form(&self) -> BoundaryConfig {
        BoundaryConfig {
            workers: 0,
            ..*self
        }
    }
}

/// The per-point fault-induced error-probability map over a 2-D input
/// space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundaryMap {
    /// Grid cells per axis.
    pub resolution: usize,
    /// Horizontal extent.
    pub x_range: (f32, f32),
    /// Vertical extent.
    pub y_range: (f32, f32),
    /// Posterior mean (Jeffreys Beta–Bernoulli) of the per-point
    /// probability that faults change the prediction; row-major,
    /// `resolution²` entries, row 0 at `y_range.0`.
    pub error_prob: Vec<f64>,
    /// The golden network's predicted class per grid point.
    pub golden_pred: Vec<usize>,
    /// The golden network's softmax margin (top-1 minus top-2 probability)
    /// per grid point — small margin ⇔ close to the decision boundary.
    pub margin: Vec<f64>,
    /// Spearman correlation between margin and error probability. The
    /// paper's boundary finding corresponds to a strongly *negative*
    /// value: low margin (near the boundary) ⇒ high error probability.
    pub margin_correlation: f64,
    /// Engine execution metadata for the fault-sample fan-out.
    pub run_meta: RunMeta,
}

impl BoundaryMap {
    /// Error probability at grid cell `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if an index exceeds the resolution.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        assert!(
            ix < self.resolution && iy < self.resolution,
            "grid index out of range"
        );
        self.error_prob[iy * self.resolution + ix]
    }

    /// Natural log of the error probability (the paper plots log scale).
    pub fn log_error_prob(&self) -> Vec<f64> {
        self.error_prob.iter().map(|p| p.max(1e-12).ln()).collect()
    }

    /// Mean error probability over points whose margin is below / at least
    /// the median margin: `(near_boundary, far_from_boundary)`. The
    /// paper's finding is `near > far`.
    pub fn near_far_split(&self) -> (f64, f64) {
        let mut sorted = self.margin.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let (mut near, mut far) = (Vec::new(), Vec::new());
        for (m, e) in self.margin.iter().zip(self.error_prob.iter()) {
            if *m < median {
                near.push(*e);
            } else {
                far.push(*e);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        (mean(&near), mean(&far))
    }

    /// Renders the log-error-probability map as ASCII art (darker = more
    /// likely to misclassify under faults), row `resolution-1` (top) first.
    pub fn render_ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let lo = self
            .error_prob
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(1e-12)
            .ln();
        let hi = self
            .error_prob
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(1e-12)
            .ln();
        let span = (hi - lo).max(1e-9);
        let mut out = String::with_capacity((self.resolution + 1) * self.resolution);
        for iy in (0..self.resolution).rev() {
            for ix in 0..self.resolution {
                let v = (self.at(ix, iy).max(1e-12).ln() - lo) / span;
                let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// Computes the fault-induced error-probability map of a trained 2-D
/// classifier.
///
/// Every fault sample evaluates the entire grid in one batched forward
/// pass; the per-point mismatch counts feed Jeffreys Beta–Bernoulli
/// posteriors.
///
/// # Panics
///
/// Panics if the model does not take 2-D inputs, the resolution is < 2, or
/// `fault_samples == 0`.
pub fn boundary_map(
    model: &Sequential,
    spec: &SiteSpec,
    fault_model: Arc<dyn FaultModel>,
    cfg: &BoundaryConfig,
) -> BoundaryMap {
    match boundary_map_controlled(model, spec, fault_model, cfg, &RunControl::default(), None) {
        Ok(map) => map,
        Err(e) => panic!("boundary map failed: {e}"),
    }
}

/// [`boundary_map`] with cooperative cancellation and an optional
/// checkpoint journal (one entry per fault sample).
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop (resume with the
/// same config to finish), plus journal/sink failures.
///
/// # Panics
///
/// Same preconditions as [`boundary_map`].
pub fn boundary_map_controlled(
    model: &Sequential,
    spec: &SiteSpec,
    fault_model: Arc<dyn FaultModel>,
    cfg: &BoundaryConfig,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<BoundaryMap, EngineError> {
    assert!(cfg.resolution >= 2, "resolution must be at least 2");
    assert!(cfg.fault_samples > 0, "need at least one fault sample");

    // Build the grid as a dataset (labels are dummies; the statistic is
    // mismatch against the golden prediction, not label error).
    let res = cfg.resolution;
    let n = res * res;
    let mut coords = Vec::with_capacity(n * 2);
    for iy in 0..res {
        for ix in 0..res {
            let x = cfg.x_range.0 + (cfg.x_range.1 - cfg.x_range.0) * ix as f32 / (res - 1) as f32;
            let y = cfg.y_range.0 + (cfg.y_range.1 - cfg.y_range.0) * iy as f32 / (res - 1) as f32;
            coords.push(x);
            coords.push(y);
        }
    }
    let grid = Tensor::from_vec(coords, [n, 2]);
    let dataset = Arc::new(Dataset::new(grid, vec![0; n], classes_of(model)));

    let mut fm = FaultyModel::new(model.clone(), dataset, spec, fault_model);
    let golden_pred = fm.golden_preds().to_vec();

    // Softmax margin of the golden run: distance-to-boundary proxy.
    let margin = {
        let logits = fm.eval_logits(
            &bdlfi_faults::FaultConfig::clean(),
            &mut StdRng::seed_from_u64(0),
        );
        let probs = logits.softmax_rows();
        (0..n)
            .map(|i| {
                let row = probs.row(i);
                let mut top = f32::NEG_INFINITY;
                let mut second = f32::NEG_INFINITY;
                for &v in row {
                    if v > top {
                        second = top;
                        top = v;
                    } else if v > second {
                        second = v;
                    }
                }
                f64::from(top - second)
            })
            .collect::<Vec<f64>>()
    };

    // Per-point mismatch counter fed incrementally by the engine — no
    // per-sample result buffering.
    struct MismatchSink {
        counts: Vec<u64>,
    }
    impl EvalSink<Vec<bool>> for MismatchSink {
        fn accept(&mut self, _task_id: usize, mismatch: Vec<bool>) -> Result<(), EngineError> {
            for (count, hit) in self.counts.iter_mut().zip(mismatch) {
                *count += u64::from(hit);
            }
            Ok(())
        }
    }

    // Fan the fault samples out through the engine: each worker owns a
    // clone of the faulty model (sharing the golden prefix cache), and
    // sample `i` draws its configuration and transient faults from the
    // seed stream of task `i` — so the map is worker-count invariant.
    let mut sink = MismatchSink {
        counts: vec![0u64; n],
    };
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let ckpt = ckpt.cloned().map(|mut spec| {
        if spec.fingerprint.is_empty() {
            spec.fingerprint = fingerprint("boundary_map", &cfg.fingerprint_form());
        }
        spec
    });
    let (delta_hits0, delta_fb0) = fm.delta_counters();
    let mut run_meta = engine.run_checkpointed(
        cfg.fault_samples,
        || fm.clone(),
        |fm, ctx| {
            let fault_cfg = fm.sample_config(&mut ctx.rng);
            Ok(fm.eval_mismatch(&fault_cfg, &mut ctx.rng))
        },
        &mut sink,
        ctl,
        ckpt.as_ref(),
    )?;
    let (delta_hits1, delta_fb1) = fm.delta_counters();
    run_meta.delta_hits = delta_hits1 - delta_hits0;
    run_meta.delta_fallbacks = delta_fb1 - delta_fb0;
    let mismatch_counts = sink.counts;

    let error_prob: Vec<f64> = mismatch_counts
        .iter()
        .map(|&k| {
            BetaBernoulli::jeffreys()
                .update(k, cfg.fault_samples as u64)
                .mean()
        })
        .collect();
    let margin_correlation = spearman(&margin, &error_prob);

    Ok(BoundaryMap {
        resolution: res,
        x_range: cfg.x_range,
        y_range: cfg.y_range,
        error_prob,
        golden_pred,
        margin,
        margin_correlation,
        run_meta,
    })
}

/// Infers the class count from the model's final dense layer output.
fn classes_of(model: &Sequential) -> usize {
    let mut probe = model.clone();
    probe.predict(&Tensor::zeros([1, 2])).dim(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_faults::BernoulliBitFlip;
    use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};

    fn trained_mlp() -> Sequential {
        let mut rng = StdRng::seed_from_u64(33);
        let data = gaussian_blobs(300, 3, 0.5, &mut rng);
        let mut model = mlp(2, &[32], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 30,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, data.inputs(), data.labels(), &mut rng);
        model
    }

    fn quick_map(model: &Sequential, p: f64) -> BoundaryMap {
        boundary_map(
            model,
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::new(p)),
            &BoundaryConfig {
                resolution: 16,
                fault_samples: 60,
                seed: 9,
                ..BoundaryConfig::default()
            },
        )
    }

    #[test]
    fn errors_concentrate_at_the_decision_boundary() {
        // The paper's Fig. 1 (3) finding, reproduced in miniature.
        let model = trained_mlp();
        let map = quick_map(&model, 2e-3);
        let (near, far) = map.near_far_split();
        assert!(
            near > far,
            "near-boundary error {near} should exceed far-from-boundary {far}"
        );
        assert!(
            map.margin_correlation < -0.2,
            "margin correlation {} should be clearly negative",
            map.margin_correlation
        );
    }

    #[test]
    fn map_dimensions_and_probability_bounds() {
        let model = trained_mlp();
        let map = quick_map(&model, 1e-3);
        assert_eq!(map.error_prob.len(), 16 * 16);
        assert_eq!(map.golden_pred.len(), 16 * 16);
        assert!(map.error_prob.iter().all(|p| (0.0..=1.0).contains(p)));
        // Jeffreys posterior keeps probabilities strictly inside (0, 1).
        assert!(map.error_prob.iter().all(|&p| p > 0.0 && p < 1.0));
        assert_eq!(map.at(0, 0), map.error_prob[0]);
        assert_eq!(map.at(15, 15), map.error_prob[16 * 16 - 1]);
    }

    #[test]
    fn log_map_and_ascii_render() {
        let model = trained_mlp();
        let map = quick_map(&model, 1e-3);
        let log = map.log_error_prob();
        assert_eq!(log.len(), map.error_prob.len());
        assert!(log.iter().all(|v| v.is_finite()));
        let art = map.render_ascii();
        assert_eq!(art.lines().count(), 16);
        assert!(art.lines().all(|l| l.len() == 16));
    }

    #[test]
    fn boundary_map_is_worker_count_invariant() {
        let model = trained_mlp();
        let map_with = |workers: usize| {
            boundary_map(
                &model,
                &SiteSpec::AllParams,
                Arc::new(BernoulliBitFlip::new(2e-3)),
                &BoundaryConfig {
                    resolution: 8,
                    fault_samples: 30,
                    seed: 5,
                    workers,
                    ..BoundaryConfig::default()
                },
            )
        };
        let serial = map_with(1);
        let parallel = map_with(3);
        assert_eq!(serial.error_prob, parallel.error_prob);
        assert_eq!(serial.margin_correlation, parallel.margin_correlation);
        assert_eq!(parallel.run_meta.tasks, 30);
    }

    #[test]
    fn golden_predictions_partition_the_plane() {
        let model = trained_mlp();
        let map = quick_map(&model, 1e-4);
        // All 3 classes should own some region of the (-5,5)^2 plane.
        let mut seen = std::collections::BTreeSet::new();
        seen.extend(map.golden_pred.iter().copied());
        assert!(seen.len() >= 2, "classes seen: {seen:?}");
    }
}
