//! The BDLFI campaign engine: multi-chain MCMC inference over fault
//! configurations, with mixing-based completeness certification.
//!
//! This is the paper's Section II pipeline: (1) train to get the golden
//! weights; (2) attach the bit-flip fault model to the weights; (3) build
//! the Bayesian fault model; (4) "perform inference multiple times on the
//! DBN using MCMC to obtain the classification uncertainty of the network".
//! Steps (1)–(3) are [`crate::FaultyModel`]; this module is step (4), in
//! two flavours: a fixed-budget [`run_campaign`] and an adaptive
//! [`run_campaign_adaptive`] that extends the chains in segments until the
//! completeness criteria certify — the operational form of "inject until
//! further injections change nothing".

use crate::checkpoint::{fingerprint, CheckpointError, CheckpointHeader, CheckpointWriter};
use crate::completeness::{assess, CompletenessCriteria, CompletenessReport};
use crate::engine::{
    CheckpointSpec, CollectSink, EngineError, EvalEngine, NullSink, RunControl, RunMeta,
};
use crate::proposals::{BitToggleProposal, GibbsBitProposal, PriorProposal};
use crate::report::CampaignReport;
use crate::shard::{ShardError, ShardPlan};
use crate::workload::FaultWorkload;
use bdlfi_bayes::{
    run_chain, seed_stream, self_normalized_estimate, ChainConfig, MixtureProposal, Proposal, Trace,
};
use bdlfi_faults::{BitRange, FaultConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::Arc;

/// The MCMC kernel a campaign uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Independent draws from the fault prior — exact sampling; the
    /// untempered reference mode.
    Prior,
    /// Local Metropolis–Hastings: toggle `block` bits per proposal.
    BitToggle {
        /// Bits toggled per proposal.
        block: usize,
    },
    /// Exact-conditional Gibbs resampling of single bits under the
    /// independent Bernoulli(p) prior (always accepted when untempered).
    Gibbs {
        /// The prior's per-bit flip probability (must match the fault
        /// model for the exact-conditional property to hold).
        p: f64,
    },
    /// Mixture of local single-bit toggles and occasional prior refreshes.
    Mixture {
        /// Probability weight of the prior-refresh component (the toggle
        /// component has weight `1 − refresh_weight`).
        refresh_weight: f64,
    },
    /// Importance sampling from a *tilted prior*: configurations are drawn
    /// iid from the fault model with its rate inflated by `factor`, and
    /// every estimate is re-weighted back to the true prior with exact
    /// closed-form weights. The robust acceleration for rare-error
    /// *estimation*: hits appear ~`factor`× more often at equal budget.
    TiltedPrior {
        /// Rate inflation factor (> 1 accelerates; 1 recovers the prior).
        factor: f64,
    },
    /// Tempered target `π_β(e) ∝ prior(e) · exp(β · 𝟙[error(e) > golden])`
    /// explored with a toggle/refresh mixture; estimates are
    /// importance-reweighted back to the prior. The indicator tilt boosts
    /// *every* error-causing configuration by the same factor `e^β`, so
    /// rare-error regimes are sampled densely without the weight collapse
    /// a proportional `exp(β · error)` tilt suffers when catastrophic
    /// configurations exist. The paper's "algorithmic acceleration" hook.
    Tempered {
        /// Tilt strength `β ≥ 0` (0 recovers the prior target);
        /// `e^β` should be on the order of `1 / P(error)`.
        beta: f64,
    },
}

/// Configuration of a BDLFI campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of parallel chains (≥ 2 recommended so R̂ is defined).
    pub chains: usize,
    /// Per-chain schedule.
    pub chain: ChainConfig,
    /// Kernel choice.
    pub kernel: KernelChoice,
    /// Base RNG seed; chain `i` derives its proposal stream from
    /// `seed_stream(seed, 2 i)` and its transient-activation stream from
    /// `seed_stream(seed, 2 i + 1)`.
    pub seed: u64,
    /// Completeness thresholds.
    pub criteria: CompletenessCriteria,
    /// Worker threads for chain execution (0 = all available cores).
    /// Reports are bit-identical at every worker count.
    pub workers: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            chains: 4,
            chain: ChainConfig {
                burn_in: 20,
                samples: 250,
                thin: 1,
            },
            kernel: KernelChoice::Prior,
            seed: 42,
            criteria: CompletenessCriteria::default(),
            workers: 0,
        }
    }
}

impl CampaignConfig {
    /// The config with execution-only fields pinned, for journal
    /// fingerprinting. Reports are bit-identical at every worker count, so
    /// `workers` is scheduling metadata, not campaign identity: a journal
    /// written at `workers: 1` must resume, finalize and shard-merge under
    /// any other worker count.
    #[must_use]
    pub fn fingerprint_form(&self) -> CampaignConfig {
        CampaignConfig {
            workers: 0,
            ..*self
        }
    }
}

/// The complete, serializable outcome of one chain after a segment: its
/// recorded statistics plus everything needed to continue the chain
/// bit-identically — the Markov state and the exact positions of both RNG
/// streams. This is what the checkpoint journal stores per chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ChainOutcome {
    samples: Vec<f64>,
    flips: Vec<f64>,
    log_weights: Vec<f64>,
    accepted: usize,
    steps: usize,
    burned_in: bool,
    state: FaultConfig,
    rng: [u64; 4],
    act_rng: [u64; 4],
}

/// Persistent per-chain state, allowing campaigns to be extended in
/// segments without restarting the Markov chains. Generic over the
/// [`FaultWorkload`], so the same machinery drives f32 and quantized
/// campaigns.
struct ChainWorker<W: FaultWorkload> {
    fm: W,
    rng: StdRng,
    act_rng: StdRng,
    state: FaultConfig,
    trace: Trace,
    flips: Vec<f64>,
    // Per recorded sample: log of the importance weight back to the prior
    // (0 for kernels that already target the prior).
    log_weights: Vec<f64>,
    accepted: usize,
    steps: usize,
    burned_in: bool,
}

impl<W: FaultWorkload> ChainWorker<W> {
    fn new(fm: &W, cfg: &CampaignConfig, idx: usize) -> Self {
        // Two seed-stream lanes per chain: proposals and transient
        // activation faults draw from disjoint SplitMix64 streams.
        ChainWorker {
            fm: fm.clone(),
            rng: StdRng::seed_from_u64(seed_stream(cfg.seed, 2 * idx as u64)),
            act_rng: StdRng::seed_from_u64(seed_stream(cfg.seed, 2 * idx as u64 + 1)),
            state: FaultConfig::clean(),
            trace: Trace::new(),
            flips: Vec::new(),
            log_weights: Vec::new(),
            accepted: 0,
            steps: 0,
            burned_in: false,
        }
    }

    /// Captures the chain's cumulative outcome (for journaling/assembly).
    fn snapshot(&self) -> ChainOutcome {
        ChainOutcome {
            samples: self.trace.samples().to_vec(),
            flips: self.flips.clone(),
            log_weights: self.log_weights.clone(),
            accepted: self.accepted,
            steps: self.steps,
            burned_in: self.burned_in,
            state: self.state.clone(),
            rng: self.rng.state(),
            act_rng: self.act_rng.state(),
        }
    }

    /// Rebuilds a chain at the exact point a [`ChainOutcome`] captured, so
    /// a resumed campaign continues bit-identically.
    fn restore(fm: &W, outcome: &ChainOutcome) -> Self {
        ChainWorker {
            fm: fm.clone(),
            rng: StdRng::from_state(outcome.rng),
            act_rng: StdRng::from_state(outcome.act_rng),
            state: outcome.state.clone(),
            trace: Trace::from_samples(outcome.samples.clone()),
            flips: outcome.flips.clone(),
            log_weights: outcome.log_weights.clone(),
            accepted: outcome.accepted,
            steps: outcome.steps,
            burned_in: outcome.burned_in,
        }
    }

    /// Advances the chain by `samples` recorded samples (plus burn-in on
    /// the first segment), appending to the worker's trace.
    fn advance(&mut self, cfg: &CampaignConfig, samples: usize) {
        let sites = Arc::new(self.fm.sites().params.clone());
        let fault_model = Arc::clone(self.fm.fault_model());

        // The distribution configurations are *drawn from* (differs from
        // the prior only for the tilted-prior kernel).
        let sampling_model: Arc<dyn bdlfi_faults::FaultModel> = match cfg.kernel {
            KernelChoice::TiltedPrior { factor } => fault_model
                .tilted(factor)
                // bdlfi-lint: allow(BD010) -- campaign-setup validation: fails before any task runs or journal bytes exist, so nothing resumable is lost
                .expect("fault model does not support tilting")
                .into(),
            _ => Arc::clone(&fault_model),
        };

        let proposal: Box<dyn Proposal<FaultConfig>> = match cfg.kernel {
            KernelChoice::Prior | KernelChoice::TiltedPrior { .. } => Box::new(PriorProposal::new(
                Arc::clone(&sites),
                Arc::clone(&sampling_model),
            )),
            KernelChoice::BitToggle { block } => Box::new(BitToggleProposal::with_block(
                Arc::clone(&sites),
                BitRange::all(),
                block.max(1),
            )),
            KernelChoice::Gibbs { p } => Box::new(GibbsBitProposal::new(
                Arc::clone(&sites),
                BitRange::all(),
                p,
            )),
            KernelChoice::Mixture { refresh_weight } => {
                let w = refresh_weight.clamp(1e-6, 1.0 - 1e-6);
                Box::new(MixtureProposal::new(vec![
                    (
                        w,
                        Box::new(PriorProposal::new(
                            Arc::clone(&sites),
                            Arc::clone(&fault_model),
                        )) as Box<dyn Proposal<FaultConfig>>,
                    ),
                    (
                        1.0 - w,
                        Box::new(BitToggleProposal::new(Arc::clone(&sites), BitRange::all())),
                    ),
                ]))
            }
            KernelChoice::Tempered { .. } => {
                // Local exploration plus occasional independent refreshes:
                // pure toggles heal error configurations one bit at a time
                // and mix slowly out of the tilted modes.
                Box::new(MixtureProposal::new(vec![
                    (
                        0.1,
                        Box::new(PriorProposal::new(
                            Arc::clone(&sites),
                            Arc::clone(&fault_model),
                        )) as Box<dyn Proposal<FaultConfig>>,
                    ),
                    (
                        0.9,
                        Box::new(BitToggleProposal::new(Arc::clone(&sites), BitRange::all())),
                    ),
                ]))
            }
        };

        let beta = match cfg.kernel {
            KernelChoice::Tempered { beta } => beta,
            _ => 0.0,
        };

        // Shared, memoised faulty evaluation: the tempered target and the
        // statistic see the same state, so the expensive inference runs
        // once per distinct configuration.
        let golden = self.fm.golden_error();
        let model = RefCell::new(&mut self.fm);
        let act_rng = RefCell::new(&mut self.act_rng);
        let memo: RefCell<Option<(FaultConfig, f64)>> = RefCell::new(None);
        let eval_error = |c: &FaultConfig| -> f64 {
            if let Some((cached, err)) = memo.borrow().as_ref() {
                if cached == c {
                    return *err;
                }
            }
            let err = model.borrow_mut().eval_error(c, *act_rng.borrow_mut());
            *memo.borrow_mut() = Some((c.clone(), err));
            err
        };

        // The chain's target is the *sampling* distribution (tilted prior
        // for the IS kernel — then every proposal is accepted and samples
        // are iid from it), optionally tempered by the error indicator.
        let target_model = Arc::clone(&sampling_model);
        let target_sites = Arc::clone(&sites);
        let eval_error_ref = &eval_error;
        let mut log_target = move |c: &FaultConfig| -> f64 {
            let base = c
                .log_prob(&target_sites, target_model.as_ref())
                // bdlfi-lint: allow(BD010) -- the sampling model drew this config from the same density; absence is unrepresentable mid-chain
                .expect("fault model must define a density for MCMC targets");
            if beta > 0.0 {
                let hit = eval_error_ref(c) > golden + 1e-12;
                base + if hit { beta } else { 0.0 }
            } else {
                base
            }
        };

        // Per-sample importance weight back to the true prior.
        let weight_prior = Arc::clone(&fault_model);
        let weight_sampling = Arc::clone(&sampling_model);
        let weight_sites = Arc::clone(&sites);
        let is_tilted = matches!(cfg.kernel, KernelChoice::TiltedPrior { .. });
        let log_weight = move |c: &FaultConfig, err: f64| -> f64 {
            if is_tilted {
                // bdlfi-lint: allow(BD010) -- the sampling model drew this config from the same density; absence is unrepresentable mid-chain
                let prior = c.log_prob(&weight_sites, weight_prior.as_ref()).unwrap();
                // bdlfi-lint: allow(BD010) -- same invariant as the line above, for the proposal-side density
                let proposal = c.log_prob(&weight_sites, weight_sampling.as_ref()).unwrap();
                prior - proposal
            } else if beta > 0.0 {
                if err > golden + 1e-12 {
                    -beta
                } else {
                    0.0
                }
            } else {
                0.0
            }
        };

        let flips = RefCell::new(&mut self.flips);
        let log_weights = RefCell::new(&mut self.log_weights);
        let mut statistic = |c: &FaultConfig| -> f64 {
            flips.borrow_mut().push(c.total_flips() as f64);
            let err = eval_error(c);
            log_weights.borrow_mut().push(log_weight(c, err));
            err
        };

        let schedule = ChainConfig {
            burn_in: if self.burned_in { 0 } else { cfg.chain.burn_in },
            samples,
            thin: cfg.chain.thin,
        };
        let res = run_chain(
            self.state.clone(),
            proposal.as_ref(),
            &mut log_target,
            &mut statistic,
            schedule,
            &mut self.rng,
        );
        let _ = model;
        let _ = act_rng;
        let _ = flips;
        let _ = log_weights;

        self.state = res.final_state;
        self.burned_in = true;
        let new_steps = schedule.total_steps();
        self.accepted += (res.acceptance_rate * new_steps as f64).round() as usize;
        self.steps += new_steps;
        self.trace.extend(res.trace.samples().iter().copied());
    }
}

/// Assembles the report from finished chains' outcomes.
fn assemble<W: FaultWorkload>(
    fm: &W,
    cfg: &CampaignConfig,
    outcomes: &[ChainOutcome],
    run_meta: RunMeta,
) -> CampaignReport {
    let traces: Vec<Trace> = outcomes
        .iter()
        .map(|o| Trace::from_samples(o.samples.clone()))
        .collect();
    let acceptance_rates: Vec<f64> = outcomes
        .iter()
        .map(|o| o.accepted as f64 / o.steps.max(1) as f64)
        .collect();
    let mean_flips = {
        let mut total = 0.0;
        let mut count = 0usize;
        for o in outcomes {
            total += o.flips.iter().sum::<f64>();
            count += o.flips.len();
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    };

    let completeness: CompletenessReport = assess(&traces, &cfg.criteria);
    let pooled: Trace = traces
        .iter()
        .flat_map(|t| t.samples().iter().copied())
        .collect();
    // Importance re-weighting back to the prior for biased-sampling
    // kernels (tilted prior, tempered); weights are recorded per sample
    // by the workers and are identically zero for prior-targeting kernels.
    let pooled_log_w: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.log_weights.iter().copied())
        .collect();
    let weighted = pooled_log_w.iter().any(|&w| w != 0.0);
    let (mean_error, importance_ess) = if weighted {
        let (est, iess) = self_normalized_estimate(pooled.samples(), &pooled_log_w);
        (est, Some(iess))
    } else {
        (pooled.mean(), None)
    };

    CampaignReport {
        traces,
        acceptance_rates,
        summary: pooled.summary(),
        completeness,
        golden_error: fm.golden_error(),
        mean_error,
        importance_ess,
        mean_flips,
        config: *cfg,
        run_meta,
    }
}

/// Moves the chain workers through one engine segment of `samples`
/// recorded samples each. Chains carry their own persistent RNG streams
/// (derived in [`ChainWorker::new`]), so the engine's per-task context is
/// only used for scheduling and throughput accounting.
fn advance_all<W: FaultWorkload>(
    workers: Vec<ChainWorker<W>>,
    cfg: &CampaignConfig,
    samples: usize,
) -> (Vec<ChainWorker<W>>, RunMeta) {
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    engine.map(workers, |_ctx, mut w| {
        w.advance(cfg, samples);
        w
    })
}

/// Runs a fixed-budget BDLFI campaign: `cfg.chains` MCMC chains over fault
/// configurations, fanned out through the shared [`EvalEngine`], each
/// chain owning a clone of the golden network (sharing its prefix cache).
///
/// Generic over the [`FaultWorkload`]: pass a [`crate::FaultyModel`] for
/// the f32 workload or a [`crate::QuantFaultyModel`] for the int8 one.
///
/// # Panics
///
/// Panics if `cfg.chains == 0` or the chain schedule records no samples.
pub fn run_campaign<W: FaultWorkload>(fm: &W, cfg: &CampaignConfig) -> CampaignReport {
    match run_campaign_controlled(fm, cfg, &RunControl::default(), None) {
        Ok(rep) => rep,
        // bdlfi-lint: allow(BD010) -- `run_campaign` is the documented panicking convenience wrapper (see `# Panics`); fallible callers use `run_campaign_controlled`
        Err(e) => panic!("campaign failed: {e}"),
    }
}

/// [`run_campaign`] with cooperative cancellation and an optional
/// checkpoint journal (one entry per finished chain, holding the chain's
/// complete outcome). An interrupted campaign resumes bit-identically:
/// journaled chains are replayed, the rest run from scratch — every chain
/// is a pure function of `(cfg.seed, chain_index)`.
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_campaign`].
pub fn run_campaign_controlled<W: FaultWorkload>(
    fm: &W,
    cfg: &CampaignConfig,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<CampaignReport, EngineError> {
    assert!(cfg.chains > 0, "campaign needs at least one chain");
    assert!(cfg.chain.samples > 0, "campaign must record samples");
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let ckpt = ckpt.cloned().map(|mut spec| {
        if spec.fingerprint.is_empty() {
            spec.fingerprint = campaign_fingerprint(fm, cfg);
        }
        spec
    });
    let mut sink = CollectSink::new();
    let (hits0, fb0) = fm.delta_counters();
    let mut meta = engine.run_checkpointed(
        cfg.chains,
        || fm.clone(),
        |fm, ctx| {
            let mut worker = ChainWorker::new(fm, cfg, ctx.task_id);
            worker.advance(cfg, cfg.chain.samples);
            Ok(worker.snapshot())
        },
        &mut sink,
        ctl,
        ckpt.as_ref(),
    )?;
    // Chain clones share the workload's delta counters; the difference
    // across the run is this campaign's sparse-delta accounting.
    let (hits1, fb1) = fm.delta_counters();
    meta.delta_hits = hits1 - hits0;
    meta.delta_fallbacks = fb1 - fb0;
    Ok(assemble(fm, cfg, &sink.into_inner(), meta))
}

/// The fingerprint binding a campaign journal to its identity: driver,
/// config, and the golden error as a cheap model/dataset proxy.
fn campaign_fingerprint<W: FaultWorkload>(fm: &W, cfg: &CampaignConfig) -> String {
    fingerprint("campaign", &(cfg.fingerprint_form(), fm.golden_error()))
}

/// Runs one shard of a campaign split `count` ways: the chains in shard
/// `index`'s contiguous sub-range of `0..cfg.chains`, journaled with
/// global chain ids under the plan's per-shard fingerprint (derived from
/// the unsharded campaign fingerprint plus the shard count and index).
/// The journal *is* the shard's output; merge the completed shards with
/// [`crate::shard::merge_shards`] and assemble the report by re-running
/// [`run_campaign_controlled`] over the merged journal with
/// [`CheckpointSpec::finalizing`].
///
/// `ckpt.fingerprint` names the **unsharded** campaign fingerprint (empty
/// — the default — derives it from the workload and config, matching
/// [`run_campaign_controlled`]); the shard fingerprint is always derived,
/// never passed in.
///
/// # Errors
///
/// [`ShardError::Plan`] / [`ShardError::IndexOutOfRange`] for an unusable
/// split; [`ShardError::Engine`] wrapping [`EngineError::Interrupted`] on
/// a cooperative stop (resume by rerunning with `ckpt.resume` set), and
/// engine/journal failures otherwise.
///
/// # Panics
///
/// Same preconditions as [`run_campaign`].
pub fn run_campaign_shard<W: FaultWorkload>(
    fm: &W,
    cfg: &CampaignConfig,
    count: usize,
    index: usize,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> Result<RunMeta, ShardError> {
    assert!(cfg.chains > 0, "campaign needs at least one chain");
    assert!(cfg.chain.samples > 0, "campaign must record samples");
    let base = if ckpt.fingerprint.is_empty() {
        campaign_fingerprint(fm, cfg)
    } else {
        ckpt.fingerprint.clone()
    };
    let plan = ShardPlan::new(base, cfg.seed, cfg.chains, count)?;
    let info = plan.info(index)?;
    let spec = CheckpointSpec {
        fingerprint: plan.shard_fingerprint(index),
        ..ckpt.clone()
    };
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let (hits0, fb0) = fm.delta_counters();
    let mut meta = engine.run_shard_checkpointed(
        info,
        plan.range(index)?.len(),
        || fm.clone(),
        |fm, ctx| {
            let mut worker = ChainWorker::new(fm, cfg, ctx.task_id);
            worker.advance(cfg, cfg.chain.samples);
            Ok(worker.snapshot())
        },
        &mut NullSink,
        ctl,
        &spec,
    )?;
    let (hits1, fb1) = fm.delta_counters();
    meta.delta_hits = hits1 - hits0;
    meta.delta_fallbacks = fb1 - fb0;
    Ok(meta)
}

/// Runs an adaptive campaign: chains are extended in segments of
/// `cfg.chain.samples` until the completeness criteria certify or
/// `max_samples_per_chain` is reached — the paper's stopping rule ("when
/// further injections do not change the measured hypothesis") made
/// operational.
///
/// The returned report reflects all recorded samples; inspect
/// `report.completeness.certified` to see whether the budget sufficed.
///
/// # Panics
///
/// Panics if `cfg.chains == 0`, the segment size is zero, or
/// `max_samples_per_chain < cfg.chain.samples`.
pub fn run_campaign_adaptive<W: FaultWorkload>(
    fm: &W,
    cfg: &CampaignConfig,
    max_samples_per_chain: usize,
) -> CampaignReport {
    match run_campaign_adaptive_controlled(
        fm,
        cfg,
        max_samples_per_chain,
        &RunControl::default(),
        None,
    ) {
        Ok(rep) => rep,
        Err(e) => panic!("adaptive campaign failed: {e}"),
    }
}

/// [`run_campaign_adaptive`] with cooperative cancellation and an optional
/// checkpoint journal.
///
/// The adaptive driver journals at *segment* granularity: after each
/// segment, one open-ended journal entry records every chain's cumulative
/// [`ChainOutcome`] (statistics, Markov state, exact RNG positions). A
/// resumed run restores the chains from the last entry and continues
/// bit-identically; at most one in-flight segment of work is recomputed.
/// `ctl.stop_after` counts *segments* for this driver.
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop;
/// [`CheckpointError::AlreadyComplete`] (wrapped) when resuming a journal
/// whose chains already certified or exhausted the budget; plus journal
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_campaign_adaptive`].
pub fn run_campaign_adaptive_controlled<W: FaultWorkload>(
    fm: &W,
    cfg: &CampaignConfig,
    max_samples_per_chain: usize,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<CampaignReport, EngineError> {
    assert!(cfg.chains > 0, "campaign needs at least one chain");
    assert!(cfg.chain.samples > 0, "segment size must be positive");
    assert!(
        max_samples_per_chain >= cfg.chain.samples,
        "max_samples_per_chain must be at least one segment"
    );
    // Worst-case segment count (criteria never certify): the budget in
    // full segments. Used as the `tasks` denominator for interrupts.
    let max_segments = max_samples_per_chain.div_ceil(cfg.chain.samples);
    // Chain workers clone the workload and share its delta counters; the
    // difference across the whole adaptive run is stamped into the final
    // report's meta.
    let (delta_hits0, delta_fb0) = fm.delta_counters();

    // Segment journals are open-ended (`tasks: 0`): the number of entries
    // depends on when the criteria certify.
    let header = |spec: &CheckpointSpec| CheckpointHeader {
        fingerprint: if spec.fingerprint.is_empty() {
            fingerprint(
                "campaign_adaptive",
                &(*cfg, max_samples_per_chain, fm.golden_error()),
            )
        } else {
            spec.fingerprint.clone()
        },
        seed: cfg.seed,
        tasks: 0,
        shard: None,
    };

    let mut writer: Option<CheckpointWriter> = None;
    let mut workers: Vec<ChainWorker<W>>;
    let mut segments_done = 0usize;
    let mut recorded = 0usize;
    let mut run_meta: Option<RunMeta> = None;
    let mut resumed_from = None;
    let mut truncated_tail = false;

    match ckpt {
        Some(spec) if spec.resume => {
            let (w, replay) = CheckpointWriter::resume(&spec.path, &header(spec), spec.sync_every)?;
            let replayed = replay.values;
            truncated_tail = replay.truncated_tail;
            writer = Some(w);
            segments_done = replayed.len();
            resumed_from = (segments_done > 0).then_some(segments_done);
            // Replayed segments stream through the observer just like
            // live ones, so a reattached consumer sees the full history.
            if let Some(obs) = &ctl.observer {
                for (i, v) in replayed.iter().enumerate() {
                    obs.on_result(i, max_segments, v);
                }
            }
            // Re-derive the deterministic segment schedule the journaled
            // run followed, so `recorded` matches it exactly.
            for _ in 0..segments_done {
                recorded += cfg.chain.samples.min(max_samples_per_chain - recorded);
            }
            workers = match replayed.last() {
                Some(last) => {
                    let outcomes = Vec::<ChainOutcome>::from_json_value(last).map_err(|e| {
                        CheckpointError::Corrupt {
                            line: segments_done + 1,
                            detail: format!("segment outcome does not deserialize: {e}"),
                        }
                    })?;
                    if outcomes.len() != cfg.chains {
                        return Err(CheckpointError::Mismatch {
                            field: "chains",
                            expected: cfg.chains.to_string(),
                            found: outcomes.len().to_string(),
                        }
                        .into());
                    }
                    outcomes
                        .iter()
                        .map(|o| ChainWorker::restore(fm, o))
                        .collect()
                }
                None => (0..cfg.chains)
                    .map(|i| ChainWorker::new(fm, cfg, i))
                    .collect(),
            };
            // A journal whose chains already certified (or exhausted the
            // budget) has nothing to resume.
            if segments_done > 0 {
                let traces: Vec<Trace> = workers.iter().map(|w| w.trace.clone()).collect();
                if assess(&traces, &cfg.criteria).certified || recorded >= max_samples_per_chain {
                    return Err(CheckpointError::AlreadyComplete {
                        tasks: segments_done,
                    }
                    .into());
                }
            }
        }
        Some(spec) => {
            writer = Some(CheckpointWriter::create(
                &spec.path,
                &header(spec),
                spec.sync_every,
            )?);
            workers = (0..cfg.chains)
                .map(|i| ChainWorker::new(fm, cfg, i))
                .collect();
        }
        None => {
            workers = (0..cfg.chains)
                .map(|i| ChainWorker::new(fm, cfg, i))
                .collect();
        }
    }

    loop {
        if ctl
            .stop
            .as_ref()
            .is_some_and(|s| s.load(std::sync::atomic::Ordering::Relaxed))
            || ctl.stop_after.is_some_and(|n| segments_done >= n)
        {
            if let Some(w) = writer.as_mut() {
                w.sync()?;
            }
            return Err(EngineError::Interrupted {
                completed: segments_done,
                tasks: max_segments,
            });
        }

        let segment = cfg.chain.samples.min(max_samples_per_chain - recorded);
        let (advanced, meta) = advance_all(workers, cfg, segment);
        workers = advanced;
        run_meta = Some(match run_meta {
            Some(prev) => prev.merged_with(meta),
            None => meta,
        });
        recorded += segment;

        if writer.is_some() || ctl.observer.is_some() {
            let snapshots: Vec<ChainOutcome> = workers.iter().map(ChainWorker::snapshot).collect();
            if let Some(w) = writer.as_mut() {
                w.append(segments_done, &snapshots)?;
                w.sync()?;
            }
            if let Some(obs) = &ctl.observer {
                obs.on_result(segments_done, max_segments, &snapshots.to_json_value());
            }
        }
        segments_done += 1;

        let traces: Vec<Trace> = workers.iter().map(|w| w.trace.clone()).collect();
        let verdict = assess(&traces, &cfg.criteria);
        if verdict.certified || recorded >= max_samples_per_chain {
            let mut meta = run_meta.unwrap_or_default();
            meta.resumed_from = resumed_from;
            meta.truncated_tail = truncated_tail;
            let (delta_hits1, delta_fb1) = fm.delta_counters();
            meta.delta_hits = delta_hits1 - delta_hits0;
            meta.delta_fallbacks = delta_fb1 - delta_fb0;
            let outcomes: Vec<ChainOutcome> = workers.iter().map(ChainWorker::snapshot).collect();
            return Ok(assemble(fm, cfg, &outcomes, meta));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completeness::CompletenessCriteria;
    use crate::FaultyModel;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
    use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};
    use std::sync::Arc;

    fn trained_faulty_model(p: f64) -> FaultyModel {
        let mut rng = StdRng::seed_from_u64(7);
        let data = gaussian_blobs(300, 3, 0.6, &mut rng);
        let (train, test) = data.split(0.7, &mut rng);
        let mut model = mlp(2, &[16], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 25,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
        FaultyModel::new(
            model,
            Arc::new(test),
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::new(p)),
        )
    }

    fn quick_cfg(kernel: KernelChoice) -> CampaignConfig {
        CampaignConfig {
            chains: 2,
            chain: ChainConfig {
                burn_in: 5,
                samples: 60,
                thin: 1,
            },
            kernel,
            seed: 1,
            criteria: CompletenessCriteria {
                max_rhat: 1.2,
                min_ess: 20.0,
                max_mcse: 0.1,
            },
            workers: 0,
        }
    }

    #[test]
    fn prior_campaign_reports_sane_statistics() {
        let fm = trained_faulty_model(1e-3);
        let rep = run_campaign(&fm, &quick_cfg(KernelChoice::Prior));
        assert_eq!(rep.traces.len(), 2);
        assert_eq!(rep.traces[0].len(), 60);
        // Prior kernel always accepts.
        assert!(rep.acceptance_rates.iter().all(|&a| a == 1.0));
        // Faulty error distribution sits at or above the golden error.
        assert!(rep.mean_error >= rep.golden_error - 1e-9);
        assert!((0.0..=1.0).contains(&rep.mean_error));
        assert!(rep.mean_flips > 0.0);
        assert!(rep.importance_ess.is_none());
    }

    #[test]
    fn error_grows_with_flip_probability() {
        let low = run_campaign(&trained_faulty_model(1e-5), &quick_cfg(KernelChoice::Prior));
        let high = run_campaign(&trained_faulty_model(1e-2), &quick_cfg(KernelChoice::Prior));
        assert!(
            high.mean_error > low.mean_error + 0.02,
            "low {} high {}",
            low.mean_error,
            high.mean_error
        );
    }

    #[test]
    fn toggle_kernel_matches_prior_kernel_estimate() {
        let fm = trained_faulty_model(3e-3);
        let mut cfg = quick_cfg(KernelChoice::Prior);
        cfg.chain.samples = 150;
        let prior = run_campaign(&fm, &cfg);
        let mut cfg = quick_cfg(KernelChoice::Mixture {
            refresh_weight: 0.3,
        });
        cfg.chain.samples = 150;
        cfg.chain.burn_in = 50;
        let mixed = run_campaign(&fm, &cfg);
        assert!(
            (prior.mean_error - mixed.mean_error).abs() < 0.08,
            "prior {} vs mixture {}",
            prior.mean_error,
            mixed.mean_error
        );
    }

    #[test]
    fn tempered_campaign_reweights_back_to_prior() {
        let fm = trained_faulty_model(3e-3);
        let mut cfg = quick_cfg(KernelChoice::Prior);
        cfg.chain.samples = 200;
        let reference = run_campaign(&fm, &cfg);
        let mut cfg = quick_cfg(KernelChoice::Tempered { beta: 3.0 });
        cfg.chain.samples = 200;
        cfg.chain.burn_in = 50;
        let tempered = run_campaign(&fm, &cfg);
        let iess = tempered.importance_ess.expect("tempered reports IS ESS");
        assert!(iess > 10.0);
        // Tilted raw mean is biased upward; the reweighted estimate is not.
        assert!(tempered.summary.mean >= tempered.mean_error - 1e-9);
        assert!(
            (tempered.mean_error - reference.mean_error).abs() < 0.1,
            "tempered {} vs reference {}",
            tempered.mean_error,
            reference.mean_error
        );
    }

    #[test]
    fn tilted_prior_matches_plain_prior_estimate_with_more_hits() {
        // Rare-error regime: E[flips] ~ 0.04 under the prior; tilting by
        // 10x brings it to O(1), the regime importance tilting is for.
        let fm = trained_faulty_model(1e-5);
        let mut cfg = quick_cfg(KernelChoice::Prior);
        cfg.chain.samples = 500;
        cfg.chain.burn_in = 0;
        let plain = run_campaign(&fm, &cfg);
        let mut cfg = quick_cfg(KernelChoice::TiltedPrior { factor: 10.0 });
        cfg.chain.samples = 500;
        cfg.chain.burn_in = 0;
        let tilted = run_campaign(&fm, &cfg);

        // iid from the tilted prior: every proposal accepted.
        assert!(tilted.acceptance_rates.iter().all(|&a| a == 1.0));
        // More fault mass sampled...
        assert!(tilted.mean_flips > plain.mean_flips * 3.0);
        // ...yet the re-weighted estimate agrees with the plain one.
        let iess = tilted.importance_ess.expect("tilted reports IS ESS");
        assert!(iess > 50.0, "importance ESS {iess}");
        assert!(
            (tilted.mean_error - plain.mean_error).abs() < 0.01,
            "tilted {} vs plain {}",
            tilted.mean_error,
            plain.mean_error
        );
        // The raw (unweighted) tilted mean is biased upward (more faults
        // sampled than the prior would produce).
        assert!(tilted.summary.mean >= tilted.mean_error);
    }

    #[test]
    fn gibbs_kernel_always_accepts_and_agrees_with_prior() {
        let fm = trained_faulty_model(3e-3);
        let mut cfg = quick_cfg(KernelChoice::Gibbs { p: 3e-3 });
        cfg.chain.samples = 150;
        cfg.chain.burn_in = 100;
        let gibbs = run_campaign(&fm, &cfg);
        assert!(
            gibbs.acceptance_rates.iter().all(|&a| a > 0.999),
            "{:?}",
            gibbs.acceptance_rates
        );
        let mut cfg = quick_cfg(KernelChoice::Prior);
        cfg.chain.samples = 150;
        let prior = run_campaign(&fm, &cfg);
        // Gibbs moves one bit per step, so consecutive samples are highly
        // correlated; the estimates still agree loosely.
        assert!(
            (gibbs.mean_error - prior.mean_error).abs() < 0.12,
            "gibbs {} vs prior {}",
            gibbs.mean_error,
            prior.mean_error
        );
    }

    #[test]
    fn campaign_is_reproducible_under_seed() {
        let fm = trained_faulty_model(1e-3);
        let a = run_campaign(&fm, &quick_cfg(KernelChoice::Prior));
        let b = run_campaign(&fm, &quick_cfg(KernelChoice::Prior));
        assert_eq!(a.traces[0].samples(), b.traces[0].samples());
        assert_eq!(a.mean_error, b.mean_error);
    }

    #[test]
    fn campaign_is_worker_count_invariant() {
        let fm = trained_faulty_model(1e-3);
        let mut cfg = quick_cfg(KernelChoice::Prior);
        cfg.workers = 1;
        let serial = run_campaign(&fm, &cfg);
        cfg.workers = 2;
        let parallel = run_campaign(&fm, &cfg);
        for (a, b) in serial.traces.iter().zip(&parallel.traces) {
            assert_eq!(a.samples(), b.samples());
        }
        assert_eq!(serial.mean_error, parallel.mean_error);
        assert_eq!(parallel.run_meta.tasks, cfg.chains);
        assert_eq!(parallel.run_meta.workers, 2);
    }

    #[test]
    fn adaptive_campaign_stops_at_certification() {
        let fm = trained_faulty_model(1e-3);
        let mut cfg = quick_cfg(KernelChoice::Prior);
        cfg.chain.samples = 50; // segment size
        cfg.criteria = CompletenessCriteria {
            max_rhat: 1.1,
            min_ess: 60.0,
            max_mcse: 0.05,
        };
        let rep = run_campaign_adaptive(&fm, &cfg, 1000);
        assert!(rep.completeness.certified, "{:?}", rep.completeness);
        // Stopped in segments of 50.
        assert_eq!(rep.traces[0].len() % 50, 0);
        assert!(rep.traces[0].len() <= 1000);
    }

    #[test]
    fn adaptive_campaign_respects_budget_cap() {
        let fm = trained_faulty_model(1e-2);
        let mut cfg = quick_cfg(KernelChoice::Prior);
        cfg.chain.samples = 20;
        // Impossible criteria: must run to the cap and stop.
        cfg.criteria = CompletenessCriteria {
            max_rhat: 1.0001,
            min_ess: 1e9,
            max_mcse: 1e-9,
        };
        let rep = run_campaign_adaptive(&fm, &cfg, 60);
        assert!(!rep.completeness.certified);
        assert_eq!(rep.traces[0].len(), 60);
    }

    #[test]
    fn adaptive_matches_fixed_budget_for_one_segment() {
        let fm = trained_faulty_model(1e-3);
        let mut cfg = quick_cfg(KernelChoice::Prior);
        cfg.chain.samples = 40;
        // Trivial criteria certify after the first segment.
        cfg.criteria = CompletenessCriteria {
            max_rhat: 100.0,
            min_ess: 1.0,
            max_mcse: 10.0,
        };
        let adaptive = run_campaign_adaptive(&fm, &cfg, 400);
        let fixed = run_campaign(&fm, &cfg);
        assert_eq!(adaptive.traces[0].samples(), fixed.traces[0].samples());
    }
}
