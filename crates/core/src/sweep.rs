//! Flip-probability sweeps — the engine behind the paper's Fig. 2 (MLP)
//! and Fig. 4 (ResNet-18): classification error as a function of the
//! per-bit flip probability `p`, with the two-regime knee analysis.

use crate::campaign::{run_campaign, CampaignConfig};
use crate::checkpoint::fingerprint;
use crate::engine::{
    CheckpointSpec, CollectSink, EngineError, EvalEngine, NullSink, RunControl, RunMeta,
};
use crate::faulty_model::FaultyModel;
use crate::report::CampaignReport;
use crate::shard::{ShardError, ShardPlan};
use crate::stats::{fit_knee, KneeFit};
use crate::workload::QuantFaultyModel;
use bdlfi_data::Dataset;
use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_nn::Sequential;
use bdlfi_quant::QuantModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One row of a sweep: the flip probability and the campaign outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Per-bit flip probability.
    pub p: f64,
    /// Full campaign report at this `p`.
    pub report: CampaignReport,
}

/// The outcome of a flip-probability sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// One point per swept probability, in ascending `p`.
    pub points: Vec<SweepPoint>,
    /// Golden-run classification error (the horizontal reference line).
    pub golden_error: f64,
    /// Engine execution metadata for the sweep-level fan-out.
    pub run_meta: RunMeta,
}

impl SweepResult {
    /// `(log10 p, mean error)` pairs for regime fitting.
    pub fn log_curve(&self) -> (Vec<f64>, Vec<f64>) {
        let xs = self.points.iter().map(|pt| pt.p.log10()).collect();
        let ys = self.points.iter().map(|pt| pt.report.mean_error).collect();
        (xs, ys)
    }

    /// Two-segment fit over `(log10 p, error)` locating the knee between
    /// the paper's two regimes. `None` if fewer than 4 points were swept.
    pub fn knee(&self) -> Option<KneeAnalysis> {
        if self.points.len() < 4 {
            return None;
        }
        let (xs, ys) = self.log_curve();
        let fit = fit_knee(&xs, &ys);
        Some(KneeAnalysis {
            knee_p: 10f64.powf(fit.knee_x),
            fit,
        })
    }
}

/// The two-regime analysis of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KneeAnalysis {
    /// The flip probability at the knee — the paper's "optimal
    /// performance-reliability trade-off" operating point.
    pub knee_p: f64,
    /// The underlying two-segment fit in `(log10 p, error)` space.
    pub fit: KneeFit,
}

/// Log-spaced flip probabilities from `lo` to `hi` inclusive — the x-axis
/// grid of Figs. 2 and 4 (`1e-5` … `1e-1`).
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `points >= 2`.
pub fn log_spaced_probabilities(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi");
    assert!(points >= 2, "need at least 2 points");
    let (llo, lhi) = (lo.log10(), hi.log10());
    (0..points)
        .map(|i| 10f64.powf(llo + (lhi - llo) * i as f64 / (points - 1) as f64))
        .collect()
}

/// Runs one BDLFI campaign per probability in `ps`, injecting into the
/// sites selected by `spec` of the given golden model.
///
/// # Panics
///
/// Panics if `ps` is empty or contains non-probabilities.
pub fn run_sweep(
    model: &Sequential,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    ps: &[f64],
    cfg: &CampaignConfig,
) -> SweepResult {
    match run_sweep_controlled(model, eval, spec, ps, cfg, &RunControl::default(), None) {
        Ok(sweep) => sweep,
        Err(e) => panic!("sweep failed: {e}"),
    }
}

/// [`run_sweep`] with cooperative cancellation and an optional checkpoint
/// journal (one entry per completed sweep point, in the order of `ps`).
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop (completed points
/// are journaled; resume with identical `ps`/`cfg` to finish), plus
/// journal/sink failures.
///
/// # Panics
///
/// Same preconditions as [`run_sweep`].
pub fn run_sweep_controlled(
    model: &Sequential,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    ps: &[f64],
    cfg: &CampaignConfig,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<SweepResult, EngineError> {
    assert!(!ps.is_empty(), "sweep needs at least one probability");
    assert!(
        ps.iter().all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0, 1]"
    );
    // Fan the per-p campaigns out through the engine; each campaign is a
    // deterministic function of (cfg.seed, p), so sweep results do not
    // depend on scheduling. Task `i` evaluates `ps[i]` (journal order is
    // the caller's order; points are sorted only in the final result).
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let ckpt = ckpt.cloned().map(|mut s| {
        if s.fingerprint.is_empty() {
            s.fingerprint = fingerprint("sweep", &(cfg.fingerprint_form(), ps.to_vec()));
        }
        s
    });
    let mut sink = CollectSink::new();
    let run_meta = engine.run_checkpointed(
        ps.len(),
        || (),
        |(), ctx| {
            let p = ps[ctx.task_id];
            let fm = FaultyModel::new(
                model.clone(),
                Arc::clone(eval),
                spec,
                Arc::new(BernoulliBitFlip::new(p)),
            );
            Ok(SweepPoint {
                p,
                report: run_campaign(&fm, cfg).journal_form(),
            })
        },
        &mut sink,
        ctl,
        ckpt.as_ref(),
    )?;
    let mut points = sink.into_inner();
    points.sort_by(|a, b| a.p.total_cmp(&b.p));
    let golden_error = points[0].report.golden_error;
    // Roll the per-point campaigns' sparse-delta accounting up into the
    // sweep-level meta.
    let mut run_meta = run_meta;
    run_meta.delta_hits = points.iter().map(|s| s.report.run_meta.delta_hits).sum();
    run_meta.delta_fallbacks = points
        .iter()
        .map(|s| s.report.run_meta.delta_fallbacks)
        .sum();
    Ok(SweepResult {
        points,
        golden_error,
        run_meta,
    })
}

/// [`run_sweep`] over the *quantized* workload: one BDLFI campaign per
/// probability in `ps`, injecting representation-aware bit flips into the
/// int8 model's sites selected by `spec`.
///
/// # Panics
///
/// Panics if `ps` is empty or contains non-probabilities.
pub fn run_sweep_quant(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    ps: &[f64],
    cfg: &CampaignConfig,
) -> SweepResult {
    match run_sweep_quant_controlled(qm, eval, spec, ps, cfg, &RunControl::default(), None) {
        Ok(sweep) => sweep,
        Err(e) => panic!("quant sweep failed: {e}"),
    }
}

/// [`run_sweep_quant`] with cooperative cancellation and an optional
/// checkpoint journal — the quantized twin of [`run_sweep_controlled`],
/// with its own fingerprint namespace so f32 and int8 journals never
/// cross-resume.
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_sweep_quant`].
pub fn run_sweep_quant_controlled(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    ps: &[f64],
    cfg: &CampaignConfig,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<SweepResult, EngineError> {
    assert!(!ps.is_empty(), "sweep needs at least one probability");
    assert!(
        ps.iter().all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0, 1]"
    );
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let ckpt = ckpt.cloned().map(|mut s| {
        if s.fingerprint.is_empty() {
            s.fingerprint = fingerprint("sweep_quant", &(cfg.fingerprint_form(), ps.to_vec()));
        }
        s
    });
    let mut sink = CollectSink::new();
    let run_meta = engine.run_checkpointed(
        ps.len(),
        || (),
        |(), ctx| {
            let p = ps[ctx.task_id];
            let qfm = QuantFaultyModel::new(
                qm.clone(),
                Arc::clone(eval),
                spec,
                Arc::new(BernoulliBitFlip::new(p)),
            );
            Ok(SweepPoint {
                p,
                report: run_campaign(&qfm, cfg).journal_form(),
            })
        },
        &mut sink,
        ctl,
        ckpt.as_ref(),
    )?;
    let mut points = sink.into_inner();
    points.sort_by(|a, b| a.p.total_cmp(&b.p));
    let golden_error = points[0].report.golden_error;
    // Roll the per-point campaigns' sparse-delta accounting up into the
    // sweep-level meta.
    let mut run_meta = run_meta;
    run_meta.delta_hits = points.iter().map(|s| s.report.run_meta.delta_hits).sum();
    run_meta.delta_fallbacks = points
        .iter()
        .map(|s| s.report.run_meta.delta_fallbacks)
        .sum();
    Ok(SweepResult {
        points,
        golden_error,
        run_meta,
    })
}

/// Runs one shard of a flip-probability sweep split `count` ways: the
/// points in shard `index`'s contiguous sub-range of `0..ps.len()` (in
/// the caller's `ps` order), journaled with global point ids under the
/// plan's per-shard fingerprint. Merge the completed shards with
/// [`crate::shard::merge_shards`] and assemble the [`SweepResult`] via
/// [`run_sweep_controlled`] with [`CheckpointSpec::finalizing`].
///
/// `ckpt.fingerprint` names the **unsharded** sweep fingerprint (empty
/// derives it, matching [`run_sweep_controlled`]).
///
/// # Errors
///
/// [`ShardError::Plan`] / [`ShardError::IndexOutOfRange`] for an unusable
/// split; [`ShardError::Engine`] wrapping [`EngineError::Interrupted`] on
/// a cooperative stop; engine/journal failures otherwise.
///
/// # Panics
///
/// Same preconditions as [`run_sweep`].
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_shard(
    model: &Sequential,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    ps: &[f64],
    cfg: &CampaignConfig,
    count: usize,
    index: usize,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> Result<RunMeta, ShardError> {
    assert!(!ps.is_empty(), "sweep needs at least one probability");
    assert!(
        ps.iter().all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0, 1]"
    );
    let base = if ckpt.fingerprint.is_empty() {
        fingerprint("sweep", &(cfg.fingerprint_form(), ps.to_vec()))
    } else {
        ckpt.fingerprint.clone()
    };
    let plan = ShardPlan::new(base, cfg.seed, ps.len(), count)?;
    let shard_spec = CheckpointSpec {
        fingerprint: plan.shard_fingerprint(index),
        ..ckpt.clone()
    };
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let meta = engine.run_shard_checkpointed(
        plan.info(index)?,
        plan.range(index)?.len(),
        || (),
        |(), ctx| {
            let p = ps[ctx.task_id];
            let fm = FaultyModel::new(
                model.clone(),
                Arc::clone(eval),
                spec,
                Arc::new(BernoulliBitFlip::new(p)),
            );
            Ok(SweepPoint {
                p,
                report: run_campaign(&fm, cfg).journal_form(),
            })
        },
        &mut NullSink,
        ctl,
        &shard_spec,
    )?;
    Ok(meta)
}

/// The quantized twin of [`run_sweep_shard`]: one shard of an int8 sweep,
/// journaled under the plan derived from the `sweep_quant` fingerprint
/// namespace so f32 and int8 shards never cross-merge.
///
/// # Errors
///
/// As [`run_sweep_shard`].
///
/// # Panics
///
/// Same preconditions as [`run_sweep_quant`].
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_quant_shard(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    ps: &[f64],
    cfg: &CampaignConfig,
    count: usize,
    index: usize,
    ctl: &RunControl,
    ckpt: &CheckpointSpec,
) -> Result<RunMeta, ShardError> {
    assert!(!ps.is_empty(), "sweep needs at least one probability");
    assert!(
        ps.iter().all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0, 1]"
    );
    let base = if ckpt.fingerprint.is_empty() {
        fingerprint("sweep_quant", &(cfg.fingerprint_form(), ps.to_vec()))
    } else {
        ckpt.fingerprint.clone()
    };
    let plan = ShardPlan::new(base, cfg.seed, ps.len(), count)?;
    let shard_spec = CheckpointSpec {
        fingerprint: plan.shard_fingerprint(index),
        ..ckpt.clone()
    };
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let meta = engine.run_shard_checkpointed(
        plan.info(index)?,
        plan.range(index)?.len(),
        || (),
        |(), ctx| {
            let p = ps[ctx.task_id];
            let qfm = QuantFaultyModel::new(
                qm.clone(),
                Arc::clone(eval),
                spec,
                Arc::new(BernoulliBitFlip::new(p)),
            );
            Ok(SweepPoint {
                p,
                report: run_campaign(&qfm, cfg).journal_form(),
            })
        },
        &mut NullSink,
        ctl,
        &shard_spec,
    )?;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::KernelChoice;
    use crate::completeness::CompletenessCriteria;
    use bdlfi_bayes::ChainConfig;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            chains: 2,
            chain: ChainConfig {
                burn_in: 0,
                samples: 40,
                thin: 1,
            },
            kernel: KernelChoice::Prior,
            seed: 3,
            criteria: CompletenessCriteria {
                max_rhat: 2.0,
                min_ess: 10.0,
                max_mcse: 0.2,
            },
            workers: 0,
        }
    }

    fn trained() -> (Sequential, Arc<Dataset>) {
        let mut rng = StdRng::seed_from_u64(11);
        let data = gaussian_blobs(240, 3, 0.6, &mut rng);
        let (train, test) = data.split(0.7, &mut rng);
        let mut model = mlp(2, &[16], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 20,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
        (model, Arc::new(test))
    }

    #[test]
    fn log_grid_is_log_spaced() {
        let g = log_spaced_probabilities(1e-5, 1e-1, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1e-5).abs() < 1e-12);
        assert!((g[4] - 1e-1).abs() < 1e-9);
        // Consecutive ratios equal.
        let r0 = g[1] / g[0];
        let r1 = g[2] / g[1];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn sweep_error_is_monotone_ish_and_has_two_regimes() {
        let (model, eval) = trained();
        let ps = log_spaced_probabilities(1e-6, 3e-2, 6);
        let sweep = run_sweep(&model, &eval, &SiteSpec::AllParams, &ps, &quick_cfg());

        assert_eq!(sweep.points.len(), 6);
        let errs: Vec<f64> = sweep.points.iter().map(|p| p.report.mean_error).collect();
        // Low-p end hugs the golden run; high-p end exceeds it clearly.
        assert!(
            (errs[0] - sweep.golden_error).abs() < 0.05,
            "low-p error {} vs golden {}",
            errs[0],
            sweep.golden_error
        );
        assert!(
            errs[5] > sweep.golden_error + 0.05,
            "high-p error {}",
            errs[5]
        );

        // Knee analysis runs and lands inside the sweep range.
        let knee = sweep.knee().expect("enough points for knee");
        assert!(knee.knee_p >= 1e-6 && knee.knee_p <= 3e-2);
        assert!(knee.fit.right_slope > knee.fit.left_slope);
    }

    #[test]
    fn sweep_points_sorted_by_p() {
        let (model, eval) = trained();
        let sweep = run_sweep(
            &model,
            &eval,
            &SiteSpec::AllParams,
            &[1e-2, 1e-5, 1e-3],
            &quick_cfg(),
        );
        let ps: Vec<f64> = sweep.points.iter().map(|p| p.p).collect();
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn quant_sweep_error_grows_with_p() {
        use bdlfi_quant::{quantize_model, CalibConfig};
        let (model, eval) = trained();
        let qm = quantize_model(&model, eval.inputs(), &CalibConfig::default());
        let sweep = run_sweep_quant(
            &qm,
            &eval,
            &SiteSpec::AllParams,
            &[1e-5, 3e-2],
            &quick_cfg(),
        );
        assert_eq!(sweep.points.len(), 2);
        assert!(
            (sweep.points[0].report.mean_error - sweep.golden_error).abs() < 0.05,
            "low-p error {} vs golden {}",
            sweep.points[0].report.mean_error,
            sweep.golden_error
        );
        assert!(
            sweep.points[1].report.mean_error > sweep.golden_error + 0.03,
            "high-p error {}",
            sweep.points[1].report.mean_error
        );
    }

    #[test]
    #[should_panic(expected = "at least one probability")]
    fn empty_sweep_rejected() {
        let (model, eval) = trained();
        run_sweep(&model, &eval, &SiteSpec::AllParams, &[], &quick_cfg());
    }
}
