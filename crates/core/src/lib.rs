//! # bdlfi
//!
//! **Bayesian Deep Learning based Fault Injection (BDLFI)** — the primary
//! contribution of "Towards a Bayesian Approach for Assessing Fault
//! Tolerance of Deep Neural Networks" (Banerjee et al., DSN 2019),
//! reproduced in Rust.
//!
//! BDLFI models transient hardware faults as Bernoulli random variables
//! attached to every bit of every stored value of a neural network
//! (per-bit AVF fault model), propagates the resulting uncertainty through
//! the network, and uses Markov Chain Monte Carlo to infer the
//! distribution of classification error at the output. MCMC mixing
//! diagnostics (split-R̂, ESS, MCSE) quantify the *completeness* of the
//! campaign — the point where further injections no longer change the
//! measured hypothesis.
//!
//! # Architecture
//!
//! * [`FaultyModel`] — a golden network bound to an evaluation set and a
//!   fault model over resolved injection sites (paper Fig. 1 ① + ②);
//! * [`FaultWorkload`] / [`QuantFaultyModel`] — the workload abstraction
//!   the campaign drivers run over, and its int8 quantized-deployment
//!   implementation (built on `bdlfi-quant`), with representation-aware
//!   bit flips in int8 weights, i32 biases and f32 scales;
//! * [`engine`] — the shared fault-evaluation executor: one bounded
//!   worker pool, SplitMix64 per-task seed streams and ordered streaming
//!   sinks that every campaign driver (and the baseline FI drivers) runs
//!   through;
//! * [`proposals`] — MCMC moves over joint fault configurations (prior
//!   refreshes, single-/multi-bit toggles);
//! * [`run_campaign`] — multi-chain inference with completeness
//!   certification (Fig. 1 ③), including the tempered rare-event kernel
//!   with importance re-weighting;
//! * [`run_sweep`] — flip-probability sweeps with two-regime knee
//!   analysis (Figs. 2 and 4);
//! * [`run_layerwise`] — per-layer campaigns and the depth-correlation
//!   test (Fig. 3);
//! * [`shard`] — distributed sharded campaigns: a deterministic shard
//!   planner over the ordered task space, per-shard fingerprinted
//!   journals written by the normal engine path, and a strict merge
//!   verifier that reassembles them byte-for-byte into the
//!   single-process journal;
//! * [`boundary_map`] — per-input-point error-probability maps over a 2-D
//!   feature space (Fig. 1 ③'s boundary finding);
//! * [`attribute_faults`] — error-conditioned posterior over fault
//!   locations (which sites/bits to harden);
//! * [`plan_protection`] — margin-threshold protection domains (the
//!   paper's "regions of the feature space that need more protection").
//!
//! # Examples
//!
//! ```
//! use bdlfi::{CampaignConfig, FaultyModel, run_campaign};
//! use bdlfi_faults::{BernoulliBitFlip, SiteSpec};
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data = Arc::new(bdlfi_data::gaussian_blobs(60, 2, 0.5, &mut rng));
//! let model = bdlfi_nn::mlp(2, &[8], 2, &mut rng);
//!
//! let fm = FaultyModel::new(model, data, &SiteSpec::AllParams,
//!                           Arc::new(BernoulliBitFlip::new(1e-3)));
//! let mut cfg = CampaignConfig::default();
//! cfg.chains = 2;
//! cfg.chain.samples = 20;
//! let report = run_campaign(&fm, &cfg);
//! assert!(report.mean_error >= 0.0);
//! ```

#![warn(missing_docs)]

mod attribution;
mod boundary;
mod campaign;
pub mod checkpoint;
mod completeness;
mod delta;
pub mod engine;
mod faulty_model;
pub mod formal;
pub mod proposals;
mod report;
pub mod shard;
pub mod stats;
mod sweep;

mod layerwise;
mod protection;
mod workload;

pub use attribution::{
    attribute_faults, attribute_faults_controlled, AttributionReport, SiteAttribution,
};
pub use boundary::{boundary_map, boundary_map_controlled, BoundaryConfig, BoundaryMap};
pub use campaign::{
    run_campaign, run_campaign_adaptive, run_campaign_adaptive_controlled, run_campaign_controlled,
    run_campaign_shard, CampaignConfig, KernelChoice,
};
pub use checkpoint::{
    fingerprint, read_journal, CheckpointError, CheckpointHeader, CheckpointWriter,
    JournalContents, Replay,
};
pub use completeness::{
    assess, assess_slices, samples_to_certify, CompletenessCriteria, CompletenessReport,
};
pub use delta::{forward_delta_f32, forward_delta_quant, DeltaStats, DENSIFY_THRESHOLD};
pub use engine::{
    CheckpointSpec, CollectSink, EngineError, EvalEngine, EvalSink, RunControl, RunMeta,
    RunObserver, TaskCtx,
};
pub use faulty_model::FaultyModel;
pub use layerwise::{
    run_layerwise, run_layerwise_controlled, run_layerwise_quant, run_layerwise_quant_controlled,
    run_layerwise_quant_shard, run_layerwise_shard, LayerBudget, LayerResult, LayerwiseResult,
};
pub use protection::{
    plan_protection, run_protection_study, run_protection_study_controlled, ProtectionPlan,
    ProtectionStudy,
};
pub use report::CampaignReport;
pub use shard::{merge_shards, MergeSummary, ShardError, ShardPlan};
pub use sweep::{
    log_spaced_probabilities, run_sweep, run_sweep_controlled, run_sweep_quant,
    run_sweep_quant_controlled, run_sweep_quant_shard, run_sweep_shard, KneeAnalysis, SweepPoint,
    SweepResult,
};
pub use workload::{FaultWorkload, QuantFaultyModel};
