//! The fault-injected network: a golden model plus a joint fault
//! configuration (paper Fig. 1 ① + ②), evaluated on a fixed dataset.
//!
//! `FaultyModel` is the bridge between the probabilistic machinery and the
//! network substrate: it turns a [`FaultConfig`] (the MCMC state) into the
//! scalar statistics BDLFI infers distributions over — classification
//! error against labels (Figs. 2–4) and prediction mismatch against the
//! golden run (the Fig. 1 ③ boundary map).

use crate::delta::{forward_delta_f32, DeltaStats, DENSIFY_THRESHOLD};
use bdlfi_data::Dataset;
use bdlfi_faults::{resolve_sites, FaultConfig, FaultModel, ResolvedSites, SiteSpec};
use bdlfi_nn::{predict_batched, PrefixCache, Sequential};
use bdlfi_tensor::Tensor;
use rand::Rng;
use std::sync::Arc;

/// A golden network bound to an evaluation set and a fault model over a
/// resolved set of injection sites.
///
/// Cloning a `FaultyModel` clones the network (each MCMC chain owns one),
/// while the evaluation data, fault model and golden prefix-activation
/// cache are shared.
#[derive(Clone)]
pub struct FaultyModel {
    model: Sequential,
    eval: Arc<Dataset>,
    sites: ResolvedSites,
    fault_model: Arc<dyn FaultModel>,
    batch_size: usize,
    golden_preds: Arc<Vec<usize>>,
    golden_error: f64,
    /// Golden activations at every top-level layer boundary: evaluating a
    /// parameter-fault configuration re-runs only the suffix from its first
    /// dirty layer. `None` only when transient (activation/input) sites are
    /// configured, which force full re-runs anyway.
    prefix: Option<Arc<PrefixCache>>,
    /// Sparse-delta hit/fallback counters, shared across clones so a
    /// campaign's workers aggregate into one pair drivers can stamp into
    /// [`crate::engine::RunMeta`].
    delta_stats: Arc<DeltaStats>,
    /// Gate for the sparse-delta path; `true` by default. Disable to force
    /// every evaluation through the incremental dense path (equivalence
    /// tests diff the two).
    delta_enabled: bool,
}

impl std::fmt::Debug for FaultyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyModel")
            .field("param_sites", &self.sites.params.len())
            .field("activation_sites", &self.sites.activations.len())
            .field("eval_examples", &self.eval.len())
            .field("golden_error", &self.golden_error)
            .finish()
    }
}

impl FaultyModel {
    /// Binds a trained model to an evaluation set and fault model over the
    /// sites selected by `spec`.
    ///
    /// The golden predictions and golden ("fault-free") classification
    /// error are computed once here.
    ///
    /// # Panics
    ///
    /// Panics if the spec resolves to nothing or the dataset is empty.
    pub fn new(
        mut model: Sequential,
        eval: Arc<Dataset>,
        spec: &SiteSpec,
        fault_model: Arc<dyn FaultModel>,
    ) -> Self {
        assert!(!eval.is_empty(), "evaluation set must not be empty");
        let sites = resolve_sites(&model, spec);
        assert!(
            !sites.is_empty(),
            "site spec resolved to no injection sites"
        );

        let batch_size = 64;
        // Transient sites resample faults inside every forward pass, so no
        // prefix of the network is reusable; only build the cache when all
        // sites are (persistent) parameter faults.
        let transient = !sites.activations.is_empty() || sites.input;
        let (golden_logits, prefix) = if transient {
            let logits = predict_batched(&mut model, eval.inputs(), batch_size, &mut |_, _| {});
            (logits, None)
        } else {
            let cache = PrefixCache::build(&mut model, eval.inputs(), batch_size);
            (cache.golden_logits(), Some(Arc::new(cache)))
        };
        let golden_preds = Arc::new(golden_logits.argmax_rows());
        let golden_error = bdlfi_nn::metrics::classification_error(&golden_logits, eval.labels());

        FaultyModel {
            model,
            eval,
            sites,
            fault_model,
            batch_size,
            golden_preds,
            golden_error,
            prefix,
            delta_stats: Arc::new(DeltaStats::default()),
            delta_enabled: true,
        }
    }

    /// Enables or disables the sparse-delta path (on by default). With it
    /// off, every evaluation takes the incremental dense path; results are
    /// bit-identical either way.
    pub fn set_delta_enabled(&mut self, enabled: bool) {
        self.delta_enabled = enabled;
    }

    /// `(hits, fallbacks)` of the sparse-delta path, aggregated across all
    /// clones of this model (chains share the counters).
    pub fn delta_counters(&self) -> (u64, u64) {
        self.delta_stats.counters()
    }

    /// The resolved parameter injection sites.
    pub fn sites(&self) -> &ResolvedSites {
        &self.sites
    }

    /// The shared fault model.
    pub fn fault_model(&self) -> &Arc<dyn FaultModel> {
        &self.fault_model
    }

    /// The evaluation dataset.
    pub fn eval(&self) -> &Dataset {
        &self.eval
    }

    /// Classification error of the fault-free network on the evaluation
    /// set — the paper's "golden run" line in Figs. 2 and 4.
    pub fn golden_error(&self) -> f64 {
        self.golden_error
    }

    /// The golden network's predictions on the evaluation set.
    pub fn golden_preds(&self) -> &[usize] {
        &self.golden_preds
    }

    /// Samples a fault configuration from the prior over the parameter
    /// sites.
    pub fn sample_config(&self, rng: &mut dyn Rng) -> FaultConfig {
        FaultConfig::sample(&self.sites.params, self.fault_model.as_ref(), rng)
    }

    /// Joint prior log-probability of a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fault model defines no density.
    pub fn prior_log_prob(&self, cfg: &FaultConfig) -> f64 {
        cfg.log_prob(&self.sites.params, self.fault_model.as_ref())
            .expect("fault model must define a density for MCMC targets")
    }

    /// Evaluates the faulty network's logits over the whole evaluation set.
    ///
    /// Parameter faults come from `cfg`; activation faults (if any
    /// activation sites are configured) are freshly sampled per forward
    /// pass — transient faults do not persist across inferences.
    ///
    /// When only parameter sites are configured, inference first tries the
    /// sparse-delta path (recompute the touched columns, propagate only the
    /// deviating rows — see [`crate::delta`]), falling back to resuming
    /// from the golden prefix-activation cache at `cfg`'s first dirty
    /// layer when the configuration is not column-confined. Both paths are
    /// bit-identical to the cold run. Transient (activation or input)
    /// sites force the full tapped pass.
    pub fn eval_logits(&mut self, cfg: &FaultConfig, rng: &mut dyn Rng) -> Tensor {
        if let Some(prefix) = &self.prefix {
            let prefix = Arc::clone(prefix);
            cfg.apply(&mut self.model);
            // Sparse-delta first: column-confined configurations recompute
            // only the touched columns plus the surviving dirty rows. A
            // `None` means the planner refused (not column-confined) and
            // the exact incremental suffix path runs instead; both are
            // bit-identical to a cold dense pass.
            let logits = if self.delta_enabled {
                forward_delta_f32(&mut self.model, &prefix, cfg, DENSIFY_THRESHOLD)
            } else {
                None
            };
            let logits = match logits {
                Some(l) => {
                    self.delta_stats.record_hit();
                    l
                }
                None => {
                    if self.delta_enabled {
                        self.delta_stats.record_fallback();
                    }
                    let start = cfg
                        .first_dirty_layer(&self.model)
                        .unwrap_or_else(|| self.model.len());
                    prefix.predict_from(&mut self.model, start)
                }
            };
            cfg.apply(&mut self.model);
            return logits;
        }
        // Transient sites: no reusable prefix, so the delta path can never
        // fire — count the forced full pass as a fallback.
        if self.delta_enabled {
            self.delta_stats.record_fallback();
        }

        let activations = &self.sites.activations;
        let inject_input = self.sites.input;
        let fault_model = Arc::clone(&self.fault_model);
        let batch = self.batch_size;
        let inputs = Arc::clone(&self.eval);
        cfg.apply(&mut self.model);
        // The tap fires with an empty path for the batch input itself
        // (before the first layer), then with each layer's path.
        let logits = predict_batched(&mut self.model, inputs.inputs(), batch, &mut |path, t| {
            let hit = if path.is_empty() {
                inject_input
            } else {
                activations.iter().any(|a| a == path)
            };
            if hit {
                let mask = fault_model.sample_mask(t.len(), rng);
                mask.apply(t);
            }
        });
        cfg.apply(&mut self.model);
        logits
    }

    /// Classification error (vs. true labels) of the faulty network — the
    /// statistic of Figs. 2 and 4.
    pub fn eval_error(&mut self, cfg: &FaultConfig, rng: &mut dyn Rng) -> f64 {
        let logits = self.eval_logits(cfg, rng);
        bdlfi_nn::metrics::classification_error(&logits, self.eval.labels())
    }

    /// Per-example indicator of *prediction mismatch* against the golden
    /// run — the quantity the Fig. 1 ③ boundary map integrates per input
    /// point.
    pub fn eval_mismatch(&mut self, cfg: &FaultConfig, rng: &mut dyn Rng) -> Vec<bool> {
        let logits = self.eval_logits(cfg, rng);
        logits
            .argmax_rows()
            .into_iter()
            .zip(self.golden_preds.iter())
            .map(|(f, &g)| f != g)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_faults::BernoulliBitFlip;
    use bdlfi_nn::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(p: f64) -> (FaultyModel, StdRng) {
        use bdlfi_nn::{optim::Sgd, TrainConfig, Trainer};
        let mut rng = StdRng::seed_from_u64(0);
        let data = Arc::new(gaussian_blobs(100, 3, 0.5, &mut rng));
        let mut model = mlp(2, &[16], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 15,
                batch_size: 16,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, data.inputs(), data.labels(), &mut rng);
        let fm = FaultyModel::new(
            model,
            data,
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::new(p)),
        );
        (fm, rng)
    }

    #[test]
    fn golden_error_is_deterministic_and_bounded() {
        let (fm, _) = setup(0.01);
        assert!((0.0..=1.0).contains(&fm.golden_error()));
        let (fm2, _) = setup(0.01);
        assert_eq!(fm.golden_error(), fm2.golden_error());
        assert_eq!(fm.golden_preds(), fm2.golden_preds());
    }

    #[test]
    fn clean_config_reproduces_golden_error() {
        let (mut fm, mut rng) = setup(0.01);
        let err = fm.eval_error(&FaultConfig::clean(), &mut rng);
        assert_eq!(err, fm.golden_error());
    }

    #[test]
    fn evaluation_restores_the_model() {
        let (mut fm, mut rng) = setup(0.05);
        let cfg = fm.sample_config(&mut rng);
        let before = fm.eval_error(&FaultConfig::clean(), &mut rng);
        let _ = fm.eval_error(&cfg, &mut rng);
        let after = fm.eval_error(&FaultConfig::clean(), &mut rng);
        assert_eq!(before, after, "weights not restored after faulty eval");
    }

    #[test]
    fn heavy_faults_degrade_error() {
        let (mut fm, mut rng) = setup(0.05);
        // Average over a few configs: heavy faults should hurt vs golden.
        let mut total = 0.0;
        for _ in 0..10 {
            let cfg = fm.sample_config(&mut rng);
            total += fm.eval_error(&cfg, &mut rng);
        }
        assert!(total / 10.0 > fm.golden_error());
    }

    #[test]
    fn mismatch_is_zero_for_clean_config() {
        let (mut fm, mut rng) = setup(0.01);
        let mm = fm.eval_mismatch(&FaultConfig::clean(), &mut rng);
        assert!(mm.iter().all(|&b| !b));
    }

    #[test]
    fn prior_log_prob_matches_fault_config() {
        let (fm, mut rng) = setup(0.01);
        let cfg = fm.sample_config(&mut rng);
        let direct = cfg
            .log_prob(&fm.sites().params, fm.fault_model().as_ref())
            .unwrap();
        assert_eq!(fm.prior_log_prob(&cfg), direct);
    }

    #[test]
    fn activation_sites_inject_transiently() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Arc::new(gaussian_blobs(50, 2, 0.5, &mut rng));
        let model = mlp(2, &[8], 2, &mut rng);
        let mut fm = FaultyModel::new(
            model,
            data,
            &SiteSpec::Activations(vec!["fc1".into()]),
            Arc::new(BernoulliBitFlip::new(0.02)),
        );
        // Clean parameter config, but activation faults still fire.
        let e1 = fm.eval_error(&FaultConfig::clean(), &mut rng);
        let e2 = fm.eval_error(&FaultConfig::clean(), &mut rng);
        // Different RNG draws -> (almost surely) different transient errors
        // across repeated evaluations; both bounded.
        assert!((0.0..=1.0).contains(&e1));
        assert!((0.0..=1.0).contains(&e2));
        // And the golden error is recovered with a zero-probability model.
        let mut clean_fm = FaultyModel::new(
            {
                let mut r = StdRng::seed_from_u64(1);
                let _ = gaussian_blobs(50, 2, 0.5, &mut r);
                mlp(2, &[8], 2, &mut r)
            },
            Arc::new(gaussian_blobs(50, 2, 0.5, &mut StdRng::seed_from_u64(99))),
            &SiteSpec::Activations(vec!["fc1".into()]),
            Arc::new(BernoulliBitFlip::new(0.0)),
        );
        let e = clean_fm.eval_error(&FaultConfig::clean(), &mut rng);
        assert_eq!(e, clean_fm.golden_error());
    }

    #[test]
    fn incremental_eval_matches_cold_forward_bitwise() {
        let (mut fm, mut rng) = setup(0.02);
        assert!(
            fm.prefix.is_some(),
            "param-only sites should enable the cache"
        );
        let inputs = Arc::clone(&fm.eval);
        let batch = fm.batch_size;
        for _ in 0..5 {
            let cfg = fm.sample_config(&mut rng);
            let inc = fm.eval_logits(&cfg, &mut rng);
            let cold = cfg.with_applied(&mut fm.model, |m| {
                predict_batched(m, inputs.inputs(), batch, &mut |_, _| {})
            });
            let ib: Vec<u32> = inc.data().iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u32> = cold.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ib, cb, "incremental logits diverge from cold run");
        }
    }

    #[test]
    fn layer_scoped_sites_resume_mid_network() {
        use bdlfi_nn::{optim::Sgd, TrainConfig, Trainer};
        let mut rng = StdRng::seed_from_u64(3);
        let data = Arc::new(gaussian_blobs(60, 3, 0.5, &mut rng));
        let mut model = mlp(2, &[8, 8], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1),
            TrainConfig {
                epochs: 5,
                batch_size: 16,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, data.inputs(), data.labels(), &mut rng);
        // Faults scoped to the last dense layer: every config's first dirty
        // layer is deep, so the incremental path reuses most of the network.
        let mut fm = FaultyModel::new(
            model,
            data,
            &SiteSpec::LayerParams {
                prefix: "fc3".into(),
            },
            Arc::new(BernoulliBitFlip::new(0.05)),
        );
        let inputs = Arc::clone(&fm.eval);
        let batch = fm.batch_size;
        let cfg = loop {
            let c = fm.sample_config(&mut rng);
            if !c.is_clean() {
                break c;
            }
        };
        assert_eq!(cfg.first_dirty_layer(&fm.model), Some(4)); // fc1 relu1 fc2 relu2 fc3
        let inc = fm.eval_logits(&cfg, &mut rng);
        let cold = cfg.with_applied(&mut fm.model, |m| {
            predict_batched(m, inputs.inputs(), batch, &mut |_, _| {})
        });
        let ib: Vec<u32> = inc.data().iter().map(|v| v.to_bits()).collect();
        let cb: Vec<u32> = cold.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ib, cb);
    }

    #[test]
    fn batched_prediction_matches_single_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = mlp(2, &[4], 2, &mut rng);
        let x = Tensor::rand_normal([10, 2], 0.0, 1.0, &mut rng);
        let full = model.predict(&x);
        let batched = predict_batched(&mut model, &x, 3, &mut |_, _| {});
        assert!(full.approx_eq(&batched, 1e-6));
    }
}
