//! The fault-evaluation workload abstraction and the quantized workload.
//!
//! Every campaign driver ultimately needs the same four things from the
//! system under test: the resolved injection sites, the fault prior over
//! them, the golden classification error, and a way to score one
//! [`FaultConfig`]. [`FaultWorkload`] captures exactly that surface, so the
//! MCMC campaign machinery ([`crate::run_campaign`] and friends) runs
//! unchanged over the f32 [`FaultyModel`] and the int8
//! [`QuantFaultyModel`] — the quantized-deployment workload of the paper's
//! "memory units storing NN parameters" fault model.

use crate::delta::{forward_delta_quant, DeltaStats, DENSIFY_THRESHOLD};
use crate::FaultyModel;
use bdlfi_data::Dataset;
use bdlfi_faults::{FaultConfig, FaultModel, ResolvedSites, SiteSpec};
use bdlfi_quant::{QPrefixCache, QuantModel};
use bdlfi_tensor::Tensor;
use rand::Rng;
use std::sync::Arc;

/// A system under fault injection, as seen by the campaign drivers.
///
/// Implementors bind a network to an evaluation set, a resolved set of
/// injection sites and a fault prior. Cloning must be cheap enough to hand
/// one copy to each parallel chain (share the heavy read-only state behind
/// `Arc`s, clone only the mutable storage faults are XORed into).
pub trait FaultWorkload: Clone + Send + Sync {
    /// The resolved injection sites.
    fn sites(&self) -> &ResolvedSites;

    /// The shared fault prior.
    fn fault_model(&self) -> &Arc<dyn FaultModel>;

    /// Classification error of the fault-free network — the paper's
    /// "golden run" line.
    fn golden_error(&self) -> f64;

    /// Classification error (vs. true labels) under one fault
    /// configuration. `rng` drives transient faults where the workload has
    /// any; pure-parameter workloads ignore it.
    fn eval_error(&mut self, cfg: &FaultConfig, rng: &mut dyn Rng) -> f64;

    /// Samples a fault configuration from the prior over the sites.
    fn sample_config(&self, rng: &mut dyn Rng) -> FaultConfig {
        FaultConfig::sample(&self.sites().params, self.fault_model().as_ref(), rng)
    }

    /// Joint prior log-probability of a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the fault model defines no density.
    fn prior_log_prob(&self, cfg: &FaultConfig) -> f64 {
        cfg.log_prob(&self.sites().params, self.fault_model().as_ref())
            .expect("fault model must define a density for MCMC targets")
    }

    /// `(hits, fallbacks)` of the sparse-delta evaluation path, aggregated
    /// across every clone of this workload. Workloads without a delta path
    /// report `(0, 0)`; drivers stamp the per-run difference into
    /// [`crate::engine::RunMeta`].
    fn delta_counters(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl FaultWorkload for FaultyModel {
    fn sites(&self) -> &ResolvedSites {
        FaultyModel::sites(self)
    }

    fn fault_model(&self) -> &Arc<dyn FaultModel> {
        FaultyModel::fault_model(self)
    }

    fn golden_error(&self) -> f64 {
        FaultyModel::golden_error(self)
    }

    fn eval_error(&mut self, cfg: &FaultConfig, rng: &mut dyn Rng) -> f64 {
        FaultyModel::eval_error(self, cfg, rng)
    }

    fn delta_counters(&self) -> (u64, u64) {
        FaultyModel::delta_counters(self)
    }
}

/// The quantized twin of [`FaultyModel`]: an int8 [`QuantModel`] bound to
/// an evaluation set and a fault model over its representation-tagged
/// sites (int8 weight bytes, i32 bias words, f32 scales).
///
/// Quantized storage is purely persistent — there are no transient
/// activation sites — so every evaluation runs the golden-prefix
/// incremental path: XOR the faults in, resume inference at the first
/// dirty stage from the shared [`QPrefixCache`], XOR them back out.
/// Cloning shares the evaluation data, prefix cache and fault model;
/// each clone owns its quantized storage.
#[derive(Clone)]
pub struct QuantFaultyModel {
    model: QuantModel,
    eval: Arc<Dataset>,
    sites: ResolvedSites,
    fault_model: Arc<dyn FaultModel>,
    golden_preds: Arc<Vec<usize>>,
    golden_error: f64,
    prefix: Arc<QPrefixCache>,
    delta_stats: Arc<DeltaStats>,
    delta_enabled: bool,
}

impl std::fmt::Debug for QuantFaultyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantFaultyModel")
            .field("param_sites", &self.sites.params.len())
            .field("eval_examples", &self.eval.len())
            .field("golden_error", &self.golden_error)
            .finish()
    }
}

impl QuantFaultyModel {
    /// Binds a quantized model to an evaluation set and fault model over
    /// the sites selected by `spec`. Golden predictions, golden error and
    /// the prefix cache are computed once here.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, the spec selects transient
    /// (activation/input) sites, or it resolves to no site.
    pub fn new(
        mut model: QuantModel,
        eval: Arc<Dataset>,
        spec: &SiteSpec,
        fault_model: Arc<dyn FaultModel>,
    ) -> Self {
        assert!(!eval.is_empty(), "evaluation set must not be empty");
        let sites = model.sites_matching(spec);
        assert!(
            !sites.is_empty(),
            "site spec resolved to no injection sites"
        );

        let prefix = QPrefixCache::build(&mut model, eval.inputs(), 64);
        let golden_logits = prefix.golden_logits();
        let golden_preds = Arc::new(golden_logits.argmax_rows());
        let golden_error = bdlfi_nn::metrics::classification_error(&golden_logits, eval.labels());

        QuantFaultyModel {
            model,
            eval,
            sites,
            fault_model,
            golden_preds,
            golden_error,
            prefix: Arc::new(prefix),
            delta_stats: Arc::new(DeltaStats::default()),
            delta_enabled: true,
        }
    }

    /// Enables or disables the sparse-delta path (on by default). With it
    /// off, every evaluation takes the incremental dense path; results are
    /// bit-identical either way.
    pub fn set_delta_enabled(&mut self, enabled: bool) {
        self.delta_enabled = enabled;
    }

    /// `(hits, fallbacks)` of the sparse-delta path, aggregated across all
    /// clones of this workload (chains share the counters).
    pub fn delta_counters(&self) -> (u64, u64) {
        self.delta_stats.counters()
    }

    /// The resolved (representation-tagged) injection sites.
    pub fn sites(&self) -> &ResolvedSites {
        &self.sites
    }

    /// The shared fault model.
    pub fn fault_model(&self) -> &Arc<dyn FaultModel> {
        &self.fault_model
    }

    /// The evaluation dataset.
    pub fn eval(&self) -> &Dataset {
        &self.eval
    }

    /// Classification error of the fault-free quantized network.
    pub fn golden_error(&self) -> f64 {
        self.golden_error
    }

    /// The golden quantized network's predictions on the evaluation set.
    pub fn golden_preds(&self) -> &[usize] {
        &self.golden_preds
    }

    /// The underlying quantized model.
    pub fn model(&self) -> &QuantModel {
        &self.model
    }

    /// Evaluates the faulted quantized network's logits over the whole
    /// evaluation set: first through the sparse-delta path (recompute the
    /// touched columns, propagate only the deviating rows — see
    /// [`crate::delta`]), falling back to resuming from the golden prefix
    /// cache at the configuration's first dirty stage when the faults are
    /// not column-confined. Both paths are bit-identical to a cold run.
    pub fn eval_logits(&mut self, cfg: &FaultConfig) -> Tensor {
        let prefix = Arc::clone(&self.prefix);
        self.model.apply(cfg);
        let logits = if self.delta_enabled {
            forward_delta_quant(&mut self.model, &prefix, cfg, DENSIFY_THRESHOLD)
        } else {
            None
        };
        let logits = match logits {
            Some(l) => {
                self.delta_stats.record_hit();
                l
            }
            None => {
                if self.delta_enabled {
                    self.delta_stats.record_fallback();
                }
                let start = self
                    .model
                    .first_dirty_op(cfg)
                    .unwrap_or_else(|| self.model.len());
                prefix.predict_from(&mut self.model, start)
            }
        };
        self.model.apply(cfg);
        logits
    }

    /// Classification error (vs. true labels) under one configuration.
    pub fn eval_error(&mut self, cfg: &FaultConfig) -> f64 {
        let logits = self.eval_logits(cfg);
        bdlfi_nn::metrics::classification_error(&logits, self.eval.labels())
    }

    /// Per-example prediction mismatch against the golden quantized run.
    pub fn eval_mismatch(&mut self, cfg: &FaultConfig) -> Vec<bool> {
        let logits = self.eval_logits(cfg);
        logits
            .argmax_rows()
            .into_iter()
            .zip(self.golden_preds.iter())
            .map(|(f, &g)| f != g)
            .collect()
    }
}

impl FaultWorkload for QuantFaultyModel {
    fn sites(&self) -> &ResolvedSites {
        &self.sites
    }

    fn fault_model(&self) -> &Arc<dyn FaultModel> {
        &self.fault_model
    }

    fn golden_error(&self) -> f64 {
        self.golden_error
    }

    fn eval_error(&mut self, cfg: &FaultConfig, _rng: &mut dyn Rng) -> f64 {
        QuantFaultyModel::eval_error(self, cfg)
    }

    fn delta_counters(&self) -> (u64, u64) {
        QuantFaultyModel::delta_counters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_faults::{BernoulliBitFlip, BitRange, Repr};
    use bdlfi_nn::mlp;
    use bdlfi_quant::{quantize_model, CalibConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(p: f64) -> (QuantFaultyModel, StdRng) {
        use bdlfi_nn::{optim::Sgd, TrainConfig, Trainer};
        let mut rng = StdRng::seed_from_u64(0);
        let data = Arc::new(gaussian_blobs(100, 3, 0.5, &mut rng));
        let mut model = mlp(2, &[16], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 15,
                batch_size: 16,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, data.inputs(), data.labels(), &mut rng);
        let qm = quantize_model(&model, data.inputs(), &CalibConfig::default());
        let qfm = QuantFaultyModel::new(
            qm,
            data,
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::with_bits(p, BitRange::all_for(Repr::I8))),
        );
        (qfm, rng)
    }

    #[test]
    fn clean_config_reproduces_golden_error() {
        let (mut qfm, _) = setup(0.01);
        assert!((0.0..=1.0).contains(&qfm.golden_error()));
        let err = QuantFaultyModel::eval_error(&mut qfm, &FaultConfig::clean());
        assert_eq!(err, qfm.golden_error());
    }

    #[test]
    fn evaluation_restores_the_quantized_storage() {
        let (mut qfm, mut rng) = setup(0.05);
        let cfg = FaultWorkload::sample_config(&qfm, &mut rng);
        let before = QuantFaultyModel::eval_error(&mut qfm, &FaultConfig::clean());
        let _ = QuantFaultyModel::eval_error(&mut qfm, &cfg);
        let after = QuantFaultyModel::eval_error(&mut qfm, &FaultConfig::clean());
        assert_eq!(before, after, "storage not restored after faulty eval");
    }

    #[test]
    fn incremental_eval_matches_cold_run_bitwise() {
        let (mut qfm, mut rng) = setup(0.02);
        for _ in 0..5 {
            let cfg = FaultWorkload::sample_config(&qfm, &mut rng);
            let inc = qfm.eval_logits(&cfg);
            let mut cold_model = qfm.model.clone();
            cold_model.apply(&cfg);
            let cold = cold_model.predict_all(qfm.eval.inputs(), 64);
            let ib: Vec<u32> = inc.data().iter().map(|v| v.to_bits()).collect();
            let cb: Vec<u32> = cold.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ib, cb, "incremental logits diverge from cold run");
        }
    }

    #[test]
    fn sites_carry_reprs_and_prior_matches() {
        let (qfm, mut rng) = setup(0.01);
        assert!(FaultWorkload::sites(&qfm)
            .params
            .iter()
            .any(|s| s.repr == Repr::I8));
        let cfg = FaultWorkload::sample_config(&qfm, &mut rng);
        let direct = cfg
            .log_prob(&qfm.sites().params, qfm.fault_model().as_ref())
            .unwrap();
        assert_eq!(FaultWorkload::prior_log_prob(&qfm, &cfg), direct);
    }

    #[test]
    fn mismatch_is_zero_for_clean_config() {
        let (mut qfm, _) = setup(0.01);
        let mm = qfm.eval_mismatch(&FaultConfig::clean());
        assert!(mm.iter().all(|&b| !b));
    }
}
