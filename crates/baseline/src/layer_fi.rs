//! Per-layer traditional fault injection — the Li et al. (SC'17 \[1\])
//! experiment the paper's Fig. 3 challenges: sample a handful of single-bit
//! injections per layer and read off a depth-vs-vulnerability trend.
//!
//! With small per-layer budgets the measured trend is dominated by sampling
//! noise; BDLFI's claim is that incomplete traversal of the injection space
//! manufactures the depth effect reported by earlier studies.

use crate::random_fi::{RandomFi, RandomFiConfig, RandomFiResult};
use bdlfi::checkpoint::fingerprint;
use bdlfi::engine::{CheckpointSpec, CollectSink, EngineError, EvalEngine, RunControl, RunMeta};
use bdlfi::stats::spearman;
use bdlfi_bayes::seed_stream;
use bdlfi_data::Dataset;
use bdlfi_faults::SiteSpec;
use bdlfi_nn::Sequential;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The traditional-FI outcome for one injected layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerFiResult {
    /// Depth index of the layer (0 = closest to the input).
    pub depth: usize,
    /// Layer name (path prefix).
    pub layer: String,
    /// Campaign result for this layer.
    pub result: RandomFiResult,
}

/// The outcome of a per-layer traditional FI study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerFiStudy {
    /// One entry per layer, in depth order.
    pub layers: Vec<LayerFiResult>,
    /// Spearman rank correlation between depth and measured SDC rate.
    pub depth_correlation: f64,
    /// Engine execution metadata for the per-layer fan-out.
    pub run_meta: RunMeta,
}

/// Runs one single-bit-flip campaign per layer with `cfg.injections`
/// injections each.
///
/// # Panics
///
/// Panics if `layers` is empty or a prefix does not exist in the model.
pub fn run_layer_fi(
    model: &Sequential,
    eval: &Arc<Dataset>,
    layers: &[&str],
    cfg: &RandomFiConfig,
) -> LayerFiStudy {
    match run_layer_fi_controlled(model, eval, layers, cfg, &RunControl::default(), None) {
        Ok(study) => study,
        Err(e) => panic!("per-layer FI study failed: {e}"),
    }
}

/// [`run_layer_fi`] with cooperative cancellation and an optional
/// checkpoint journal (one entry per completed layer, in depth order).
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_layer_fi`].
pub fn run_layer_fi_controlled(
    model: &Sequential,
    eval: &Arc<Dataset>,
    layers: &[&str],
    cfg: &RandomFiConfig,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<LayerFiStudy, EngineError> {
    assert!(!layers.is_empty(), "study needs at least one layer");
    // Fan the per-layer campaigns out through the engine. Layer `depth`
    // re-seeds its campaign from `seed_stream(cfg.seed, depth)`, which
    // decorrelates layers without the collision risk of additive offsets.
    let names: Vec<String> = layers.iter().map(|&l| l.to_string()).collect();
    let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
    let ckpt = ckpt.cloned().map(|mut s| {
        if s.fingerprint.is_empty() {
            s.fingerprint = fingerprint("layer_fi", &(cfg.clone(), names.clone()));
        }
        s
    });
    let mut sink = CollectSink::new();
    let run_meta = engine.run_checkpointed(
        names.len(),
        || (),
        |(), ctx| {
            let depth = ctx.task_id;
            let layer = names[depth].clone();
            let fi = RandomFi::new(
                model.clone(),
                Arc::clone(eval),
                &SiteSpec::LayerParams {
                    prefix: layer.clone(),
                },
            );
            let mut layer_cfg = cfg.clone();
            layer_cfg.seed = seed_stream(cfg.seed, depth as u64);
            Ok(LayerFiResult {
                depth,
                layer,
                result: fi.run(&layer_cfg),
            })
        },
        &mut sink,
        ctl,
        ckpt.as_ref(),
    )?;
    let layers = sink.into_inner();

    let depths: Vec<f64> = layers.iter().map(|l| l.depth as f64).collect();
    let rates: Vec<f64> = layers.iter().map(|l| l.result.sdc.rate).collect();
    let depth_correlation = spearman(&depths, &rates);
    Ok(LayerFiStudy {
        layers,
        depth_correlation,
        run_meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained() -> (Sequential, Arc<Dataset>) {
        let mut rng = StdRng::seed_from_u64(1);
        let data = gaussian_blobs(200, 3, 0.5, &mut rng);
        let (train, test) = data.split(0.7, &mut rng);
        let mut model = mlp(2, &[12, 12], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 15,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
        (model, Arc::new(test))
    }

    #[test]
    fn per_layer_study_reports_each_layer() {
        let (model, eval) = trained();
        let study = run_layer_fi(
            &model,
            &eval,
            &["fc1", "fc2", "fc3"],
            &RandomFiConfig {
                injections: 20,
                seed: 0,
                level: 0.95,
                workers: 0,
            },
        );
        assert_eq!(study.layers.len(), 3);
        for (i, l) in study.layers.iter().enumerate() {
            assert_eq!(l.depth, i);
            assert_eq!(l.result.injections, 20);
        }
        assert!(study.depth_correlation.is_nan() || study.depth_correlation.abs() <= 1.0);
    }

    #[test]
    fn small_budgets_give_unstable_trends() {
        // The paper's critique: re-running a small-budget study with a
        // different seed can change the measured depth trend.
        let (model, eval) = trained();
        let layers = ["fc1", "fc2", "fc3"];
        let a = run_layer_fi(
            &model,
            &eval,
            &layers,
            &RandomFiConfig {
                injections: 8,
                seed: 10,
                level: 0.95,
                workers: 0,
            },
        );
        let b = run_layer_fi(
            &model,
            &eval,
            &layers,
            &RandomFiConfig {
                injections: 8,
                seed: 77,
                level: 0.95,
                workers: 0,
            },
        );
        let rates =
            |s: &LayerFiStudy| -> Vec<f64> { s.layers.iter().map(|l| l.result.sdc.rate).collect() };
        // Not asserting instability (it is probabilistic), but the runs must
        // both be valid and need not agree.
        assert_eq!(rates(&a).len(), rates(&b).len());
    }

    #[test]
    fn seeds_differ_across_layers() {
        let (model, eval) = trained();
        let study = run_layer_fi(
            &model,
            &eval,
            &["fc1", "fc2"],
            &RandomFiConfig {
                injections: 48,
                seed: 5,
                level: 0.95,
                workers: 0,
            },
        );
        // Same model + same seed would give identical error sequences only
        // if the layers coincidentally behave identically; the decorrelated
        // seeds plus enough injections for at least one damaging flip make
        // this overwhelmingly unlikely.
        assert_ne!(study.layers[0].result.errors, study.layers[1].result.errors);
    }
}
