//! Frequentist estimators for classical fault-injection campaigns:
//! Wilson and Clopper–Pearson binomial confidence intervals.
//!
//! Traditional FI reports an SDC (silent data corruption) *rate* with a
//! confidence interval and stops at a fixed injection budget — it has no
//! notion of campaign completeness beyond the interval width, which is the
//! limitation BDLFI's mixing-based certification addresses.

use bdlfi_bayes::special::betainc_inv;
use serde::{Deserialize, Serialize};

/// A frequentist estimate of a binomial proportion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionEstimate {
    /// Observed successes.
    pub successes: u64,
    /// Observed trials.
    pub trials: u64,
    /// Point estimate `successes / trials`.
    pub rate: f64,
    /// Wilson score interval at the configured level.
    pub wilson: (f64, f64),
    /// Clopper–Pearson (exact) interval at the configured level.
    pub clopper_pearson: (f64, f64),
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

/// Estimates a binomial proportion with both interval styles.
///
/// # Panics
///
/// Panics if `successes > trials`, `trials == 0`, or the level is not in
/// `(0, 1)`.
pub fn estimate_proportion(successes: u64, trials: u64, level: f64) -> ProportionEstimate {
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(trials > 0, "need at least one trial");
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "level must be in (0, 1)"
    );
    let rate = successes as f64 / trials as f64;
    ProportionEstimate {
        successes,
        trials,
        rate,
        wilson: wilson_interval(successes, trials, level),
        clopper_pearson: clopper_pearson_interval(successes, trials, level),
        level,
    }
}

/// Wilson score interval.
fn wilson_interval(successes: u64, trials: u64, level: f64) -> (f64, f64) {
    let z = normal_quantile(0.5 + level / 2.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Clopper–Pearson exact interval via Beta quantiles.
fn clopper_pearson_interval(successes: u64, trials: u64, level: f64) -> (f64, f64) {
    let alpha = 1.0 - level;
    let (k, n) = (successes as f64, trials as f64);
    let lo = if successes == 0 {
        0.0
    } else {
        betainc_inv(k, n - k + 1.0, alpha / 2.0)
    };
    let hi = if successes == trials {
        1.0
    } else {
        betainc_inv(k + 1.0, n - k, 1.0 - alpha / 2.0)
    };
    (lo, hi)
}

/// Standard normal quantile (Acklam's rational approximation, |err| < 1e-8).
///
/// # Panics
///
/// Panics unless `0 < q < 1`.
pub fn normal_quantile(q: f64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "quantile level must be in (0, 1)");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if q < P_LOW {
        let u = (-2.0 * q.ln()).sqrt();
        (((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0)
    } else if q <= 1.0 - P_LOW {
        let u = q - 0.5;
        let r = u * u;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * u
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.9999) - 3.719_016_485).abs() < 1e-4);
    }

    #[test]
    fn intervals_bracket_the_rate() {
        let e = estimate_proportion(30, 100, 0.95);
        assert_eq!(e.rate, 0.3);
        assert!(e.wilson.0 < 0.3 && 0.3 < e.wilson.1);
        assert!(e.clopper_pearson.0 < 0.3 && 0.3 < e.clopper_pearson.1);
        // Clopper–Pearson is conservative: at least as wide as Wilson.
        assert!(e.clopper_pearson.1 - e.clopper_pearson.0 >= e.wilson.1 - e.wilson.0 - 1e-9);
    }

    #[test]
    fn interval_width_shrinks_with_trials() {
        let small = estimate_proportion(3, 10, 0.95);
        let large = estimate_proportion(300, 1000, 0.95);
        assert!(large.wilson.1 - large.wilson.0 < small.wilson.1 - small.wilson.0);
    }

    #[test]
    fn zero_and_full_successes() {
        let none = estimate_proportion(0, 20, 0.95);
        assert_eq!(none.clopper_pearson.0, 0.0);
        assert!(none.clopper_pearson.1 > 0.0 && none.clopper_pearson.1 < 0.3);
        let all = estimate_proportion(20, 20, 0.95);
        assert_eq!(all.clopper_pearson.1, 1.0);
        assert!(all.clopper_pearson.0 > 0.7);
    }

    #[test]
    fn clopper_pearson_matches_known_value() {
        // k=1, n=10, 95%: CP interval ≈ (0.0025, 0.4450).
        let e = estimate_proportion(1, 10, 0.95);
        assert!(
            (e.clopper_pearson.0 - 0.0025).abs() < 5e-4,
            "{:?}",
            e.clopper_pearson
        );
        assert!(
            (e.clopper_pearson.1 - 0.4450).abs() < 5e-3,
            "{:?}",
            e.clopper_pearson
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        estimate_proportion(0, 0, 0.95);
    }
}
