//! # bdlfi-baseline
//!
//! Traditional random fault injection — the comparator for the BDLFI
//! reproduction ("Towards a Bayesian Approach for Assessing Fault Tolerance
//! of Deep Neural Networks", DSN 2019).
//!
//! Implements the TensorFI / debugger-level style of campaign the paper
//! cites (\[1\], \[3\], \[4\]): single uniformly chosen bit flips per run, SDC
//! rates with frequentist confidence intervals ([`estimator`]), and the
//! Li-et-al.-style per-layer study ([`run_layer_fi`]) whose small-sample
//! depth trends the paper's Fig. 3 challenges.
//!
//! # Examples
//!
//! ```
//! use bdlfi_baseline::{RandomFi, RandomFiConfig};
//! use bdlfi_faults::SiteSpec;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data = Arc::new(bdlfi_data::gaussian_blobs(50, 2, 0.5, &mut rng));
//! let model = bdlfi_nn::mlp(2, &[8], 2, &mut rng);
//!
//! let fi = RandomFi::new(model, data, &SiteSpec::AllParams);
//! let result = fi.run(&RandomFiConfig { injections: 20, seed: 1, level: 0.95, workers: 0 });
//! assert_eq!(result.injections, 20);
//! ```

#![warn(missing_docs)]

pub mod estimator;
mod exhaustive;
mod layer_fi;
mod random_fi;

pub use estimator::{estimate_proportion, normal_quantile, ProportionEstimate};
pub use exhaustive::{
    run_exhaustive, run_exhaustive_controlled, run_exhaustive_quant,
    run_exhaustive_quant_controlled, run_exhaustive_quant_with, run_exhaustive_with,
    BitPositionStats, ExhaustiveResult,
};
pub use layer_fi::{run_layer_fi, run_layer_fi_controlled, LayerFiResult, LayerFiStudy};
pub use random_fi::{RandomFi, RandomFiConfig, RandomFiResult};
