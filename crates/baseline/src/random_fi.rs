//! Traditional random fault injection — the TensorFI / debugger-level
//! style of campaign BDLFI is compared against (paper refs \[1\], [3], [4]).
//!
//! Each injection run: pick a fault (by default a single uniformly chosen
//! bit across the selected sites, the classical model), apply it, execute
//! the workload once, record whether the output was corrupted, restore.
//! The campaign reports an SDC rate with frequentist confidence intervals
//! and has no notion of completeness beyond the injection budget — the
//! methodological gap the paper targets.

use crate::estimator::{estimate_proportion, ProportionEstimate};
use bdlfi::checkpoint::fingerprint;
use bdlfi::engine::{CheckpointSpec, EngineError, EvalEngine, EvalSink, RunControl, RunMeta};
use bdlfi_data::Dataset;
use bdlfi_faults::{resolve_sites, FaultConfig, FaultModel, SingleBitFlip, SiteSpec};
use bdlfi_nn::predict_all;
use bdlfi_nn::Sequential;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a traditional random-FI campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomFiConfig {
    /// Number of injection runs.
    pub injections: usize,
    /// RNG seed; injection `i` draws from `seed_stream(seed, i)`.
    pub seed: u64,
    /// Confidence level for the reported intervals.
    pub level: f64,
    /// Worker threads for injection runs (0 = all available cores).
    /// Results are bit-identical at every worker count.
    pub workers: usize,
}

impl Default for RandomFiConfig {
    fn default() -> Self {
        RandomFiConfig {
            injections: 100,
            seed: 42,
            level: 0.95,
            workers: 0,
        }
    }
}

/// The outcome of a traditional campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomFiResult {
    /// Number of injection runs performed.
    pub injections: usize,
    /// Runs whose prediction changed on at least one evaluation input
    /// (silent data corruption).
    pub sdc: ProportionEstimate,
    /// Mean classification error (vs. labels) across injected runs.
    pub mean_error: f64,
    /// Golden (fault-free) classification error.
    pub golden_error: f64,
    /// Per-run classification errors, in injection order.
    pub errors: Vec<f64>,
    /// Engine execution metadata (worker count, wall-clock, injections/sec).
    pub run_meta: RunMeta,
}

/// A traditional random fault injector bound to a model and workload.
pub struct RandomFi {
    model: Sequential,
    eval: Arc<Dataset>,
    sites: bdlfi_faults::ResolvedSites,
    fault_model: Arc<dyn FaultModel>,
    // Classical mode: exactly one uniformly chosen bit per run.
    single_bit: bool,
    golden_preds: Vec<usize>,
    golden_error: f64,
}

impl std::fmt::Debug for RandomFi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomFi")
            .field("sites", &self.sites.params.len())
            .field("eval_examples", &self.eval.len())
            .finish()
    }
}

impl RandomFi {
    /// Creates an injector with the classical single-bit-flip model.
    pub fn new(model: Sequential, eval: Arc<Dataset>, spec: &SiteSpec) -> Self {
        let mut fi = Self::with_fault_model(model, eval, spec, Arc::new(SingleBitFlip::new()));
        fi.single_bit = true;
        fi
    }

    /// Creates an injector with an explicit fault model (e.g. the paper's
    /// Bernoulli model, for apples-to-apples comparisons with BDLFI).
    ///
    /// # Panics
    ///
    /// Panics if the spec resolves to no parameter sites or the dataset is
    /// empty.
    pub fn with_fault_model(
        mut model: Sequential,
        eval: Arc<Dataset>,
        spec: &SiteSpec,
        fault_model: Arc<dyn FaultModel>,
    ) -> Self {
        assert!(!eval.is_empty(), "evaluation set must not be empty");
        let sites = resolve_sites(&model, spec);
        assert!(
            !sites.params.is_empty(),
            "traditional FI requires parameter sites (activations are not memory-resident)"
        );
        let golden_logits = predict_all(&mut model, eval.inputs(), 64);
        let golden_preds = golden_logits.argmax_rows();
        let golden_error = bdlfi_nn::metrics::classification_error(&golden_logits, eval.labels());
        RandomFi {
            model,
            eval,
            sites,
            fault_model,
            single_bit: false,
            golden_preds,
            golden_error,
        }
    }

    /// The golden-run classification error.
    pub fn golden_error(&self) -> f64 {
        self.golden_error
    }

    /// Runs the campaign through the shared evaluation engine: each worker
    /// injects into its own clone of the model, injection `i` samples its
    /// fault from seed-stream `i`, and results aggregate in injection
    /// order — so the report is identical at every worker count.
    pub fn run(&self, cfg: &RandomFiConfig) -> RandomFiResult {
        match self.run_controlled(cfg, &RunControl::default(), None) {
            Ok(res) => res,
            // bdlfi-lint: allow(BD010) -- `run` is the documented panicking convenience wrapper (see `# Panics`); fallible callers use `run_controlled`
            Err(e) => panic!("random-FI campaign failed: {e}"),
        }
    }

    /// [`RandomFi::run`] with cooperative cancellation and an optional
    /// checkpoint journal (one entry per completed injection, in
    /// injection order).
    ///
    /// # Errors
    ///
    /// [`EngineError::Interrupted`] on a cooperative stop, plus
    /// journal/sink failures.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.injections == 0`.
    pub fn run_controlled(
        &self,
        cfg: &RandomFiConfig,
        ctl: &RunControl,
        ckpt: Option<&CheckpointSpec>,
    ) -> Result<RandomFiResult, EngineError> {
        assert!(cfg.injections > 0, "campaign needs at least one injection");

        struct Tally {
            sdc_count: u64,
            errors: Vec<f64>,
        }
        impl EvalSink<(bool, f64)> for Tally {
            fn accept(
                &mut self,
                _task_id: usize,
                (corrupted, error): (bool, f64),
            ) -> Result<(), EngineError> {
                self.sdc_count += u64::from(corrupted);
                self.errors.push(error);
                Ok(())
            }
        }

        let mut tally = Tally {
            sdc_count: 0,
            errors: Vec::with_capacity(cfg.injections),
        };
        let engine = EvalEngine::with_workers(cfg.seed, cfg.workers);
        let ckpt = ckpt.cloned().map(|mut s| {
            if s.fingerprint.is_empty() {
                s.fingerprint = fingerprint(
                    "random_fi",
                    &(cfg.clone(), self.single_bit, self.golden_error),
                );
            }
            s
        });
        let run_meta = engine.run_checkpointed(
            cfg.injections,
            || self.model.clone(),
            |model, ctx| {
                let fault = self.sample_injection(&mut ctx.rng);
                fault.apply(model);
                let logits = predict_all(model, self.eval.inputs(), 64);
                fault.apply(model); // restore (XOR involution)

                let corrupted = logits
                    .argmax_rows()
                    .iter()
                    .zip(self.golden_preds.iter())
                    .any(|(a, b)| a != b);
                let error = bdlfi_nn::metrics::classification_error(&logits, self.eval.labels());
                Ok((corrupted, error))
            },
            &mut tally,
            ctl,
            ckpt.as_ref(),
        )?;

        Ok(RandomFiResult {
            injections: cfg.injections,
            sdc: estimate_proportion(tally.sdc_count, cfg.injections as u64, cfg.level),
            mean_error: tally.errors.iter().sum::<f64>() / tally.errors.len() as f64,
            golden_error: self.golden_error,
            errors: tally.errors,
            run_meta,
        })
    }

    /// One injection: under the single-bit model, a uniformly chosen
    /// `(site, element, bit)`; other models sample per-site masks exactly
    /// as BDLFI's prior does.
    fn sample_injection(&self, rng: &mut StdRng) -> FaultConfig {
        // Classical single-bit flip: uniform over the flat element space.
        if self.single_bit {
            let total: usize = self.sites.params.iter().map(|s| s.len).sum();
            let mut flat = rng.random_range(0..total);
            for site in &self.sites.params {
                if flat < site.len {
                    let mut cfg = FaultConfig::clean();
                    let mask = self.fault_model.sample_mask(site.len, rng);
                    // Re-anchor the sampled single flip to the chosen element
                    // so the choice is uniform across the *whole* space.
                    let bit_pattern = mask.entries().first().map(|&(_, m)| m).unwrap_or(1);
                    let mut anchored = bdlfi_faults::FaultMask::empty();
                    for b in 0..32u8 {
                        if bit_pattern & (1 << b) != 0 {
                            anchored.push_bit(flat, b);
                        }
                    }
                    cfg.set_mask(&site.path, anchored);
                    return cfg;
                }
                flat -= site.len;
            }
            // bdlfi-lint: allow(BD010) -- unreachable by construction: `flat` was drawn below the summed site lengths the loop subtracts
            unreachable!("flat index within total");
        }
        FaultConfig::sample(&self.sites.params, self.fault_model.as_ref(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdlfi_data::gaussian_blobs;
    use bdlfi_faults::BernoulliBitFlip;
    use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};
    use rand::SeedableRng;

    fn trained() -> (Sequential, Arc<Dataset>) {
        let mut rng = StdRng::seed_from_u64(0);
        let data = gaussian_blobs(200, 3, 0.5, &mut rng);
        let (train, test) = data.split(0.7, &mut rng);
        let mut model = mlp(2, &[16], 3, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 20,
                batch_size: 32,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
        (model, Arc::new(test))
    }

    #[test]
    fn campaign_reports_consistent_counts() {
        let (model, eval) = trained();
        let fi = RandomFi::new(model, eval, &SiteSpec::AllParams);
        let res = fi.run(&RandomFiConfig {
            injections: 50,
            seed: 1,
            level: 0.95,
            workers: 0,
        });
        assert_eq!(res.injections, 50);
        assert_eq!(res.errors.len(), 50);
        assert_eq!(res.sdc.trials, 50);
        assert!(res.sdc.rate >= 0.0 && res.sdc.rate <= 1.0);
        assert!((0.0..=1.0).contains(&res.mean_error));
        assert_eq!(res.run_meta.tasks, 50);
    }

    #[test]
    fn model_is_restored_between_injections() {
        let (model, eval) = trained();
        let mut fi = RandomFi::new(model, eval, &SiteSpec::AllParams);
        let golden = fi.golden_error();
        let _ = fi.run(&RandomFiConfig {
            injections: 30,
            seed: 2,
            level: 0.95,
            workers: 0,
        });
        // Rerunning the golden evaluation must give the same error.
        let logits = predict_all(&mut fi.model, fi.eval.inputs(), 64);
        let err = bdlfi_nn::metrics::classification_error(&logits, fi.eval.labels());
        assert_eq!(err, golden);
    }

    #[test]
    fn campaign_is_reproducible_under_seed() {
        let (model, eval) = trained();
        let fi = RandomFi::new(model.clone(), Arc::clone(&eval), &SiteSpec::AllParams);
        let a = fi.run(&RandomFiConfig {
            injections: 25,
            seed: 3,
            level: 0.95,
            workers: 0,
        });
        let fi2 = RandomFi::new(model, eval, &SiteSpec::AllParams);
        let b = fi2.run(&RandomFiConfig {
            injections: 25,
            seed: 3,
            level: 0.95,
            workers: 0,
        });
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.sdc.successes, b.sdc.successes);
    }

    #[test]
    fn campaign_is_worker_count_invariant() {
        let (model, eval) = trained();
        let fi = RandomFi::new(model, eval, &SiteSpec::AllParams);
        let run_with = |workers: usize| {
            fi.run(&RandomFiConfig {
                injections: 25,
                seed: 6,
                level: 0.95,
                workers,
            })
        };
        let serial = run_with(1);
        let parallel = run_with(3);
        assert_eq!(serial.errors, parallel.errors);
        assert_eq!(serial.sdc.successes, parallel.sdc.successes);
        assert_eq!(serial.mean_error, parallel.mean_error);
        assert_eq!(parallel.run_meta.workers, 3);
    }

    #[test]
    fn bernoulli_model_matches_single_bit_statistics_loosely() {
        // With the Bernoulli model at tiny p the mean error stays near the
        // golden run; single-bit flips produce some SDCs.
        let (model, eval) = trained();
        let bern = RandomFi::with_fault_model(
            model.clone(),
            Arc::clone(&eval),
            &SiteSpec::AllParams,
            Arc::new(BernoulliBitFlip::new(1e-6)),
        );
        let res = bern.run(&RandomFiConfig {
            injections: 40,
            seed: 4,
            level: 0.95,
            workers: 0,
        });
        assert!((res.mean_error - res.golden_error).abs() < 0.05);
    }

    #[test]
    fn single_bit_injections_flip_exactly_one_bit() {
        let (model, eval) = trained();
        let fi = RandomFi::new(model, eval, &SiteSpec::AllParams);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let cfg = fi.sample_injection(&mut rng);
            assert_eq!(cfg.total_flips(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "parameter sites")]
    fn activation_only_spec_rejected() {
        let (model, eval) = trained();
        RandomFi::new(model, eval, &SiteSpec::Activations(vec!["fc1".into()]));
    }
}
