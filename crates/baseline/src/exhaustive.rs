//! Exhaustive single-bit fault injection: enumerate *every* `(element,
//! bit)` position in the selected sites and run the workload once per
//! position.
//!
//! This is the ground truth every sampled campaign estimates. It is only
//! tractable for small networks (the paper's point (1): "the enormous
//! space of fault locations ... that must be injected" — a 100k-parameter
//! model already has 3.2 M single-bit positions, each costing a full
//! workload execution), which is exactly why sampling-based methods exist.
//! Here it serves to validate them: the sampled SDC rate must converge to
//! the exhaustive rate.

use crate::estimator::{estimate_proportion, ProportionEstimate};
use bdlfi::checkpoint::fingerprint;
use bdlfi::engine::{CheckpointSpec, EngineError, EvalEngine, EvalSink, RunControl, RunMeta};
use bdlfi_data::Dataset;
use bdlfi_faults::{resolve_sites, FaultConfig, FaultMask, SiteSpec};
use bdlfi_nn::{predict_all, Sequential};
use bdlfi_quant::{QPrefixCache, QuantModel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-bit-position aggregate of an exhaustive study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitPositionStats {
    /// Bit position (0 = mantissa LSB, 31 = sign).
    pub bit: u8,
    /// Number of injections at this position (= number of elements).
    pub injections: u64,
    /// Injections that corrupted at least one prediction.
    pub sdc: u64,
}

/// The outcome of an exhaustive single-bit study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExhaustiveResult {
    /// Total number of `(element, bit)` positions injected.
    pub injections: u64,
    /// The exact SDC proportion with (degenerate but uniform) intervals.
    pub sdc: ProportionEstimate,
    /// Mean classification error across all injections.
    pub mean_error: f64,
    /// Golden classification error.
    pub golden_error: f64,
    /// SDC counts broken down by bit position — the exact form of the E7
    /// bit-field ablation.
    pub by_bit: Vec<BitPositionStats>,
    /// Engine execution metadata (worker count, wall-clock, injections/sec).
    pub run_meta: RunMeta,
}

/// Streaming aggregation of per-injection outcomes — totals and the
/// per-bit breakdown, no per-injection buffering.
struct Agg {
    by_bit: Vec<BitPositionStats>,
    total: u64,
    sdc_total: u64,
    error_sum: f64,
}

impl Agg {
    fn new() -> Self {
        Agg {
            by_bit: (0..32u8)
                .map(|bit| BitPositionStats {
                    bit,
                    injections: 0,
                    sdc: 0,
                })
                .collect(),
            total: 0,
            sdc_total: 0,
            error_sum: 0.0,
        }
    }

    fn into_result(self, golden_error: f64, run_meta: RunMeta) -> ExhaustiveResult {
        ExhaustiveResult {
            injections: self.total,
            sdc: estimate_proportion(self.sdc_total, self.total, 0.95),
            mean_error: self.error_sum / self.total as f64,
            golden_error,
            by_bit: self.by_bit,
            run_meta,
        }
    }
}

impl EvalSink<(u8, bool, f64)> for Agg {
    fn accept(
        &mut self,
        _task_id: usize,
        (bit, corrupted, error): (u8, bool, f64),
    ) -> Result<(), EngineError> {
        self.total += 1;
        self.error_sum += error;
        if corrupted {
            self.sdc_total += 1;
        }
        // `bit` is always < 32 by the bit-sweep enumeration; the
        // aggregate counters above stay right even for a phantom row.
        if let Some(row) = self.by_bit.get_mut(bit as usize) {
            row.injections += 1;
            if corrupted {
                row.sdc += 1;
            }
        }
        Ok(())
    }
}

/// Runs the exhaustive study over every single-bit fault in the sites
/// selected by `spec`.
///
/// # Panics
///
/// Panics if the spec resolves to no parameter sites or the dataset is
/// empty.
pub fn run_exhaustive(
    model: &Sequential,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
) -> ExhaustiveResult {
    run_exhaustive_with(model, eval, spec, 0)
}

/// [`run_exhaustive`] with an explicit engine worker count (0 = all
/// available cores). The enumeration is deterministic, so the result is
/// identical at every worker count.
///
/// # Panics
///
/// Panics if the spec resolves to no parameter sites or the dataset is
/// empty.
pub fn run_exhaustive_with(
    model: &Sequential,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    workers: usize,
) -> ExhaustiveResult {
    match run_exhaustive_controlled(model, eval, spec, workers, &RunControl::default(), None) {
        Ok(res) => res,
        Err(e) => panic!("exhaustive study failed: {e}"),
    }
}

/// [`run_exhaustive_with`] with cooperative cancellation and an optional
/// checkpoint journal (one entry per `(element, bit)` injection, in
/// enumeration order).
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_exhaustive_with`].
pub fn run_exhaustive_controlled(
    model: &Sequential,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    workers: usize,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<ExhaustiveResult, EngineError> {
    assert!(!eval.is_empty(), "evaluation set must not be empty");
    let mut model = model.clone();
    let sites = resolve_sites(&model, spec);
    assert!(
        !sites.params.is_empty(),
        "exhaustive FI requires parameter sites"
    );

    let golden_logits = predict_all(&mut model, eval.inputs(), 64);
    let golden_preds = golden_logits.argmax_rows();
    let golden_error = bdlfi_nn::metrics::classification_error(&golden_logits, eval.labels());

    // Flatten the (site, element, bit) enumeration into one task index
    // space: site `s` owns `site.len * 32` consecutive task ids starting
    // at `starts[s]`.
    let mut starts = Vec::with_capacity(sites.params.len());
    let mut total_tasks = 0usize;
    for site in &sites.params {
        starts.push(total_tasks);
        total_tasks += site.len * 32;
    }

    let mut agg = Agg::new();

    // The task set is a deterministic enumeration (no RNG), so the engine
    // seed is irrelevant; workers each own a model clone.
    let engine = EvalEngine::with_workers(0, workers);
    let ckpt = ckpt.cloned().map(|mut s| {
        if s.fingerprint.is_empty() {
            let site_shape: Vec<(String, usize)> = sites
                .params
                .iter()
                .map(|p| (p.path.clone(), p.len))
                .collect();
            s.fingerprint = fingerprint("exhaustive", &(site_shape, golden_error));
        }
        s
    });
    let run_meta = engine.run_checkpointed(
        total_tasks,
        || model.clone(),
        |model, ctx| {
            let site_idx = starts.partition_point(|&s| s <= ctx.task_id) - 1;
            let site = &sites.params[site_idx];
            let offset = ctx.task_id - starts[site_idx];
            let element = offset / 32;
            let bit = (offset % 32) as u8;

            let mut mask = FaultMask::empty();
            mask.push_bit(element, bit);
            let mut cfg = FaultConfig::clean();
            cfg.set_mask(&site.path, mask);

            cfg.apply(model);
            let logits = predict_all(model, eval.inputs(), 64);
            cfg.apply(model); // restore (XOR involution)

            let corrupted = logits
                .argmax_rows()
                .iter()
                .zip(golden_preds.iter())
                .any(|(a, b)| a != b);
            let error = bdlfi_nn::metrics::classification_error(&logits, eval.labels());
            Ok((bit, corrupted, error))
        },
        &mut agg,
        ctl,
        ckpt.as_ref(),
    )?;

    Ok(agg.into_result(golden_error, run_meta))
}

/// Runs the exhaustive study over every single-bit fault of a *quantized*
/// model's sites selected by `spec`. The enumeration is width-aware: an
/// int8 weight site contributes 8 positions per element (a complete 8-bit
/// sweep), i32 bias words and f32 scales 32. `by_bit` keeps its 32 rows;
/// positions a representation does not have simply record zero injections.
///
/// Each injection resumes inference from a shared golden prefix cache at
/// the fault's stage, so the study costs only dirty suffixes.
///
/// # Panics
///
/// Panics if the spec resolves to no site or the dataset is empty.
pub fn run_exhaustive_quant(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
) -> ExhaustiveResult {
    run_exhaustive_quant_with(qm, eval, spec, 0)
}

/// [`run_exhaustive_quant`] with an explicit engine worker count (0 = all
/// available cores). The enumeration is deterministic, so the result is
/// identical at every worker count.
///
/// # Panics
///
/// Same preconditions as [`run_exhaustive_quant`].
pub fn run_exhaustive_quant_with(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    workers: usize,
) -> ExhaustiveResult {
    match run_exhaustive_quant_controlled(qm, eval, spec, workers, &RunControl::default(), None) {
        Ok(res) => res,
        Err(e) => panic!("quant exhaustive study failed: {e}"),
    }
}

/// [`run_exhaustive_quant_with`] with cooperative cancellation and an
/// optional checkpoint journal (one entry per injection, in enumeration
/// order), under its own fingerprint namespace.
///
/// # Errors
///
/// [`EngineError::Interrupted`] on a cooperative stop, plus journal/sink
/// failures.
///
/// # Panics
///
/// Same preconditions as [`run_exhaustive_quant`].
pub fn run_exhaustive_quant_controlled(
    qm: &QuantModel,
    eval: &Arc<Dataset>,
    spec: &SiteSpec,
    workers: usize,
    ctl: &RunControl,
    ckpt: Option<&CheckpointSpec>,
) -> Result<ExhaustiveResult, EngineError> {
    assert!(!eval.is_empty(), "evaluation set must not be empty");
    let mut qm = qm.clone();
    let sites = qm.sites_matching(spec);
    assert!(
        !sites.params.is_empty(),
        "exhaustive FI requires parameter sites"
    );

    let cache = Arc::new(QPrefixCache::build(&mut qm, eval.inputs(), 64));
    let golden_logits = cache.golden_logits();
    let golden_preds = golden_logits.argmax_rows();
    let golden_error = bdlfi_nn::metrics::classification_error(&golden_logits, eval.labels());

    // Width-aware flattening: site `s` owns `site.len * site.repr.width()`
    // consecutive task ids.
    let mut starts = Vec::with_capacity(sites.params.len());
    let mut total_tasks = 0usize;
    for site in &sites.params {
        starts.push(total_tasks);
        total_tasks += site.len * site.repr.width() as usize;
    }

    let mut agg = Agg::new();

    let engine = EvalEngine::with_workers(0, workers);
    let ckpt = ckpt.cloned().map(|mut s| {
        if s.fingerprint.is_empty() {
            let site_shape: Vec<(String, usize, u8)> = sites
                .params
                .iter()
                .map(|p| (p.path.clone(), p.len, p.repr.width()))
                .collect();
            s.fingerprint = fingerprint("exhaustive_quant", &(site_shape, golden_error));
        }
        s
    });
    let run_meta = engine.run_checkpointed(
        total_tasks,
        || qm.clone(),
        |qm, ctx| {
            let site_idx = starts.partition_point(|&s| s <= ctx.task_id) - 1;
            let site = &sites.params[site_idx];
            let width = site.repr.width() as usize;
            let offset = ctx.task_id - starts[site_idx];
            let element = offset / width;
            let bit = (offset % width) as u8;

            let mut mask = FaultMask::empty();
            mask.push_bit(element, bit);
            let mut cfg = FaultConfig::clean();
            cfg.set_mask(&site.path, mask);

            let start = qm.first_dirty_op(&cfg).unwrap_or_else(|| qm.len());
            qm.apply(&cfg);
            let logits = cache.predict_from(qm, start);
            qm.apply(&cfg); // restore (XOR involution)

            let corrupted = logits
                .argmax_rows()
                .iter()
                .zip(golden_preds.iter())
                .any(|(a, b)| a != b);
            let error = bdlfi_nn::metrics::classification_error(&logits, eval.labels());
            Ok((bit, corrupted, error))
        },
        &mut agg,
        ctl,
        ckpt.as_ref(),
    )?;

    Ok(agg.into_result(golden_error, run_meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_fi::{RandomFi, RandomFiConfig};
    use bdlfi_data::gaussian_blobs;
    use bdlfi_nn::{mlp, optim::Sgd, TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_trained() -> (Sequential, Arc<Dataset>) {
        let mut rng = StdRng::seed_from_u64(10);
        let data = gaussian_blobs(120, 2, 0.8, &mut rng);
        let (train, test) = data.split(0.7, &mut rng);
        let mut model = mlp(2, &[4], 2, &mut rng);
        let mut trainer = Trainer::new(
            Sgd::new(0.1).with_momentum(0.9),
            TrainConfig {
                epochs: 20,
                batch_size: 16,
                ..TrainConfig::default()
            },
        );
        trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
        (model, Arc::new(test))
    }

    #[test]
    fn covers_the_whole_single_bit_space() {
        let (model, eval) = tiny_trained();
        // fc1 only: (2*4 + 4) elements * 32 bits = 384 injections.
        let res = run_exhaustive(
            &model,
            &eval,
            &SiteSpec::LayerParams {
                prefix: "fc1".into(),
            },
        );
        assert_eq!(res.injections, 384);
        assert_eq!(res.by_bit.iter().map(|b| b.injections).sum::<u64>(), 384);
        for b in &res.by_bit {
            assert_eq!(b.injections, 12);
            assert!(b.sdc <= b.injections);
        }
    }

    #[test]
    fn exponent_bits_corrupt_more_than_low_mantissa() {
        let (model, eval) = tiny_trained();
        let res = run_exhaustive(&model, &eval, &SiteSpec::AllParams);
        let sdc_rate = |bit: usize| {
            let b = &res.by_bit[bit];
            b.sdc as f64 / b.injections.max(1) as f64
        };
        // High exponent bit (30) vs mantissa LSB (0).
        assert!(
            sdc_rate(30) > sdc_rate(0),
            "exp bit rate {} <= mantissa rate {}",
            sdc_rate(30),
            sdc_rate(0)
        );
        // Mantissa LSB flips are almost always masked.
        assert!(sdc_rate(0) < 0.2);
    }

    #[test]
    fn sampled_campaign_converges_to_exhaustive_rate() {
        let (model, eval) = tiny_trained();
        let spec = SiteSpec::LayerParams {
            prefix: "fc2".into(),
        };
        let exact = run_exhaustive(&model, &eval, &spec);

        let fi = RandomFi::new(model, eval, &spec);
        let sampled = fi.run(&RandomFiConfig {
            injections: 800,
            seed: 4,
            level: 0.95,
            workers: 0,
        });
        assert!(
            (sampled.sdc.rate - exact.sdc.rate).abs() < 0.07,
            "sampled {} vs exact {}",
            sampled.sdc.rate,
            exact.sdc.rate
        );
        // The exact rate lies inside the sampled CI (with margin for the
        // 5% miss probability, checked loosely).
        assert!(exact.sdc.rate > sampled.sdc.wilson.0 - 0.05);
        assert!(exact.sdc.rate < sampled.sdc.wilson.1 + 0.05);
    }

    #[test]
    fn exhaustive_is_worker_count_invariant() {
        let (model, eval) = tiny_trained();
        let spec = SiteSpec::LayerParams {
            prefix: "fc2".into(),
        };
        let serial = run_exhaustive_with(&model, &eval, &spec, 1);
        let parallel = run_exhaustive_with(&model, &eval, &spec, 4);
        assert_eq!(serial.injections, parallel.injections);
        assert_eq!(serial.sdc.successes, parallel.sdc.successes);
        assert_eq!(serial.mean_error, parallel.mean_error);
        for (a, b) in serial.by_bit.iter().zip(&parallel.by_bit) {
            assert_eq!(a.injections, b.injections);
            assert_eq!(a.sdc, b.sdc);
        }
        assert_eq!(parallel.run_meta.tasks as u64, parallel.injections);
    }

    #[test]
    fn quant_exhaustive_sweeps_all_eight_bits_of_int8_weights() {
        use bdlfi_quant::{quantize_model, CalibConfig};
        let (model, eval) = tiny_trained();
        let qm = quantize_model(&model, eval.inputs(), &CalibConfig::default());
        // fc1.weight only: 2*4 int8 elements * 8 bits = 64 injections.
        let res = run_exhaustive_quant(&qm, &eval, &SiteSpec::Params(vec!["fc1.weight".into()]));
        assert_eq!(res.injections, 64);
        for b in &res.by_bit[..8] {
            assert_eq!(b.injections, 8, "bit {} injections", b.bit);
            assert!(b.sdc <= b.injections);
        }
        // An int8 word has no positions above bit 7.
        for b in &res.by_bit[8..] {
            assert_eq!(b.injections, 0, "bit {} injected on an i8 site", b.bit);
        }
    }

    #[test]
    fn quant_exhaustive_mixes_widths_and_is_worker_invariant() {
        use bdlfi_quant::{quantize_model, CalibConfig};
        let (model, eval) = tiny_trained();
        let qm = quantize_model(&model, eval.inputs(), &CalibConfig::default());
        let spec = SiteSpec::LayerParams {
            prefix: "fc2".into(),
        };
        let serial = run_exhaustive_quant_with(&qm, &eval, &spec, 1);
        // fc2: 4*2 i8 weights * 8 + 2 i32 biases * 32 + 2 per-channel
        // w_scales * 32 + out_zp * 32 = 64 + 64 + 64 + 32 = 224 injections.
        assert_eq!(serial.injections, 224);
        let parallel = run_exhaustive_quant_with(&qm, &eval, &spec, 4);
        assert_eq!(serial.sdc.successes, parallel.sdc.successes);
        assert_eq!(serial.mean_error, parallel.mean_error);
        for (a, b) in serial.by_bit.iter().zip(&parallel.by_bit) {
            assert_eq!(a.injections, b.injections);
            assert_eq!(a.sdc, b.sdc);
        }
    }

    #[test]
    fn quant_int8_msb_corrupts_more_than_lsb() {
        use bdlfi_quant::{quantize_model, CalibConfig};
        let (model, eval) = tiny_trained();
        let qm = quantize_model(&model, eval.inputs(), &CalibConfig::default());
        let res = run_exhaustive_quant(
            &qm,
            &eval,
            &SiteSpec::Params(vec!["fc1.weight".into(), "fc2.weight".into()]),
        );
        let sdc_rate = |bit: usize| {
            let b = &res.by_bit[bit];
            b.sdc as f64 / b.injections.max(1) as f64
        };
        // In two's complement the top bit moves a weight by 256 quantization
        // steps, the bottom bit by one.
        assert!(
            sdc_rate(7) >= sdc_rate(0),
            "sign/MSB rate {} < LSB rate {}",
            sdc_rate(7),
            sdc_rate(0)
        );
    }

    #[test]
    fn golden_error_matches_other_tools() {
        let (model, eval) = tiny_trained();
        let spec = SiteSpec::LayerParams {
            prefix: "fc2".into(),
        };
        let exact = run_exhaustive(&model, &eval, &spec);
        let fi = RandomFi::new(model, eval, &spec);
        assert_eq!(exact.golden_error, fi.golden_error());
    }
}
