//! BDLFI on a convolutional network: a (reduced-width) ResNet-18 trained
//! on the synth-CIFAR substitute, with a per-layer injection comparison —
//! a miniature of the paper's Fig. 3 experiment.
//!
//! Sized to finish in about a minute on one CPU core; the full-scale
//! experiment lives in `cargo run -p bdlfi-bench --bin fig3_resnet_layers`.
//!
//! ```text
//! cargo run --release --example resnet_campaign
//! ```

use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{run_layerwise, CampaignConfig, KernelChoice, LayerBudget};
use bdlfi_suite::data::{synth_cifar, SynthCifarConfig};
use bdlfi_suite::nn::{evaluate, optim::Sgd, resnet18, ResNetConfig, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // A small synth-CIFAR task and a narrow ResNet-18 (full 18-layer
    // topology, base width 4 for speed).
    let cifar = SynthCifarConfig {
        classes: 10,
        image_size: 32,
        noise: 0.8,
        phase_jitter: 1.0,
        label_noise: 0.25,
    };
    let data = synth_cifar(480, cifar, &mut rng);
    let (train, eval) = data.split(0.85, &mut rng);

    let mut net = resnet18(
        ResNetConfig {
            in_channels: 3,
            base_width: 4,
            classes: 10,
        },
        &mut rng,
    );
    println!(
        "training ResNet-18 (w=4, {} parameters) ...",
        net.param_count()
    );
    let mut trainer = Trainer::new(
        Sgd::new(0.05).with_momentum(0.9),
        TrainConfig {
            epochs: 4,
            batch_size: 32,
            verbose: true,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut net, train.inputs(), train.labels(), &mut rng);
    let acc = evaluate(&mut net, eval.inputs(), eval.labels(), 32);
    println!("golden eval error: {:.2} %\n", (1.0 - acc) * 100.0);

    // One small campaign per layer position (the paper's Fig. 3 x-axis).
    let layers = [
        "conv1", "layer1_0", "layer2_0", "layer3_0", "layer4_0", "fc",
    ];
    let cfg = CampaignConfig {
        chains: 2,
        chain: ChainConfig {
            burn_in: 0,
            samples: 15,
            thin: 1,
        },
        kernel: KernelChoice::Prior,
        ..CampaignConfig::default()
    };

    let res = run_layerwise(
        &net,
        &Arc::new(eval),
        &layers,
        LayerBudget::ExpectedFlips(6.0),
        &cfg,
    );

    println!("| depth | layer | elements | mean error % |");
    println!("|---|---|---|---|");
    for l in &res.layers {
        println!(
            "| {} | {} | {} | {:.2} |",
            l.depth,
            l.layer,
            l.elements,
            l.report.mean_error * 100.0
        );
    }
    println!();
    println!("Spearman(depth, error) = {:.3}", res.depth_correlation);
    println!("paper finding: no systematic relationship between injection depth and output error");
}
