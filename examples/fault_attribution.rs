//! Fault attribution and protection planning: from "how often do faults
//! break the network?" to "what do we harden?".
//!
//! Uses the indicator-tempered explorer to build an error-conditioned
//! posterior over fault locations (which parameters / bit positions are to
//! blame), then derives a protection domain over the input space from a
//! boundary map (the paper's "threshold on the regions of the feature
//! space that need more protection").
//!
//! ```text
//! cargo run --release --example fault_attribution
//! ```

use bdlfi_suite::core::{
    attribute_faults, boundary_map, plan_protection, BoundaryConfig, FaultyModel,
};
use bdlfi_suite::data::gaussian_blobs;
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(6);
    let data = gaussian_blobs(800, 3, 1.2, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);
    let mut model = mlp(2, &[32], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);

    // --- Which memory locations cause the errors? ---
    let p = 2e-5; // rare-fault regime
    let fm = FaultyModel::new(
        model.clone(),
        Arc::new(test),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    );
    println!("exploring the error-conditioned fault posterior (p = {p})...");
    let report = attribute_faults(&fm, 300, None, 9);

    println!(
        "\ncollected {} error-conditioned samples (hit rate {:.2})",
        report.samples, report.hit_rate
    );
    println!("\nmost implicated parameter sites:");
    println!("| site | elements | hit share | mean flips |");
    println!("|---|---|---|---|");
    for s in report.top_sites(4) {
        println!(
            "| {} | {} | {:.2} | {:.2} |",
            s.path, s.elements, s.hit_share, s.mean_flips
        );
    }
    println!(
        "\nexponent-bit share of error-causing flips: {:.0} % (8 of 32 positions)",
        report.exponent_share() * 100.0
    );
    println!("=> selective ECC on exponent bits of the implicated tensors buys the most safety");

    // --- Which inputs need protection? ---
    println!("\nderiving a protection domain over the input space...");
    let map = boundary_map(
        &model,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(2e-3)),
        &BoundaryConfig {
            resolution: 32,
            fault_samples: 150,
            seed: 10,
            ..BoundaryConfig::default()
        },
    );
    // Set targets relative to the map's overall risk level: margin
    // thresholding can only push the unprotected mean towards the
    // far-from-boundary floor.
    let overall = map.error_prob.iter().sum::<f64>() / map.error_prob.len() as f64;
    let (near, far) = map.near_far_split();
    println!(
        "overall error prob {:.2} % (near boundary {:.2} %, far {:.2} %)",
        overall * 100.0,
        near * 100.0,
        far * 100.0
    );
    for target in [overall * 0.95, overall * 0.85, overall * 0.75] {
        match plan_protection(&map, target) {
            Some(plan) => println!(
                "target error {:>4.1} %: protect margins < {:.3} -> {:.0} % of input space \
                 (risk concentration {:.1}x)",
                target * 100.0,
                plan.margin_threshold,
                plan.protected_fraction * 100.0,
                plan.concentration()
            ),
            None => println!(
                "target error {:>4.1} %: below the far-from-boundary floor — \
                 unreachable by margin thresholding alone",
                target * 100.0
            ),
        }
    }
}
