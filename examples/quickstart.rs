//! Quickstart: train the paper's MLP on a 2-D task, attach the Bernoulli
//! bit-flip fault model to every parameter, and run a BDLFI campaign.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{run_campaign, CampaignConfig, FaultyModel, KernelChoice};
use bdlfi_suite::data::gaussian_blobs;
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{evaluate, mlp, optim::Sgd, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(0);

    // 1. A 2-D, 3-class task and the paper's MLP (2 -> 32 ReLU -> softmax).
    let data = gaussian_blobs(800, 3, 1.2, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);
    let mut model = mlp(2, &[32], 3, &mut rng);

    // 2. Train the golden network.
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    let golden_acc = evaluate(&mut model, test.inputs(), test.labels(), 64);
    println!("golden test error: {:.2} %", (1.0 - golden_acc) * 100.0);

    // 3. Attach the fault model: every bit of every stored parameter flips
    //    independently with probability p (the per-bit AVF model).
    let p = 1e-3;
    let fm = FaultyModel::new(
        model,
        Arc::new(test),
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(p)),
    );

    // 4. Infer the distribution of classification error under faults with
    //    MCMC, and certify campaign completeness from chain mixing.
    let base = CampaignConfig::default();
    let cfg = CampaignConfig {
        kernel: KernelChoice::Prior,
        chains: 3,
        chain: ChainConfig {
            samples: 150,
            ..base.chain
        },
        ..base
    };
    let report = run_campaign(&fm, &cfg);

    println!("{report}");
    println!();
    println!("inferred error distribution (paper Fig. 1 (3), right panel):");
    println!("{}", report.render_distribution());
    println!(
        "faults at p = {p} add {:.2} percentage points of error on average",
        report.error_increase_pct()
    );
}
