//! Fault tolerance of the same network in f32 and int8 deployment — the
//! quantized workload the paper's memory fault model applies to when
//! parameters are stored as int8 rather than IEEE-754.
//!
//! Three views:
//!  1. the accuracy cost of post-training quantization (golden runs),
//!  2. BDLFI campaigns under the same Bernoulli bit-flip prior in both
//!     representations — the width-aware fault models flip within 8-bit
//!     words on int8 storage and 32-bit words on f32 storage,
//!  3. the exhaustive per-bit ablation: every single-bit fault in both
//!     models, showing how bit significance is graded in int8 (each step
//!     up doubles the weight perturbation) while f32 concentrates nearly
//!     all damage in a few high exponent bits.
//!
//! ```text
//! cargo run --release --example quant_campaign
//! ```

use bdlfi_suite::baseline::{run_exhaustive, run_exhaustive_quant, ExhaustiveResult};
use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{
    run_campaign, CampaignConfig, FaultyModel, KernelChoice, QuantFaultyModel,
};
use bdlfi_suite::data::gaussian_blobs;
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, TrainConfig, Trainer};
use bdlfi_suite::quant::{quantize_model, CalibConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bit_rate(res: &ExhaustiveResult, bit: u8) -> f64 {
    let stats = &res.by_bit[bit as usize];
    if stats.injections == 0 {
        0.0
    } else {
        stats.sdc as f64 / stats.injections as f64
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let data = gaussian_blobs(600, 3, 0.9, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);
    let test = Arc::new(test);

    let mut model = mlp(2, &[16], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 25,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);

    // Post-training quantization, calibrated on the training inputs.
    let qm = quantize_model(&model, train.inputs(), &CalibConfig::default());

    let p = 2e-3;
    let fault_model = Arc::new(BernoulliBitFlip::new(p));
    let fm = FaultyModel::new(
        model.clone(),
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::clone(&fault_model) as _,
    );
    let qfm = QuantFaultyModel::new(
        qm.clone(),
        Arc::clone(&test),
        &SiteSpec::AllParams,
        fault_model,
    );

    println!("## golden runs (no faults)");
    println!("  f32  classification error: {:.3}", fm.golden_error());
    println!(
        "  int8 classification error: {:.3}  (quantization cost {:+.3})",
        qfm.golden_error(),
        qfm.golden_error() - fm.golden_error()
    );

    // --- Same Bernoulli prior, both representations. The width-aware
    // fault models flip uniformly within each parameter's storage word:
    // 32 candidate bits per f32 weight, 8 per int8 weight. ---
    let base = CampaignConfig::default();
    let cfg = CampaignConfig {
        chains: 4,
        chain: ChainConfig {
            samples: 150,
            ..base.chain
        },
        kernel: KernelChoice::Prior,
        seed: 12,
        ..base
    };
    println!("\n## BDLFI campaign, Bernoulli prior p = {p}");
    let f32_report = run_campaign(&fm, &cfg);
    let int8_report = run_campaign(&qfm, &cfg);
    println!(
        "  f32 : mean error {:.3} ({:+.2} pp over golden), {:.2} flips/config",
        f32_report.mean_error,
        f32_report.error_increase_pct(),
        f32_report.mean_flips
    );
    println!(
        "  int8: mean error {:.3} ({:+.2} pp over golden), {:.2} flips/config",
        int8_report.mean_error,
        int8_report.error_increase_pct(),
        int8_report.mean_flips
    );

    // --- Exhaustive single-bit ablation: ground truth per bit position. ---
    println!("\n## exhaustive single-bit ablation (all parameters)");
    let f32_ex = run_exhaustive(&model, &test, &SiteSpec::AllParams);
    let int8_ex = run_exhaustive_quant(&qm, &test, &SiteSpec::AllParams);
    println!(
        "  f32 : {} injections, SDC rate {:.4}",
        f32_ex.injections, f32_ex.sdc.rate
    );
    println!(
        "  int8: {} injections, SDC rate {:.4}",
        int8_ex.injections, int8_ex.sdc.rate
    );
    // Weight-only runs keep the per-bit table pure: every injection at
    // bit b is the same perturbation class (i32 bias words would otherwise
    // alias their low bits onto the int8 positions).
    let weights = SiteSpec::Params(vec!["fc1.weight".into(), "fc2.weight".into()]);
    let f32_w = run_exhaustive(&model, &test, &weights);
    let int8_w = run_exhaustive_quant(&qm, &test, &weights);
    println!("\n  weight bit | int8 SDC | f32 SDC   (int8 bit 7 = sign)");
    for bit in 0..8u8 {
        println!(
            "  {bit:>10} |   {:.4} | {:.4}",
            bit_rate(&int8_w, bit),
            bit_rate(&f32_w, bit)
        );
    }
    let f32_exp: f64 = (23..31).map(|b| bit_rate(&f32_w, b)).sum::<f64>() / 8.0;
    println!(
        "\n  f32 exponent bits 23–30 average {:.4} SDC — the damage f32 hides \
         in 8 of its 32 bits, int8 spreads over its whole word",
        f32_exp
    );
}
