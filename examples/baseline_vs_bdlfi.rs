//! Traditional random fault injection vs BDLFI on the same network and
//! fault model — the methodological comparison at the heart of the paper.
//!
//! The traditional campaign reports an SDC rate with a confidence interval
//! and stops when its budget runs out; BDLFI reports the full error
//! distribution and *certifies* when further injections stop changing the
//! answer (split-R̂ / ESS / MCSE thresholds).
//!
//! ```text
//! cargo run --release --example baseline_vs_bdlfi
//! ```

use bdlfi_suite::baseline::{RandomFi, RandomFiConfig};
use bdlfi_suite::bayes::ChainConfig;
use bdlfi_suite::core::{run_campaign, CampaignConfig, FaultyModel, KernelChoice};
use bdlfi_suite::data::gaussian_blobs;
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{mlp, optim::Sgd, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let data = gaussian_blobs(800, 3, 1.2, &mut rng);
    let (train, test) = data.split(0.75, &mut rng);
    let test = Arc::new(test);

    let mut model = mlp(2, &[32], 3, &mut rng);
    let mut trainer = Trainer::new(
        Sgd::new(0.1).with_momentum(0.9),
        TrainConfig {
            epochs: 30,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);

    let p = 2e-3;
    let fault_model = Arc::new(BernoulliBitFlip::new(p));

    // --- Traditional: same Bernoulli fault model, fixed budget. ---
    println!("## traditional random FI (Bernoulli model, p = {p})");
    let fi = RandomFi::with_fault_model(
        model.clone(),
        Arc::clone(&test),
        &SiteSpec::AllParams,
        Arc::clone(&fault_model) as _,
    );
    for budget in [50usize, 200] {
        let res = fi.run(&RandomFiConfig {
            injections: budget,
            seed: 5,
            level: 0.95,
            workers: 0,
        });
        println!(
            "  {budget:>4} injections: mean error {:.2} %, SDC rate {:.2} (95% Wilson [{:.2}, {:.2}]) — no completeness signal",
            res.mean_error * 100.0,
            res.sdc.rate,
            res.sdc.wilson.0,
            res.sdc.wilson.1
        );
    }

    // --- BDLFI: same model, same fault prior, certified inference. ---
    println!("\n## BDLFI campaign (same fault prior)");
    let fm = FaultyModel::new(model, test, &SiteSpec::AllParams, fault_model);
    let base = CampaignConfig::default();
    let cfg = CampaignConfig {
        chains: 4,
        chain: ChainConfig {
            samples: 200,
            ..base.chain
        },
        kernel: KernelChoice::Prior,
        ..base
    };
    let report = run_campaign(&fm, &cfg);
    println!("{report}");
    println!();
    println!(
        "both agree on the mean once the budget is large; only BDLFI can say *when* \
         the campaign is complete, and it reports the full distribution, not a rate"
    );
}
