//! Decision-boundary analysis (paper Fig. 1 ③): where in the input space
//! do hardware faults actually flip predictions?
//!
//! Trains the MLP on the spiral task — whose decision boundary is long and
//! curved — and renders the fault-induced error-probability map as ASCII
//! art next to the golden class regions. The high-error ridge traces the
//! boundary.
//!
//! ```text
//! cargo run --release --example decision_boundary
//! ```

use bdlfi_suite::core::{boundary_map, BoundaryConfig};
use bdlfi_suite::data::spirals;
use bdlfi_suite::faults::{BernoulliBitFlip, SiteSpec};
use bdlfi_suite::nn::{evaluate, mlp, optim::Adam, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    // Two interleaved spirals: a hard boundary for a small MLP.
    let data = spirals(1200, 2, 0.12, &mut rng);
    let (train, test) = data.split(0.8, &mut rng);
    let mut model = mlp(2, &[48, 32], 2, &mut rng);
    let mut trainer = Trainer::new(
        Adam::new(0.01),
        TrainConfig {
            epochs: 60,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    trainer.fit(&mut model, train.inputs(), train.labels(), &mut rng);
    let acc = evaluate(&mut model, test.inputs(), test.labels(), 64);
    println!("golden spiral test error: {:.2} %", (1.0 - acc) * 100.0);

    let map = boundary_map(
        &model,
        &SiteSpec::AllParams,
        Arc::new(BernoulliBitFlip::new(2e-3)),
        &BoundaryConfig {
            x_range: (-3.5, 3.5),
            y_range: (-3.5, 3.5),
            resolution: 48,
            fault_samples: 150,
            seed: 2,
            workers: 0,
        },
    );

    println!("\nfault-induced log(error probability) ('@' = most fragile):");
    println!("{}", map.render_ascii());

    println!("golden class regions:");
    for iy in (0..map.resolution).rev() {
        let line: String = (0..map.resolution)
            .map(|ix| {
                if map.golden_pred[iy * map.resolution + ix] == 0 {
                    '.'
                } else {
                    'o'
                }
            })
            .collect();
        println!("{line}");
    }

    let (near, far) = map.near_far_split();
    println!();
    println!(
        "mean error probability near the boundary : {:.2} %",
        near * 100.0
    );
    println!(
        "mean error probability far from boundary : {:.2} %",
        far * 100.0
    );
    println!(
        "Spearman(margin, error probability)      : {:.3}",
        map.margin_correlation
    );
    println!();
    println!(
        "paper finding: points near the decision boundary are most affected by faults \
         -> those regions need the most protection in safety-critical deployments"
    );
}
